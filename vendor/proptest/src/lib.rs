//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds offline, so the real `proptest` cannot be
//! fetched. This crate keeps the same *call-site* shape used by the
//! property tests in the workspace — the [`proptest!`] macro with
//! `pattern in strategy` bindings and an optional
//! `#![proptest_config(...)]` header, [`any`], integer-range strategies,
//! tuple strategies, [`Strategy::prop_map`], and the
//! `prop_assert*`/[`prop_assume!`] macros — so swapping the real crate
//! back in later is a one-line `Cargo.toml` change.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the offending seed and
//!   case number instead of a minimized input.
//! * **Deterministic.** Inputs derive from a fixed per-test seed (hashed
//!   from the test name), so runs are reproducible byte-for-byte.
//! * `prop_assume!` skips the current case rather than recording
//!   rejection statistics.

use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Runner configuration, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated inputs per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the exact-arithmetic
            // properties in this workspace fast while still exercising a
            // meaningful spread of inputs.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Reports the failing case when a property panics.
///
/// The `proptest!` macro creates one per case; if the body panics, this
/// guard's `Drop` runs during unwinding and prints which case (and which
/// deterministic seed stream) failed, since there is no shrinker to
/// minimize the input.
#[doc(hidden)]
pub struct CaseGuard<'a> {
    /// Test name, for the failure report.
    pub test: &'a str,
    /// Zero-based index of the running case.
    pub case: u32,
}

impl Drop for CaseGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed on case {} \
                 (deterministic seed stream: rerun reproduces it exactly)",
                self.test, self.case,
            );
        }
    }
}

/// The deterministic source of randomness behind every strategy.
///
/// SplitMix64 over a seed derived from the test name: every `u64` is a
/// fresh word of the stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from `name` (typically `stringify!(test_fn)`).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, offset so the empty name is nonzero.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// The next word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A generator of test inputs. The `proptest!` macro samples each bound
/// strategy once per case.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f` applied to this strategy's values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Values with a default whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The strategy generating any value of `A`: `any::<u64>()`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).sample(rng)
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// The strategy that always yields a clone of `value`.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies:
///
/// ```ignore
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// (The fence is `ignore` because a doctest would not execute the inner
/// `#[test]` functions anyway — clippy's `test_attr_in_doctest`; the
/// macro's expansion is exercised by every property test in the
/// workspace instead.)
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let __guard = $crate::CaseGuard { test: stringify!($name), case: __case };
                let ($($pat,)*) =
                    ($($crate::Strategy::sample(&($strategy), &mut __rng),)*);
                $body
                let _ = __guard;
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name (no shrinking, so a failure
/// panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when `cond` is false. Expands to `continue` on
/// the per-case loop, so it is only valid directly inside a [`proptest!`]
/// body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn masked(n: u8) -> impl Strategy<Value = u64> {
        any::<u64>().prop_map(move |t| t & ((1u64 << n) - 1))
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 0u8..4, b in 1u64.., c in -1000i64..1000) {
            prop_assert!(a < 4);
            prop_assert!(b >= 1);
            prop_assert!((-1000..1000).contains(&c));
        }

        #[test]
        fn tuples_and_maps_compose((x, y) in (0u32..10, 0u32..10), m in masked(8)) {
            prop_assert!(x < 10 && y < 10);
            prop_assert!(m < 256);
        }

        #[test]
        fn assume_skips_cases(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_parses(x in any::<u64>()) {
            prop_assert_eq!(x, x);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        #[should_panic]
        fn failing_property_panics_and_reports_case(x in 0u32..10) {
            prop_assert!(x > 100, "forced failure to exercise CaseGuard");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
