//! Minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! This workspace builds offline, so the real `criterion` cannot be
//! fetched. This crate keeps the same API shape used by the benches in
//! `crates/bench` — [`Criterion::benchmark_group`], [`BenchmarkGroup`]
//! with `sample_size`/`throughput`/`bench_function`/`bench_with_input`,
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — so swapping the real
//! crate back in later is a one-line `Cargo.toml` change.
//!
//! Measurement is deliberately simple: after a short warm-up, each
//! benchmark is timed over a fixed wall-clock budget and the per-iteration
//! mean and best time are printed as `bench-name ... mean / best`. There
//! is no statistical analysis, plotting, or baseline storage. The
//! per-benchmark budget defaults to 300 ms and can be overridden with the
//! `INTEXT_BENCH_BUDGET_MS` environment variable (the CI smoke run uses a
//! tiny budget to execute every target cheaply).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point of the harness; handed to every registered bench function.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--quick` style budget: enough for a stable mean on the fast
        // benches without making `cargo bench` take minutes per target.
        // `INTEXT_BENCH_BUDGET_MS` overrides it — `scripts/bench-smoke.sh`
        // sets a tiny budget so CI can *execute* every bench target (a
        // crash/assert smoke test) without paying measurement-grade
        // runtimes.
        let budget = std::env::var("INTEXT_BENCH_BUDGET_MS")
            .ok()
            .and_then(|ms| ms.parse::<u64>().ok())
            .map_or(Duration::from_millis(300), Duration::from_millis);
        Criterion { budget }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by wall
    /// clock, not by count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark under this group's configuration.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into(), &mut f);
        self
    }

    /// Runs one benchmark, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.into(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            budget: self.criterion.budget,
            iters: 0,
            total: Duration::ZERO,
            best: Duration::MAX,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        if bencher.iters == 0 {
            eprintln!("  {label:<48} (no iterations)");
        } else {
            let mean = bencher.total / u32::try_from(bencher.iters).unwrap_or(u32::MAX);
            eprintln!(
                "  {label:<48} {:>12} mean / {:>12} best over {} iters",
                format_duration(mean),
                format_duration(bencher.best),
                bencher.iters,
            );
        }
    }

    /// Ends the group (a no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    total: Duration,
    best: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing each call, until the group's
    /// wall-clock budget is exhausted (always at least once).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        black_box(routine());
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            self.iters += 1;
            self.total += dt;
            self.best = self.best.min(dt);
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// Identifies one benchmark within a group, e.g. `obdd/domain=8`.
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `name`, parameterized by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.parameter {
            Some(p) if !self.name.is_empty() => write!(f, "{}/{}", self.name, p),
            Some(p) => write!(f, "{p}"),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Units processed per iteration (accepted, not currently reported).
pub enum Throughput {
    /// Elements (tuples, functions, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Registers bench functions under a single group entry point, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a bench target, mirroring `criterion::criterion_main!`.
/// Ignores Criterion's own CLI flags (`--bench`, filters) so `cargo bench`
/// invocations pass through.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_at_least_once() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        let mut g = c.benchmark_group("test");
        let mut count = 0u64;
        g.bench_function("counted", |b| {
            b.iter(|| count += 1);
        });
        g.finish();
        assert!(count >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("obdd", 8).to_string(), "obdd/8");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
