//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! This workspace builds in a fully offline environment, so the real
//! `rand` cannot be fetched from a registry. This vendor crate implements
//! exactly the surface the workspace uses — [`RngCore`], [`Rng`]
//! (with `random`/`random_range`, matching rand 0.9's trait split),
//! [`SeedableRng`], and a deterministic [`rngs::StdRng`] — with the same
//! method names and call shapes, so swapping the real crate back in later
//! is a one-line `Cargo.toml` change.
//!
//! The generator is xoshiro256++ seeded through SplitMix64: statistically
//! solid for test-data generation and, crucially, *stable across runs and
//! platforms*, which the reproducibility tests in `intext-tid` and the
//! Criterion fixtures in `intext-bench` rely on.

/// A source of uniformly distributed random 64-bit words.
///
/// The single required method mirrors `rand_core::RngCore::next_u64`; all
/// higher-level sampling lives on the blanket-implemented [`Rng`].
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Typed sampling on top of any [`RngCore`], mirroring rand 0.9's `Rng`
/// (where `random` and `random_range` live directly on this trait).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` is uniform in `[0, 1)`, integers are uniform over the full
    /// range, `bool` is a fair coin).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range, e.g. `rng.random_range(1..10)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a standard distribution for [`Rng::random`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample(rng: &mut impl Rng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut impl Rng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(rng: &mut impl Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut impl Rng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample(rng: &mut impl Rng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single(self, rng: &mut impl Rng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single(self, rng: &mut impl Rng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single(self, rng: &mut impl Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 (the expansion `rand` documents for this method).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    ///
    /// Unlike the real `rand::rngs::StdRng` (which explicitly does *not*
    /// promise a stable stream across versions), this one is frozen so
    /// seeded fixtures stay byte-identical forever.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// A generator for stream `stream` of the family keyed by `seed`:
        /// the two inputs are expanded through *independent* SplitMix64
        /// walks and XOR-combined per state word, so `(seed, a)` and
        /// `(seed, b)` yield statistically unrelated streams while
        /// `from_seed_stream(s, n)` stays bit-reproducible forever (the
        /// same freeze as [`SeedableRng::seed_from_u64`]). This is the
        /// primitive behind deterministic per-scenario sampling streams:
        /// callers derive one stream per work item from a single
        /// workload seed without any cross-stream coupling.
        ///
        /// Stream 0 is *not* the same generator as `seed_from_u64(seed)`
        /// (the stream walk contributes nonzero words even at 0).
        pub fn from_seed_stream(seed: u64, stream: u64) -> Self {
            let mut a = seed;
            // Offset the stream walk so (seed, stream) and (stream, seed)
            // do not collapse onto the same state.
            let mut b = stream ^ 0x6a09_e667_f3bc_c909; // frac(sqrt(2))
            let mut s = [
                splitmix64(&mut a) ^ splitmix64(&mut b),
                splitmix64(&mut a) ^ splitmix64(&mut b),
                splitmix64(&mut a) ^ splitmix64(&mut b),
                splitmix64(&mut a) ^ splitmix64(&mut b),
            ];
            // xoshiro256++ must never start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(1u64..10);
            assert!((1..10).contains(&v));
            let w = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn seed_streams_are_reproducible_and_independent() {
        let mut a = StdRng::from_seed_stream(42, 7);
        let mut b = StdRng::from_seed_stream(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Different streams of one seed differ, as do equal streams of
        // different seeds, and (seed, stream) is not symmetric.
        let words = |mut r: StdRng| (0..4).map(|_| r.next_u64()).collect::<Vec<_>>();
        let base = words(StdRng::from_seed_stream(42, 7));
        assert_ne!(base, words(StdRng::from_seed_stream(42, 8)));
        assert_ne!(base, words(StdRng::from_seed_stream(43, 7)));
        assert_ne!(base, words(StdRng::from_seed_stream(7, 42)));
        // Stream derivation is a different family than plain seeding.
        assert_ne!(base, words(StdRng::seed_from_u64(42)));
    }

    #[test]
    fn works_through_mut_reference() {
        fn take(rng: &mut impl Rng) -> u64 {
            rng.random_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(take(&mut rng) < 100);
    }
}
