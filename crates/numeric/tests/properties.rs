//! Property-based tests: the rational type must behave as the field ℚ,
//! and the integer types as ℤ — cross-checked against native 128-bit
//! arithmetic on values inside its range.

use intext_numeric::{binomial, BigInt, BigRational, BigUint};
use proptest::prelude::*;

fn rat(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d.max(1))
}

proptest! {
    #[test]
    fn biguint_add_mul_match_u128(a in any::<u64>(), b in any::<u64>()) {
        let (x, y) = (BigUint::from(a), BigUint::from(b));
        prop_assert_eq!((&x + &y).to_string(), (u128::from(a) + u128::from(b)).to_string());
        prop_assert_eq!((&x * &y).to_string(), (u128::from(a) * u128::from(b)).to_string());
    }

    #[test]
    fn biguint_div_rem_invariant(a in any::<u64>(), b in 1u64..) {
        let (q, r) = BigUint::from(a).div_rem(&BigUint::from(b));
        prop_assert_eq!(q.to_u64(), Some(a / b));
        prop_assert_eq!(r.to_u64(), Some(a % b));
    }

    #[test]
    fn biguint_gcd_divides_both(a in any::<u32>(), b in any::<u32>()) {
        let g = BigUint::from(u64::from(a)).gcd(&BigUint::from(u64::from(b)));
        if let Some(g) = g.to_u64() {
            if g != 0 {
                prop_assert_eq!(u64::from(a) % g, 0);
                prop_assert_eq!(u64::from(b) % g, 0);
            } else {
                prop_assert_eq!((a, b), (0, 0));
            }
        }
    }

    #[test]
    fn bigint_ring_laws(a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000) {
        let (x, y, z) = (BigInt::from(a), BigInt::from(b), BigInt::from(c));
        // Commutativity and associativity of +, distributivity of *.
        prop_assert_eq!(&x + &y, &y + &x);
        prop_assert_eq!(&(&x + &y) + &z, &x + &(&y + &z));
        prop_assert_eq!(&x * &(&y + &z), &(&x * &y) + &(&x * &z));
        prop_assert_eq!(&x + &(-&x), BigInt::zero());
    }

    #[test]
    fn rational_field_laws(
        (an, ad) in (-50i64..50, 1u64..50),
        (bn, bd) in (-50i64..50, 1u64..50),
        (cn, cd) in (-50i64..50, 1u64..50),
    ) {
        let (a, b, c) = (rat(an, ad), rat(bn, bd), rat(cn, cd));
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, BigRational::zero());
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a.clone());
        }
    }

    #[test]
    fn rational_reduction_invariant(n in -10_000i64..10_000, d in 1u64..10_000) {
        let r = rat(n, d);
        // gcd(|num|, den) = 1.
        let g = r.numer().magnitude().gcd(r.denom());
        prop_assert!(g.is_one() || r.is_zero());
    }

    #[test]
    fn complement_is_involutive_on_probabilities(n in 0i64..100, d in 1u64..100) {
        prop_assume!(n as u64 <= d);
        let p = rat(n, d);
        prop_assert!(p.is_probability());
        prop_assert_eq!(p.complement().complement(), p);
    }

    #[test]
    fn ordering_matches_f64(a in (-100i64..100, 1u64..100), b in (-100i64..100, 1u64..100)) {
        let (x, y) = (rat(a.0, a.1), rat(b.0, b.1));
        let (fx, fy) = (x.to_f64(), y.to_f64());
        if (fx - fy).abs() > 1e-9 {
            prop_assert_eq!(x < y, fx < fy);
        }
    }

    #[test]
    fn binomial_row_sums_to_power_of_two(n in 0u64..30) {
        let mut acc = BigUint::zero();
        for k in 0..=n {
            acc = &acc + &binomial(n, k);
        }
        prop_assert_eq!(acc.to_u64(), Some(1u64 << n));
    }
}
