//! Signed arbitrary-precision integers: a sign plus a [`BigUint`] magnitude.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::BigUint;

/// Sign of a [`BigInt`]. Zero always carries [`Sign::Zero`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// An arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Positive,
            mag: BigUint::one(),
        }
    }

    /// Builds from a sign and magnitude, normalizing zero.
    pub fn from_sign_mag(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude with Sign::Zero");
            BigInt { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude `|self|`.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Returns `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        match self.sign {
            Sign::Negative => -self.mag.to_f64(),
            Sign::Zero => 0.0,
            Sign::Positive => self.mag.to_f64(),
        }
    }

    /// Conversion to `i64`, `None` on overflow.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u64()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i64::try_from(m).ok(),
            Sign::Negative => {
                if m == 1u64 << 63 {
                    Some(i64::MIN)
                } else {
                    i64::try_from(m).ok().map(|v| -v)
                }
            }
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt::from_sign_mag(
            if self.is_zero() {
                Sign::Zero
            } else {
                Sign::Positive
            },
            self.mag.clone(),
        )
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Less => {
                BigInt::from_sign_mag(Sign::Negative, BigUint::from(v.unsigned_abs()))
            }
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_sign_mag(Sign::Positive, BigUint::from(v as u64)),
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigInt::zero()
        } else {
            BigInt::from_sign_mag(Sign::Positive, BigUint::from(v))
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt::from_sign_mag(Sign::Positive, mag)
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;

    fn neg(self) -> BigInt {
        match self.sign {
            Sign::Zero => BigInt::zero(),
            Sign::Positive => BigInt::from_sign_mag(Sign::Negative, self.mag.clone()),
            Sign::Negative => BigInt::from_sign_mag(Sign::Positive, self.mag.clone()),
        }
    }
}

impl Add for &BigInt {
    type Output = BigInt;

    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_mag(a, &self.mag + &rhs.mag),
            _ => {
                // Opposite signs: subtract the smaller magnitude.
                match self.mag.cmp(&rhs.mag) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => BigInt::from_sign_mag(self.sign, &self.mag - &rhs.mag),
                    Ordering::Less => BigInt::from_sign_mag(rhs.sign, &rhs.mag - &self.mag),
                }
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;

    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;

    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = match (self.sign, rhs.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => return BigInt::zero(),
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        BigInt::from_sign_mag(sign, &self.mag * &rhs.mag)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(s: Sign) -> i8 {
            match s {
                Sign::Negative => -1,
                Sign::Zero => 0,
                Sign::Positive => 1,
            }
        }
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Zero => Ordering::Equal,
                Sign::Positive => self.mag.cmp(&other.mag),
                Sign::Negative => other.mag.cmp(&self.mag),
            },
            ord => ord,
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            f.pad(&format!("-{}", self.mag))
        } else {
            f.pad(&self.mag.to_string())
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn construction_and_signs() {
        assert!(b(0).is_zero());
        assert_eq!(b(5).sign(), Sign::Positive);
        assert_eq!(b(-5).sign(), Sign::Negative);
        assert_eq!(b(i64::MIN).to_i64(), Some(i64::MIN));
    }

    #[test]
    fn arithmetic_matches_i128_on_samples() {
        let vals = [-37i64, -1, 0, 1, 2, 999_999_937, -123_456_789];
        for &x in &vals {
            for &y in &vals {
                assert_eq!(
                    (&b(x) + &b(y)).to_string(),
                    (i128::from(x) + i128::from(y)).to_string(),
                    "{x}+{y}"
                );
                assert_eq!(
                    (&b(x) - &b(y)).to_string(),
                    (i128::from(x) - i128::from(y)).to_string(),
                    "{x}-{y}"
                );
                assert_eq!(
                    (&b(x) * &b(y)).to_string(),
                    (i128::from(x) * i128::from(y)).to_string(),
                    "{x}*{y}"
                );
            }
        }
    }

    #[test]
    fn ordering_matches_i64() {
        let vals = [-10i64, -1, 0, 1, 10];
        for &x in &vals {
            for &y in &vals {
                assert_eq!(b(x).cmp(&b(y)), x.cmp(&y), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn negation_is_involutive() {
        for v in [-3i64, 0, 7] {
            assert_eq!(-&(-&b(v)), b(v));
        }
    }

    #[test]
    fn display_includes_sign() {
        assert_eq!(b(-42).to_string(), "-42");
        assert_eq!(b(42).to_string(), "42");
        assert_eq!(b(0).to_string(), "0");
    }

    #[test]
    #[should_panic(expected = "nonzero magnitude")]
    fn zero_sign_with_nonzero_magnitude_rejected() {
        let _ = BigInt::from_sign_mag(Sign::Zero, BigUint::one());
    }
}
