//! Exact rational numbers: the probability type of the whole project.
//!
//! A [`BigRational`] is kept in lowest terms with a strictly positive
//! denominator, so structural equality coincides with numeric equality —
//! which is what lets the integration tests assert that the extensional,
//! intensional, and brute-force evaluation strategies agree *exactly*.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::{BigInt, BigUint, Sign};

/// An exact rational number, always reduced, with positive denominator.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigRational {
    num: BigInt,
    /// Invariant: nonzero; gcd(|num|, den) = 1; den = 1 when num = 0.
    den: BigUint,
}

impl BigRational {
    /// The value `0`.
    pub fn zero() -> Self {
        BigRational {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigRational {
            num: BigInt::one(),
            den: BigUint::one(),
        }
    }

    /// Builds `num / den`, reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return BigRational::zero();
        }
        let g = num.magnitude().gcd(&den);
        let (n, rn) = num.magnitude().div_rem(&g);
        let (d, rd) = den.div_rem(&g);
        debug_assert!(rn.is_zero() && rd.is_zero());
        BigRational {
            num: BigInt::from_sign_mag(num.sign(), n),
            den: d,
        }
    }

    /// Builds from machine integers: `num / den`.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn from_ratio(num: i64, den: u64) -> Self {
        BigRational::new(BigInt::from(num), BigUint::from(den))
    }

    /// Builds from an integer.
    pub fn from_int(v: i64) -> Self {
        BigRational {
            num: BigInt::from(v),
            den: BigUint::one(),
        }
    }

    /// Exact conversion from an IEEE 754 double: every finite `f64` is a
    /// dyadic rational `±m · 2^e`, so the conversion is lossless —
    /// `from_f64(v).unwrap().to_f64() == v` bit for bit. Returns `None`
    /// for NaN and the infinities, which have no rational value.
    ///
    /// This is how the engine's Monte-Carlo estimates (computed in
    /// `f64`) enter the exact-arithmetic API without introducing a
    /// second, hidden rounding: sequential and sharded evaluation stay
    /// bit-identical because the f64 → rational step is injective.
    pub fn from_f64(v: f64) -> Option<Self> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(BigRational::zero());
        }
        let bits = v.to_bits();
        let exp_bits = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        // Normal doubles carry an implicit leading mantissa bit;
        // subnormals (exponent field 0) do not, and sit at 2^-1074.
        let (mantissa, exp) = if exp_bits == 0 {
            (frac, -1074i64)
        } else {
            (frac | (1u64 << 52), exp_bits - 1075)
        };
        let mag = BigUint::from(mantissa);
        let (num_mag, den) = if exp >= 0 {
            (mag.shl_bits(exp as u64), BigUint::one())
        } else {
            (mag, BigUint::one().shl_bits((-exp) as u64))
        };
        let sign = if bits >> 63 == 1 {
            Sign::Negative
        } else {
            Sign::Positive
        };
        Some(BigRational::new(BigInt::from_sign_mag(sign, num_mag), den))
    }

    /// The numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// Returns `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` iff the value is `1`.
    pub fn is_one(&self) -> bool {
        self.den.is_one() && !self.num.is_negative() && self.num.magnitude().is_one()
    }

    /// Returns `true` iff the value lies in the closed interval `[0, 1]`
    /// (i.e., is a valid probability).
    pub fn is_probability(&self) -> bool {
        !self.num.is_negative() && self.num.magnitude() <= &self.den
    }

    /// `1 - self`; the complement probability.
    pub fn complement(&self) -> BigRational {
        &BigRational::one() - self
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        // Align magnitudes so that the division happens between values of
        // comparable size (both operands could individually overflow f64).
        let nbits = self.num.magnitude().bits() as i64;
        let dbits = self.den.bits() as i64;
        if self.is_zero() {
            return 0.0;
        }
        // Fast path for the overwhelmingly common case (tuple
        // probabilities are small fractions): both magnitudes are exactly
        // representable, so one IEEE division is correctly rounded — and
        // bit-identical to the slow path below, whose single rounding
        // also happens in the division (the power-of-two rescale is
        // exact). Crucially this path performs no heap allocation, which
        // is what keeps `Tid::prob_f64` off the profile of the
        // lane-batched evaluation kernel's matrix fills (E21).
        if nbits <= 53 && dbits <= 53 {
            let n = self.num.magnitude().to_u64().expect("fits by bit count") as f64;
            let d = self.den.to_u64().expect("fits by bit count") as f64;
            let v = n / d;
            return if self.num.is_negative() { -v } else { v };
        }
        let shift = nbits - dbits;
        // Scale denominator by 2^shift so num/den' is in [1/2, 2).
        let (n, d) = if shift >= 0 {
            (
                self.num.magnitude().clone(),
                self.den.shl_bits(shift as u64),
            )
        } else {
            (
                self.num.magnitude().shl_bits((-shift) as u64),
                self.den.clone(),
            )
        };
        // The aligned operands share a bit length; past 1024 bits each
        // would individually overflow `f64` (inf/inf = NaN), so drop the
        // same number of low-order bits from both. The truncation
        // perturbs the quotient by a relative ~2^-1000 — far below f64
        // resolution — and operands at or below 1024 bits are untouched.
        let width = n.bits().max(d.bits());
        let (n, d) = if width > 1024 {
            (n.shr_bits(width - 1024), d.shr_bits(width - 1024))
        } else {
            (n, d)
        };
        let ratio = n.to_f64() / d.to_f64();
        let v = mul_pow2(ratio, shift);
        if self.num.is_negative() {
            -v
        } else {
            v
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> BigRational {
        assert!(!self.is_zero(), "reciprocal of zero");
        BigRational::new(
            BigInt::from_sign_mag(self.num.sign(), self.den.clone()),
            self.num.magnitude().clone(),
        )
    }
}

/// `x · 2^e` (ldexp): steps the exponent in representable chunks so the
/// scaling never routes through an overflowed (or fully underflowed)
/// intermediate — `2f64.powi(-1024)` alone would already be `0`. Every
/// step multiplies by an exact power of two, so no rounding happens
/// until the result itself leaves the normal range.
fn mul_pow2(x: f64, e: i64) -> f64 {
    let mut x = x;
    let mut e = e;
    while e > 1023 {
        x *= 2f64.powi(1023);
        e -= 1023;
    }
    while e < -1022 {
        x *= 2f64.powi(-1022);
        e += 1022;
    }
    x * 2f64.powi(e as i32)
}

impl Default for BigRational {
    fn default() -> Self {
        BigRational::zero()
    }
}

impl Add for &BigRational {
    type Output = BigRational;

    fn add(self, rhs: &BigRational) -> BigRational {
        let num = &(&self.num * &BigInt::from(rhs.den.clone()))
            + &(&rhs.num * &BigInt::from(self.den.clone()));
        BigRational::new(num, &self.den * &rhs.den)
    }
}

impl Sub for &BigRational {
    type Output = BigRational;

    fn sub(self, rhs: &BigRational) -> BigRational {
        self + &(-rhs)
    }
}

impl Mul for &BigRational {
    type Output = BigRational;

    fn mul(self, rhs: &BigRational) -> BigRational {
        BigRational::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &BigRational {
    type Output = BigRational;

    /// # Panics
    /// Panics if `rhs` is zero.
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiplication by the reciprocal
    fn div(self, rhs: &BigRational) -> BigRational {
        self * &rhs.recip()
    }
}

impl Neg for &BigRational {
    type Output = BigRational;

    fn neg(self) -> BigRational {
        BigRational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        let lhs = &self.num * &BigInt::from(other.den.clone());
        let rhs = &other.num * &BigInt::from(self.den.clone());
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            f.pad(&self.num.to_string())
        } else {
            f.pad(&format!("{}/{}", self.num, self.den))
        }
    }
}

impl fmt::Debug for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRational({self})")
    }
}

impl From<i64> for BigRational {
    fn from(v: i64) -> Self {
        BigRational::from_int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    #[test]
    fn from_f64_is_exact_and_round_trips() {
        // Exactly representable values come back as the obvious ratios.
        assert_eq!(BigRational::from_f64(0.0).unwrap(), BigRational::zero());
        assert_eq!(BigRational::from_f64(1.0).unwrap(), BigRational::one());
        assert_eq!(BigRational::from_f64(0.25).unwrap(), r(1, 4));
        assert_eq!(BigRational::from_f64(-1.5).unwrap(), r(-3, 2));
        // 0.1 is NOT 1/10 in binary; the conversion preserves the true
        // dyadic value, so the round trip is bit-identical.
        let tenth = BigRational::from_f64(0.1).unwrap();
        assert_ne!(tenth, r(1, 10));
        for v in [
            0.1,
            1.0 / 3.0,
            0.123_456_789,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 4.0, // subnormal
            -0.75,
            1e-300,
            1e300,
        ] {
            let q = BigRational::from_f64(v).unwrap();
            assert_eq!(q.to_f64().to_bits(), v.to_bits(), "{v}");
        }
        assert!(BigRational::from_f64(f64::NAN).is_none());
        assert!(BigRational::from_f64(f64::INFINITY).is_none());
        assert!(BigRational::from_f64(f64::NEG_INFINITY).is_none());
    }

    #[test]
    fn reduction_to_lowest_terms() {
        let v = r(6, 8);
        assert_eq!(v.to_string(), "3/4");
        assert_eq!(r(-6, 8).to_string(), "-3/4");
        assert_eq!(r(0, 17).to_string(), "0");
        assert_eq!(r(8, 4).to_string(), "2");
    }

    #[test]
    fn structural_equality_is_numeric_equality() {
        assert_eq!(r(1, 2), r(2, 4));
        assert_eq!(r(-3, 9), r(-1, 3));
        assert_ne!(r(1, 2), r(1, 3));
    }

    #[test]
    fn field_operations() {
        assert_eq!(&r(1, 2) + &r(1, 3), r(5, 6));
        assert_eq!(&r(1, 2) - &r(1, 3), r(1, 6));
        assert_eq!(&r(2, 3) * &r(3, 4), r(1, 2));
        assert_eq!(&r(1, 2) / &r(1, 4), r(2, 1));
        assert_eq!(-&r(1, 2), r(-1, 2));
        assert_eq!(r(3, 7).recip(), r(7, 3));
    }

    #[test]
    fn complement_of_probability() {
        assert_eq!(r(3, 10).complement(), r(7, 10));
        assert_eq!(BigRational::one().complement(), BigRational::zero());
    }

    #[test]
    fn probability_range_check() {
        assert!(r(0, 1).is_probability());
        assert!(r(1, 1).is_probability());
        assert!(r(999, 1000).is_probability());
        assert!(!r(-1, 2).is_probability());
        assert!(!r(3, 2).is_probability());
    }

    #[test]
    fn ordering_cross_multiplies() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == BigRational::one());
    }

    #[test]
    fn to_f64_accuracy() {
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        assert!((r(-7, 16).to_f64() + 0.4375).abs() < 1e-15);
        assert_eq!(BigRational::zero().to_f64(), 0.0);
    }

    #[test]
    fn to_f64_huge_values_stay_finite() {
        // (2/3)^200: far below f64's minimum positive normal times...
        // actually ~1e-36, fine; also test a huge numerator.
        let mut v = BigRational::one();
        let two_thirds = r(2, 3);
        for _ in 0..200 {
            v = &v * &two_thirds;
        }
        let f = v.to_f64();
        assert!(f > 0.0 && f.is_finite());
        assert!((f.ln() - 200.0 * (2f64 / 3.0).ln()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_rejected() {
        let _ = BigRational::new(BigInt::one(), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_of_zero_panics() {
        let _ = BigRational::zero().recip();
    }
}
