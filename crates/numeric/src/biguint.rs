//! Arbitrary-precision unsigned integers with 32-bit limbs.
//!
//! Little-endian limb order, always normalized (no trailing zero limbs; the
//! empty limb vector is zero). Schoolbook algorithms throughout: the
//! operands in this project are at most a few thousand bits, far below the
//! crossover where Karatsuba would pay off.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Shl, Sub};

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian 32-bit limbs; invariant: last limb (if any) is nonzero.
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` iff the value is `1`.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Builds from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// The little-endian 32-bit limbs, normalized (no trailing zeros, so
    /// zero is the empty slice). Round-trips through
    /// [`from_limbs`](Self::from_limbs) losslessly — the serialization
    /// form wire codecs use.
    pub fn limbs(&self) -> &[u32] {
        &self.limbs
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * 32 + (32 - u64::from(top.leading_zeros()))
            }
        }
    }

    /// Tests bit `i` (little-endian position).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 32) as usize;
        self.limbs
            .get(limb)
            .is_some_and(|&w| (w >> (i % 32)) & 1 == 1)
    }

    /// Converts to `u64`, returning `None` on overflow.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u64::from(self.limbs[0])),
            2 => Some(u64::from(self.limbs[0]) | (u64::from(self.limbs[1]) << 32)),
            _ => None,
        }
    }

    /// Lossy conversion to `f64` with correct magnitude even for values far
    /// beyond `u64` (uses the top 64 bits plus a power-of-two scale).
    pub fn to_f64(&self) -> f64 {
        let bits = self.bits();
        if bits == 0 {
            return 0.0;
        }
        if bits <= 64 {
            return self.to_u64().expect("fits by bit count") as f64;
        }
        // Take the top 64 bits and scale.
        let shift = bits - 64;
        let mut top: u64 = 0;
        for i in (0..64).rev() {
            top = (top << 1) | u64::from(self.bit(shift + i));
        }
        let scale = shift as i32;
        (top as f64) * 2f64.powi(scale)
    }

    /// Shifts right by `n` bits, discarding the low-order bits.
    pub fn shr_bits(&self, n: u64) -> BigUint {
        if n >= self.bits() {
            return BigUint::zero();
        }
        let limb_shift = (n / 32) as usize;
        let bit_shift = (n % 32) as u32;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        for (i, &w) in src.iter().enumerate() {
            let mut v = w >> bit_shift;
            if bit_shift > 0 {
                if let Some(&hi) = src.get(i + 1) {
                    v |= hi << (32 - bit_shift);
                }
            }
            limbs.push(v);
        }
        BigUint::from_limbs(limbs)
    }

    /// Shifts left by `n` bits.
    pub fn shl_bits(&self, n: u64) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = (n / 32) as usize;
        let bit_shift = (n % 32) as u32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &w in &self.limbs {
                out.push((w << bit_shift) | carry);
                carry = w >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Shifts right by one bit (used by binary GCD).
    fn shr1(&mut self) {
        let mut carry = 0u32;
        for w in self.limbs.iter_mut().rev() {
            let new_carry = *w & 1;
            *w = (*w >> 1) | (carry << 31);
            carry = new_carry;
        }
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Returns `true` iff the value is even (zero counts as even).
    fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|&w| w & 1 == 0)
    }

    /// Greatest common divisor (binary GCD: shifts and subtractions only).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        let mut shift = 0u64;
        while a.is_even() && b.is_even() {
            a.shr1();
            b.shr1();
            shift += 1;
        }
        while a.is_even() {
            a.shr1();
        }
        loop {
            while b.is_even() {
                b.shr1();
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = &b - &a;
            if b.is_zero() {
                break;
            }
        }
        a.shl_bits(shift)
    }

    /// Divides by a single 32-bit limb, returning `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn div_rem_u32(&self, d: u32) -> (BigUint, u32) {
        assert!(d != 0, "division by zero");
        let d64 = u64::from(d);
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem: u64 = 0;
        for (i, &w) in self.limbs.iter().enumerate().rev() {
            let cur = (rem << 32) | u64::from(w);
            out[i] = (cur / d64) as u32;
            rem = cur % d64;
        }
        (BigUint::from_limbs(out), rem as u32)
    }

    /// Long division: returns `(quotient, remainder)`.
    ///
    /// Bitwise shift-subtract long division: `O(bits(self) * limbs)`.
    /// Adequate for this project's operand sizes and trivially correct.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if let Some(d) = divisor.to_u64() {
            if let Ok(d32) = u32::try_from(d) {
                let (q, r) = self.div_rem_u32(d32);
                return (q, BigUint::from(u64::from(r)));
            }
        }
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        let n = self.bits();
        let mut quotient_limbs = vec![0u32; self.limbs.len()];
        let mut rem = BigUint::zero();
        for i in (0..n).rev() {
            // rem = rem * 2 + bit_i(self)
            rem = rem.shl_bits(1);
            if self.bit(i) {
                if rem.limbs.is_empty() {
                    rem.limbs.push(1);
                } else {
                    rem.limbs[0] |= 1;
                }
            }
            if rem >= *divisor {
                rem = &rem - divisor;
                quotient_limbs[(i / 32) as usize] |= 1 << (i % 32);
            }
        }
        (BigUint::from_limbs(quotient_limbs), rem)
    }

    /// `self^exp` by repeated squaring.
    pub fn pow(&self, mut exp: u64) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from_limbs(vec![v])
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_limbs(vec![v as u32, (v >> 32) as u32])
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl Add for &BigUint {
    type Output = BigUint;

    fn add(self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (&self.limbs, &rhs.limbs)
        } else {
            (&rhs.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let s = u64::from(l) + u64::from(short.get(i).copied().unwrap_or(0)) + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        BigUint::from_limbs(out)
    }
}

impl Sub for &BigUint {
    type Output = BigUint;

    /// # Panics
    /// Panics on underflow (`self < rhs`).
    fn sub(self, rhs: &BigUint) -> BigUint {
        assert!(self >= rhs, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let d = i64::from(self.limbs[i]) - i64::from(rhs.limbs.get(i).copied().unwrap_or(0))
                + borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = -1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Mul for &BigUint {
    type Output = BigUint;

    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = u64::from(a) * u64::from(b) + u64::from(out[i + j]) + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut idx = i + rhs.limbs.len();
            while carry != 0 {
                let cur = u64::from(out[idx]) + carry;
                out[idx] = cur as u32;
                carry = cur >> 32;
                idx += 1;
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shl<u64> for &BigUint {
    type Output = BigUint;

    fn shl(self, n: u64) -> BigUint {
        self.shl_bits(n)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad("0");
        }
        // Peel 9 decimal digits at a time.
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u32(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::new();
        for (i, chunk) in chunks.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&chunk.to_string());
            } else {
                s.push_str(&format!("{chunk:09}"));
            }
        }
        f.pad(&s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl std::str::FromStr for BigUint {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut acc = BigUint::zero();
        let ten9 = BigUint::from(1_000_000_000u64);
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + 9).min(bytes.len());
            let chunk: u32 = s[i..end].parse()?;
            let width = end - i;
            let scale = if width == 9 {
                ten9.clone()
            } else {
                BigUint::from(10u64.pow(width as u32))
            };
            acc = &(&acc * &scale) + &BigUint::from(u64::from(chunk));
            i = end;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::one().to_string(), "1");
    }

    #[test]
    fn limbs_round_trip_through_from_limbs() {
        assert_eq!(BigUint::zero().limbs(), &[] as &[u32]);
        let v = big(0x0123_4567_89ab_cdef);
        assert_eq!(v.limbs(), &[0x89ab_cdef, 0x0123_4567]);
        assert_eq!(BigUint::from_limbs(v.limbs().to_vec()), v);
        // from_limbs normalizes, so exposed limbs never carry trailing zeros.
        let n = BigUint::from_limbs(vec![7, 0, 0]);
        assert_eq!(n.limbs(), &[7]);
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = big(u64::from(u32::MAX));
        let b = big(1);
        assert_eq!((&a + &b).to_u64(), Some(1 << 32));
    }

    #[test]
    fn sub_with_borrow() {
        let a = big(1 << 32);
        let b = big(1);
        assert_eq!((&a - &b).to_u64(), Some(u64::from(u32::MAX)));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &big(1) - &big(2);
    }

    #[test]
    fn mul_matches_u128() {
        let cases = [
            (0u64, 17u64),
            (1, 1),
            (u64::from(u32::MAX), u64::from(u32::MAX)),
            (123_456_789_012, 987_654_321_098),
        ];
        for (x, y) in cases {
            let prod = &big(x) * &big(y);
            let expect = u128::from(x) * u128::from(y);
            assert_eq!(prod.to_string(), expect.to_string());
        }
    }

    #[test]
    fn display_round_trips_via_parse() {
        let v: BigUint = "123456789012345678901234567890".parse().unwrap();
        assert_eq!(v.to_string(), "123456789012345678901234567890");
    }

    #[test]
    fn div_rem_u32_basics() {
        let (q, r) = big(1000).div_rem_u32(7);
        assert_eq!(q.to_u64(), Some(142));
        assert_eq!(r, 6);
    }

    #[test]
    fn div_rem_general() {
        let a: BigUint = "123456789012345678901234567890".parse().unwrap();
        let b: BigUint = "98765432109876543210".parse().unwrap();
        let (q, r) = a.div_rem(&b);
        let back = &(&q * &b) + &r;
        assert_eq!(back, a);
        assert!(r < b);
        assert_eq!(q.to_string(), "1249999988");
    }

    #[test]
    fn div_rem_smaller_dividend() {
        let (q, r) = big(5).div_rem(&big(100));
        assert!(q.is_zero());
        assert_eq!(r.to_u64(), Some(5));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = big(5).div_rem(&BigUint::zero());
    }

    #[test]
    fn gcd_matches_euclid() {
        fn euclid(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        let cases = [(0, 0), (0, 9), (12, 18), (35, 49), (1 << 40, 3 << 20)];
        for (x, y) in cases {
            assert_eq!(
                big(x).gcd(&big(y)).to_u64(),
                Some(euclid(x, y)),
                "gcd({x},{y})"
            );
        }
    }

    #[test]
    fn bits_and_bit_access() {
        let v = big(0b1011);
        assert_eq!(v.bits(), 4);
        assert!(v.bit(0) && v.bit(1) && !v.bit(2) && v.bit(3) && !v.bit(63));
        assert_eq!(BigUint::zero().bits(), 0);
    }

    #[test]
    fn shl_bits_matches_u128() {
        let v = big(0xdead_beef);
        for shift in [0u64, 1, 31, 32, 33, 64, 65] {
            let got = v.shl_bits(shift);
            let expect = u128::from(0xdead_beefu64) << shift;
            assert_eq!(got.to_string(), expect.to_string(), "shift {shift}");
        }
    }

    #[test]
    fn shr_bits_matches_u128_and_inverts_shl() {
        let v = big(0xdead_beef_cafe_f00d);
        for shift in [0u64, 1, 31, 32, 33, 63, 64, 65] {
            let got = v.shr_bits(shift);
            let expect = u128::from(0xdead_beef_cafe_f00du64) >> shift.min(127);
            assert_eq!(got.to_string(), expect.to_string(), "shift {shift}");
        }
        // Shifting a value left then right by the same amount is lossless.
        for shift in [0u64, 7, 32, 100] {
            assert_eq!(v.shl_bits(shift).shr_bits(shift), v, "shift {shift}");
        }
        // Over-shifting empties the value.
        assert!(v.shr_bits(64).is_zero());
        assert!(BigUint::zero().shr_bits(3).is_zero());
    }

    #[test]
    fn pow_repeated_squaring() {
        assert_eq!(big(2).pow(10).to_u64(), Some(1024));
        assert_eq!(big(3).pow(0).to_u64(), Some(1));
        assert_eq!(big(10).pow(20).to_string(), "100000000000000000000");
    }

    #[test]
    fn to_f64_large() {
        let v = big(10).pow(40);
        let f = v.to_f64();
        assert!((f / 1e40 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_by_length_then_lex() {
        assert!(big(1 << 40) > big(u64::from(u32::MAX)));
        assert!(big(5) < big(6));
        assert_eq!(big(7).cmp(&big(7)), Ordering::Equal);
    }
}
