//! Exact arbitrary-precision arithmetic for probabilistic query evaluation.
//!
//! Probabilistic databases annotate tuples with *rational* probabilities
//! (Monet 2020, Section 2), and the whole point of cross-validating three
//! different evaluation strategies (brute force, extensional lifted
//! inference, and intensional d-D compilation) is that they must agree
//! *exactly* — floating point would hide genuine disagreements behind
//! rounding. This crate provides the minimal exact tower needed:
//!
//! * [`BigUint`] — arbitrary-precision unsigned integers (32-bit limbs),
//! * [`BigInt`] — signed wrapper,
//! * [`BigRational`] — always-reduced fractions, the probability type,
//! * [`binomial`] — exact binomial coefficients (used to check the paper's
//!   footnote 6: the number of Boolean functions with zero Euler
//!   characteristic is `sum_j C(2^k, j)^2 = C(2^(k+1), 2^k)`).
//!
//! Everything is implemented from scratch on `std`; the approved
//! dependency set for this project contains no bignum crate, and the sizes
//! involved (probabilities over a few hundred tuples, binomials up to
//! `C(131072, 65536)`) are comfortably handled by schoolbook algorithms.

mod bigint;
mod biguint;
mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use rational::BigRational;

/// Computes the exact binomial coefficient `C(n, k)`.
///
/// Runs the usual multiplicative formula with an exact division at every
/// step (the intermediate value after multiplying by `n - k + i` is always
/// divisible by `i`).
///
/// ```
/// use intext_numeric::binomial;
/// assert_eq!(binomial(6, 3).to_string(), "20");
/// assert_eq!(binomial(0, 0).to_string(), "1");
/// ```
pub fn binomial(n: u64, k: u64) -> BigUint {
    if k > n {
        return BigUint::zero();
    }
    let k = k.min(n - k);
    let mut acc = BigUint::from(1u64);
    for i in 1..=k {
        acc = &acc * &BigUint::from(n - k + i);
        let (q, r) = acc.div_rem_u32(u32::try_from(i).expect("binomial index fits in u32"));
        debug_assert_eq!(r, 0, "binomial intermediate must divide exactly");
        acc = q;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_values() {
        let expect = [
            (0, 0, "1"),
            (1, 0, "1"),
            (1, 1, "1"),
            (4, 2, "6"),
            (10, 5, "252"),
            (16, 8, "12870"),
            (52, 5, "2598960"),
        ];
        for (n, k, s) in expect {
            assert_eq!(binomial(n, k).to_string(), s, "C({n},{k})");
        }
    }

    #[test]
    fn binomial_out_of_range_is_zero() {
        assert!(binomial(3, 4).is_zero());
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..20u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn binomial_pascal_rule() {
        for n in 1..25u64 {
            for k in 1..n {
                let lhs = binomial(n, k);
                let rhs = &binomial(n - 1, k - 1) + &binomial(n - 1, k);
                assert_eq!(lhs, rhs, "Pascal rule at ({n},{k})");
            }
        }
    }

    #[test]
    fn binomial_large_value_matches_known_digit_count() {
        // C(131072, 65536) is the footnote-6 count for k = 16; we only
        // sanity-check its decimal length here (39,457 digits per the
        // closed form log10 estimate) to keep the test fast.
        let c = binomial(1 << 12, 1 << 11);
        let digits = c.to_string().len();
        // log10(C(4096,2048)) ~ 1229.0
        assert!((1225..=1235).contains(&digits), "got {digits} digits");
    }
}
