//! The unified front-door query type.
//!
//! [`Query`] is what the engine and the wire protocol accept: either a
//! pre-built [`HQuery`] (the paper's `Q_φ`, upgraded via `From`) or a
//! *general* query — a parsed Boolean combination of conjunctive
//! queries over a named [`Vocabulary`]. The engine resolves a general
//! query at plan time: H-shaped queries collapse onto the existing
//! `φ + h_{k,i}` machinery (and its caches), safe UCQs go to lifted
//! inference, and everything else grounds to a circuit.

use std::fmt;

use intext_boolfn::BoolFn;
use intext_tid::{Relation, Vocabulary};

use crate::cq::ConjunctiveQuery;
use crate::hquery::{h_cq, HQuery};
use crate::parse::{parse_query, ParseError};
use crate::ucq::QueryExpr;

#[derive(Clone, Debug)]
enum Repr {
    H(HQuery),
    General { expr: QueryExpr, voc: Vocabulary },
}

/// A query the engine can answer: an [`HQuery`] or a parsed general
/// query over a vocabulary.
///
/// Every engine entry point takes `impl Into<Query>`, and `From`
/// impls cover `HQuery` (by value and by reference), so pre-redesign
/// call sites keep compiling unchanged:
///
/// ```
/// use intext_boolfn::BoolFn;
/// use intext_query::{HQuery, Query};
/// use intext_tid::Vocabulary;
///
/// let h: Query = HQuery::new(BoolFn::var(2, 0)).into();
/// let parsed = Query::parse("R(x),S1(x,y)", &Vocabulary::h(1)).unwrap();
/// assert_eq!(h.required_k(), 1);
/// assert_eq!(parsed.to_string(), "R(x0),S1(x0,x1)");
/// ```
#[derive(Clone, Debug)]
pub struct Query {
    repr: Repr,
}

impl Query {
    /// Parses a general query from text against a vocabulary.
    pub fn parse(text: &str, voc: &Vocabulary) -> Result<Query, ParseError> {
        let expr = parse_query(text, voc)?;
        Ok(Query {
            repr: Repr::General {
                expr,
                voc: voc.clone(),
            },
        })
    }

    /// Wraps an already-built expression with its vocabulary.
    pub fn from_expr(expr: QueryExpr, voc: Vocabulary) -> Query {
        Query {
            repr: Repr::General { expr, voc },
        }
    }

    /// The `HQuery` inside, if this query was built from one.
    pub fn as_h(&self) -> Option<&HQuery> {
        match &self.repr {
            Repr::H(q) => Some(q),
            Repr::General { .. } => None,
        }
    }

    /// The parsed expression and vocabulary, if this is a general query.
    pub fn general(&self) -> Option<(&QueryExpr, &Vocabulary)> {
        match &self.repr {
            Repr::H(_) => None,
            Repr::General { expr, voc } => Some((expr, voc)),
        }
    }

    /// The smallest database arity `k` this query needs: the largest
    /// `Sᵢ` index it mentions (`k` itself for an [`HQuery`]).
    pub fn required_k(&self) -> u8 {
        match &self.repr {
            Repr::H(q) => q.k(),
            Repr::General { expr, .. } => expr.required_k(),
        }
    }
}

impl From<HQuery> for Query {
    fn from(q: HQuery) -> Query {
        Query { repr: Repr::H(q) }
    }
}

impl From<&HQuery> for Query {
    fn from(q: &HQuery) -> Query {
        Query {
            repr: Repr::H(q.clone()),
        }
    }
}

impl From<&Query> for Query {
    fn from(q: &Query) -> Query {
        q.clone()
    }
}

impl fmt::Display for Query {
    /// Renders to the UCQ grammar. An [`HQuery`] renders as its
    /// minterm expansion over the `h` leaves (see [`h_query_text`])
    /// with the canonical `R/S1../T` names; parsing the output with
    /// the same vocabulary reproduces the query.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::H(q) => f.write_str(&h_query_text(q)),
            Repr::General { expr, voc } => {
                let name = |rel: Relation| {
                    voc.relation_name(rel)
                        .map(str::to_owned)
                        .unwrap_or_else(|| rel.to_string())
                };
                f.write_str(&expr.render(&name))
            }
        }
    }
}

/// Recognizes a query expression as an H-query over a `k`-ary
/// database: every leaf CQ must be equivalent (up to minimization and
/// canonical renaming) to some `h_{k,i}`, and the Boolean skeleton
/// then *is* `φ`. Returns the equivalent [`HQuery`], whose plans and
/// cache entries are shared with natively-built H-queries.
pub fn recognize_h(expr: &QueryExpr, k: u8) -> Option<HQuery> {
    // φ's truth table has 2^(k+1) entries; past k = 16 an H-encoding
    // would be larger than any plan it could unlock.
    if k == 0 || k > 16 || expr.required_k() > k {
        return None;
    }
    let targets: Vec<ConjunctiveQuery> = (0..=k)
        .map(|i| h_cq(k, i).minimized().canonical())
        .collect();
    let mut idx = Vec::new();
    for leaf in expr.leaves() {
        let c = leaf.minimized().canonical();
        idx.push(targets.iter().position(|t| *t == c)?);
    }
    // Evaluate the skeleton with leaf `j` read from truth-vector bit
    // `idx[j]`. Children are folded without short-circuiting so the
    // leaf cursor stays in sync with `leaves()` order.
    fn eval_bits(expr: &QueryExpr, idx: &[usize], pos: &mut usize, v: u32) -> bool {
        match expr {
            QueryExpr::Cq(_) => {
                let i = idx[*pos];
                *pos += 1;
                v >> i & 1 == 1
            }
            QueryExpr::And(ps) => ps
                .iter()
                .map(|p| eval_bits(p, idx, pos, v))
                .fold(true, |a, b| a & b),
            QueryExpr::Or(ps) => ps
                .iter()
                .map(|p| eval_bits(p, idx, pos, v))
                .fold(false, |a, b| a | b),
            QueryExpr::Not(inner) => !eval_bits(inner, idx, pos, v),
        }
    }
    let phi = BoolFn::from_fn(k + 1, |v| {
        let mut pos = 0;
        eval_bits(expr, &idx, &mut pos, v)
    });
    Some(HQuery::new(phi))
}

/// Renders an [`HQuery`] in the UCQ grammar using the canonical
/// `R/S1../T` vocabulary: the minterm (DNF) expansion of `φ` over the
/// `h_{k,i}` leaf texts, with negated leaves written `!(…)`. The
/// unsatisfiable `φ = ⊥` renders as the contradiction
/// `h_{k,0} & !(h_{k,0})`.
pub fn h_query_text(q: &HQuery) -> String {
    let k = q.k();
    let name = |rel: Relation| rel.to_string();
    let leaf_texts: Vec<String> = (0..=k)
        .map(|i| QueryExpr::Cq(h_cq(k, i)).render(&name))
        .collect();
    let phi = q.phi();
    if phi.is_bottom() {
        return format!("{} & !({})", leaf_texts[0], leaf_texts[0]);
    }
    let n = u32::from(k) + 1;
    let mut minterms = Vec::new();
    for v in 0..(1u32 << n) {
        if !phi.eval(v) {
            continue;
        }
        let factors: Vec<String> = (0..n)
            .map(|i| {
                let t = &leaf_texts[i as usize];
                if v >> i & 1 == 1 {
                    t.clone()
                } else {
                    format!("!({t})")
                }
            })
            .collect();
        minterms.push(factors.join(" & "));
    }
    minterms.join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_queries_round_trip_through_text() {
        // Every φ on k+1 ≤ 3 variables: render, parse, recognize, and
        // land on the same truth table.
        for k in 1u8..=2 {
            let n = u32::from(k) + 1;
            for table in 0u64..(1u64 << (1u32 << n)) {
                let phi = BoolFn::from_table_u64(n as u8, table);
                let q = HQuery::new(phi.clone());
                let text = h_query_text(&q);
                let parsed = Query::parse(&text, &Vocabulary::h(k)).unwrap();
                let (expr, _) = parsed.general().unwrap();
                let back = recognize_h(expr, k).expect("h text re-recognizes");
                assert_eq!(back.phi(), &phi, "k={k} table={table:#x}");
            }
        }
    }

    #[test]
    fn recognition_is_robust_to_renaming_and_redundancy() {
        let voc = Vocabulary::h(2);
        // h_{2,0} with swapped variable names, a duplicated atom, and a
        // redundant extra S1 atom that minimizes away.
        let text = "S1(b,a),R(b),S1(b,c)";
        let q = Query::parse(text, &voc).unwrap();
        let (expr, _) = q.general().unwrap();
        let h = recognize_h(expr, 2).unwrap();
        assert_eq!(h.phi(), &BoolFn::var(3, 0));
    }

    #[test]
    fn non_h_shapes_are_rejected() {
        let voc = Vocabulary::h(2);
        for text in [
            "R(x)",                             // lone R is no h leaf
            "R(x),S1(x,y),T(y)",                // chain through both endpoints
            "S1(x,y),S2(y,x)",                  // twisted join is not h_{2,1}
            "R(0),S1(0,y)",                     // constants break leaf shape
            "S1(x,y) , S2(x,y) & R(z),S1(z,w)", // mixed: one leaf is h, pair is fine
        ] {
            let q = Query::parse(text, &voc).unwrap();
            let (expr, _) = q.general().unwrap();
            let recognized = recognize_h(expr, 2);
            if text.starts_with("S1(x,y) , S2(x,y)") {
                assert!(recognized.is_some(), "{text}");
            } else {
                assert!(recognized.is_none(), "{text}");
            }
        }
    }

    #[test]
    fn from_impls_cover_existing_call_shapes() {
        let h = HQuery::new(BoolFn::var(2, 1));
        let by_ref: Query = (&h).into();
        let by_val: Query = h.into();
        let again: Query = (&by_val).into();
        assert_eq!(by_ref.required_k(), 1);
        assert!(by_val.as_h().is_some());
        assert!(again.as_h().is_some());
    }
}
