//! Grounding to lineage and circuit compilation — the intensional
//! route for queries the lifted rules reject.
//!
//! Each CQ leaf grounds to a DNF over [`TupleId`] variables: one clause
//! per homomorphism of the leaf into the database, listing the tuples
//! the homomorphism uses. The Boolean skeleton above the leaves
//! (conjunction, disjunction, negation) then compiles directly to an
//! OBDD over raw tuple ids in ascending order, and the weighted model
//! count of that OBDD is the query probability. Exponential in the
//! worst case — callers budget the tuple count — but exact on any
//! query, safe or not, monotone or not.

use intext_circuits::{NodeRef, ObddManager};
use intext_numeric::BigRational;
use intext_tid::{Database, Tid, TupleId};

use crate::brute::BruteForceError;
use crate::cq::{ConjunctiveQuery, Term};
use crate::ucq::QueryExpr;

/// Lineage of one CQ leaf: a DNF with one clause (sorted, deduplicated
/// tuple ids) per homomorphism into `db`.
pub fn ground_cq(cq: &ConjunctiveQuery, db: &Database) -> Vec<Vec<TupleId>> {
    let vars = cq.variables_in_order();
    let mut assignment: Vec<u32> = vec![0; vars.len()];
    let mut clauses = Vec::new();
    // Atoms become checkable once every variable they use is assigned;
    // checking at the earliest such depth prunes dead branches.
    let var_pos = |v: u8| vars.iter().position(|&w| w == v).expect("var is listed");
    let ready_at: Vec<usize> = cq
        .atoms
        .iter()
        .map(|a| {
            a.args
                .iter()
                .filter_map(|t| match t {
                    Term::Var(v) => Some(var_pos(*v) + 1),
                    Term::Const(_) => None,
                })
                .max()
                .unwrap_or(0)
        })
        .collect();
    fn rec(
        cq: &ConjunctiveQuery,
        db: &Database,
        vars: &[u8],
        ready_at: &[usize],
        assignment: &mut Vec<u32>,
        depth: usize,
        clauses: &mut Vec<Vec<TupleId>>,
    ) {
        let resolve = |t: &Term, assignment: &[u32], vars: &[u8]| match t {
            Term::Const(c) => *c,
            Term::Var(v) => {
                let pos = vars.iter().position(|w| w == v).expect("var is listed");
                assignment[pos]
            }
        };
        let tuple_of = |i: usize, assignment: &[u32]| {
            let atom = &cq.atoms[i];
            match (atom.rel, atom.args.as_slice()) {
                (intext_tid::Relation::R, [t]) => db.r_tuple(resolve(t, assignment, vars)),
                (intext_tid::Relation::T, [t]) => db.t_tuple(resolve(t, assignment, vars)),
                (intext_tid::Relation::S(s), [t1, t2]) => db.s_tuple(
                    s,
                    resolve(t1, assignment, vars),
                    resolve(t2, assignment, vars),
                ),
                _ => None,
            }
        };
        for (i, &ready) in ready_at.iter().enumerate() {
            if ready == depth && tuple_of(i, assignment).is_none() {
                return;
            }
        }
        if depth == vars.len() {
            let mut clause: Vec<TupleId> = (0..cq.atoms.len())
                .map(|i| tuple_of(i, assignment).expect("checked at its ready depth"))
                .collect();
            clause.sort();
            clause.dedup();
            clauses.push(clause);
            return;
        }
        for value in 0..db.domain_size() {
            assignment[depth] = value;
            rec(cq, db, vars, ready_at, assignment, depth + 1, clauses);
        }
    }
    rec(cq, db, &vars, &ready_at, &mut assignment, 0, &mut clauses);
    clauses
}

fn build(m: &mut ObddManager, expr: &QueryExpr, db: &Database) -> NodeRef {
    match expr {
        QueryExpr::Cq(cq) => {
            let mut node = NodeRef::FALSE;
            for clause in ground_cq(cq, db) {
                let mut conj = NodeRef::TRUE;
                for id in clause {
                    let lit = m.literal(id.0, true);
                    conj = m.and(conj, lit);
                }
                node = m.or(node, conj);
            }
            node
        }
        QueryExpr::And(parts) => {
            let mut node = NodeRef::TRUE;
            for part in parts {
                let sub = build(m, part, db);
                node = m.and(node, sub);
            }
            node
        }
        QueryExpr::Or(parts) => {
            let mut node = NodeRef::FALSE;
            for part in parts {
                let sub = build(m, part, db);
                node = m.or(node, sub);
            }
            node
        }
        QueryExpr::Not(inner) => {
            let sub = build(m, inner, db);
            m.not(sub)
        }
    }
}

/// Compiles a query's grounded lineage to an OBDD over raw tuple ids
/// (ascending variable order). The pair plugs straight into the
/// engine's degenerate-lineage artifact type.
pub fn ground_circuit(expr: &QueryExpr, db: &Database) -> (ObddManager, NodeRef) {
    let mut m = ObddManager::new((0..db.len() as u32).collect());
    let root = build(&mut m, expr, db);
    (m, root)
}

/// Exact probability by grounded-circuit weighted model counting.
pub fn ground_circuit_probability(expr: &QueryExpr, tid: &Tid) -> BigRational {
    let (m, root) = ground_circuit(expr, tid.database());
    m.probability_exact(root, &|var| tid.prob(TupleId(var)).clone())
}

/// `f64` variant of [`ground_circuit_probability`].
pub fn ground_circuit_probability_f64(expr: &QueryExpr, tid: &Tid) -> f64 {
    let (m, root) = ground_circuit(expr, tid.database());
    m.probability_f64(root, &|var| tid.prob_f64(TupleId(var)))
}

/// Exact brute force over all `2^|D|` worlds, independent of both the
/// lifted rules and the circuit compiler: builds each world as a
/// sub-database and evaluates the query extensionally. The differential
/// oracle for `tests/engine_ucq.rs`.
pub fn ucq_brute_force(expr: &QueryExpr, tid: &Tid) -> Result<BigRational, BruteForceError> {
    let db = tid.database();
    let m = db.len();
    if m >= 64 {
        return Err(BruteForceError::TooManyTuples(m));
    }
    let mut total = BigRational::zero();
    for world in 0u64..(1u64 << m) {
        let mut sub = Database::new(db.k(), db.domain_size());
        for i in 0..m {
            if world >> i & 1 == 1 {
                sub.insert(db.describe(TupleId(i as u32)))
                    .expect("tuples re-insert into an equal-shape database");
            }
        }
        if expr.eval(&sub) {
            total = &total + &tid.world_probability(world);
        }
    }
    Ok(total)
}

/// `f64` variant of [`ucq_brute_force`].
pub fn ucq_brute_force_f64(expr: &QueryExpr, tid: &Tid) -> Result<f64, BruteForceError> {
    let db = tid.database();
    let m = db.len();
    if m >= 64 {
        return Err(BruteForceError::TooManyTuples(m));
    }
    let probs: Vec<f64> = (0..m).map(|i| tid.prob_f64(TupleId(i as u32))).collect();
    let mut total = 0.0f64;
    for world in 0u64..(1u64 << m) {
        let mut weight = 1.0f64;
        for (i, p) in probs.iter().enumerate() {
            weight *= if world >> i & 1 == 1 { *p } else { 1.0 - p };
        }
        if weight == 0.0 {
            continue;
        }
        let mut sub = Database::new(db.k(), db.domain_size());
        for i in 0..m {
            if world >> i & 1 == 1 {
                sub.insert(db.describe(TupleId(i as u32)))
                    .expect("tuples re-insert into an equal-shape database");
            }
        }
        if expr.eval(&sub) {
            total += weight;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::Atom;
    use intext_tid::{Relation, TupleDesc};

    fn fixture() -> Tid {
        let mut db = Database::new(2, 3);
        let mut descs = Vec::new();
        for a in 0..3 {
            descs.push(TupleDesc::R(a));
            descs.push(TupleDesc::T(a));
        }
        for (a, b) in [(0, 1), (1, 1), (2, 0)] {
            descs.push(TupleDesc::S(1, a, b));
        }
        for (a, b) in [(0, 1), (1, 2)] {
            descs.push(TupleDesc::S(2, a, b));
        }
        let mut probs = Vec::new();
        for (i, d) in descs.into_iter().enumerate() {
            db.insert(d).unwrap();
            probs.push(BigRational::from_ratio(i as i64 % 4 + 1, 6));
        }
        Tid::new(db, probs).unwrap()
    }

    fn h0_union() -> QueryExpr {
        // R(x),S1(x,y) | S1(x,y),T(y) — unsafe, so the ground route is
        // its home.
        QueryExpr::Or(vec![
            QueryExpr::Cq(ConjunctiveQuery::new(vec![
                Atom::unary(Relation::R, Term::Var(0)),
                Atom::binary(Relation::S(1), Term::Var(0), Term::Var(1)),
            ])),
            QueryExpr::Cq(ConjunctiveQuery::new(vec![
                Atom::binary(Relation::S(1), Term::Var(0), Term::Var(1)),
                Atom::unary(Relation::T, Term::Var(1)),
            ])),
        ])
    }

    #[test]
    fn grounding_enumerates_homomorphisms() {
        let tid = fixture();
        let cq = ConjunctiveQuery::new(vec![
            Atom::unary(Relation::R, Term::Var(0)),
            Atom::binary(Relation::S(1), Term::Var(0), Term::Var(1)),
        ]);
        let clauses = ground_cq(&cq, tid.database());
        // S1 holds (0,1), (1,1), (2,0) and R holds 0,1,2 → three
        // homomorphisms, each pairing R(a) with S1(a,b).
        assert_eq!(clauses.len(), 3);
        for clause in &clauses {
            assert_eq!(clause.len(), 2);
        }
    }

    #[test]
    fn circuit_matches_brute_force_including_negation() {
        let tid = fixture();
        let exprs = vec![
            h0_union(),
            // Non-monotone: S2 hits without any R support.
            QueryExpr::And(vec![
                QueryExpr::Cq(ConjunctiveQuery::new(vec![Atom::binary(
                    Relation::S(2),
                    Term::Var(0),
                    Term::Var(1),
                )])),
                QueryExpr::Not(Box::new(QueryExpr::Cq(ConjunctiveQuery::new(vec![
                    Atom::unary(Relation::R, Term::Var(0)),
                ])))),
            ]),
            // A ground atom conjoined with a constant-bound join.
            QueryExpr::Cq(ConjunctiveQuery::new(vec![
                Atom::binary(Relation::S(1), Term::Var(0), Term::Const(1)),
                Atom::unary(Relation::T, Term::Const(1)),
            ])),
        ];
        for expr in exprs {
            let exact = ground_circuit_probability(&expr, &tid);
            assert_eq!(exact, ucq_brute_force(&expr, &tid).unwrap(), "on {expr:?}");
            let f = ground_circuit_probability_f64(&expr, &tid);
            let bf = ucq_brute_force_f64(&expr, &tid).unwrap();
            assert!((f - bf).abs() < 1e-12, "f64 on {expr:?}");
            assert!((f - exact.to_f64()).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_matches_compile_to_terminals() {
        let tid = fixture();
        // S2(x,x) has no matching tuples in the fixture.
        let expr = QueryExpr::Cq(ConjunctiveQuery::new(vec![Atom::binary(
            Relation::S(2),
            Term::Var(0),
            Term::Var(0),
        )]));
        let (_, root) = ground_circuit(&expr, tid.database());
        assert_eq!(root, NodeRef::FALSE);
        assert!(ground_circuit_probability(&expr, &tid).is_zero());
        let negated = QueryExpr::Not(Box::new(expr));
        let (_, root) = ground_circuit(&negated, tid.database());
        assert_eq!(root, NodeRef::TRUE);
    }
}
