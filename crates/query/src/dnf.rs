//! Lineage-to-DNF export for monotone `H`-queries.
//!
//! When `φ` is monotone, the grounded lineage of `Q_φ` on a database is
//! a *monotone* DNF over tuple variables: each prime implicant of `φ`
//! (a set of `h` indices) grounds to the Cartesian product of the
//! witness pairs of its `h`'s, and each combination contributes one
//! clause — the conjunction of the tuples it mentions. This is exactly
//! the input shape the Karp–Luby estimator needs: a union of cube
//! events whose individual probabilities are trivial products.
//!
//! The export is deliberately *structural*: clauses carry tuple ids
//! only, never probabilities, so one [`DnfLineage`] serves every
//! probability re-weighting of the same database shape (the same
//! contract as the engine's compiled artifacts).

use intext_tid::Database;

use crate::{h_witnesses, HQuery};

/// The grounded lineage of a monotone `Q_φ` as a DNF over tuple ids.
///
/// Invariants: every clause is sorted and duplicate-free, the clause
/// list itself is sorted and duplicate-free (so construction is
/// deterministic — two builds over equal inputs are `==`), and an
/// *empty clause* means the constant-true cube (it appears only when
/// `φ` is satisfied by the all-false valuation, i.e. `φ ≡ ⊤` under
/// monotonicity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnfLineage {
    clauses: Vec<Vec<u32>>,
    support: Vec<u32>,
}

impl DnfLineage {
    /// The clauses: each is the sorted tuple ids of one conjunctive cube.
    pub fn clauses(&self) -> &[Vec<u32>] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// `true` iff the DNF has no clauses (the lineage is constant
    /// false: no implicant of `φ` has witnesses).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The distinct tuple ids mentioned by any clause, ascending.
    pub fn support(&self) -> &[u32] {
        &self.support
    }

    /// Does the world given as a tuple-presence bitmask satisfy the DNF?
    /// (Brute-force scale only: requires tuple ids below 64.)
    pub fn eval(&self, world: u64) -> bool {
        self.clauses.iter().any(|c| {
            c.iter().all(|&t| {
                assert!(t < 64, "world bitmask supports < 64 tuples");
                world >> t & 1 == 1
            })
        })
    }
}

/// Upper bound on the clause count [`lineage_dnf`] would produce — the
/// sum over `φ`'s prime implicants of the product of witness counts —
/// computed without materializing anything (saturating, so a blown-up
/// instance reports `u64::MAX` rather than overflowing). Returns `None`
/// when `φ` is non-monotone, where no DNF lineage of this shape exists.
///
/// The bound counts pre-deduplication clauses, so it dominates the real
/// clause count; planners use it to decide whether grounding is
/// affordable before paying for it.
pub fn dnf_clause_bound(q: &HQuery, db: &Database) -> Option<u64> {
    let phi = q.phi();
    if !phi.is_monotone() {
        return None;
    }
    let witness_counts: Vec<u64> = (0..=q.k())
        .map(|i| h_witnesses(db, i).len() as u64)
        .collect();
    let mut total = 0u64;
    for implicant in phi.monotone_dnf() {
        let mut product = 1u64;
        for (i, &count) in witness_counts.iter().enumerate() {
            if implicant & (1 << i) != 0 {
                product = product.saturating_mul(count);
            }
        }
        total = total.saturating_add(product);
    }
    Some(total)
}

/// Grounds the lineage of a monotone `Q_φ` on `db` into a [`DnfLineage`]
/// (`None` when `φ` is non-monotone). The result satisfies exactly the
/// worlds [`HQuery::lineage_eval`] accepts.
pub fn lineage_dnf(q: &HQuery, db: &Database) -> Option<DnfLineage> {
    let phi = q.phi();
    if !phi.is_monotone() {
        return None;
    }
    let witnesses: Vec<_> = (0..=q.k()).map(|i| h_witnesses(db, i)).collect();
    let mut clauses: Vec<Vec<u32>> = Vec::new();
    for implicant in phi.monotone_dnf() {
        let hs: Vec<usize> = (0..witnesses.len())
            .filter(|&i| implicant & (1 << i) != 0)
            .collect();
        // An h with no witnesses grounds the whole implicant to false.
        if hs.iter().any(|&i| witnesses[i].is_empty()) {
            continue;
        }
        // Odometer over the Cartesian product of the witness lists. An
        // empty implicant (φ ≡ ⊤) runs exactly once, yielding the empty
        // — constant-true — clause.
        let mut index = vec![0usize; hs.len()];
        loop {
            let mut clause: Vec<u32> = Vec::with_capacity(hs.len() * 2);
            for (slot, &i) in hs.iter().enumerate() {
                let (a, b) = witnesses[i][index[slot]];
                clause.push(a.0);
                clause.push(b.0);
            }
            clause.sort_unstable();
            clause.dedup();
            clauses.push(clause);
            let mut slot = hs.len();
            while slot > 0 {
                index[slot - 1] += 1;
                if index[slot - 1] < witnesses[hs[slot - 1]].len() {
                    break;
                }
                index[slot - 1] = 0;
                slot -= 1;
            }
            if slot == 0 {
                break;
            }
        }
    }
    clauses.sort_unstable();
    clauses.dedup();
    let mut support: Vec<u32> = clauses.iter().flatten().copied().collect();
    support.sort_unstable();
    support.dedup();
    Some(DnfLineage { clauses, support })
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::BoolFn;
    use intext_tid::{complete_database, Database, TupleDesc};

    fn small_db() -> Database {
        let mut db = Database::new(2, 2);
        for t in [
            TupleDesc::R(0),
            TupleDesc::S(1, 0, 1),
            TupleDesc::S(2, 0, 1),
            TupleDesc::S(1, 1, 0),
            TupleDesc::T(1),
        ] {
            db.insert(t).unwrap();
        }
        db
    }

    /// The DNF must accept exactly the worlds the lineage accepts, for
    /// every monotone φ with k = 2 on a concrete small instance.
    #[test]
    fn dnf_agrees_with_lineage_eval_on_every_world() {
        let db = small_db();
        for table in 0..(1u64 << (1u32 << 3)) {
            let phi = BoolFn::from_table_u64(3, table);
            if !phi.is_monotone() {
                continue;
            }
            let q = HQuery::new(phi);
            let dnf = lineage_dnf(&q, &db).unwrap();
            assert!(dnf.len() as u64 <= dnf_clause_bound(&q, &db).unwrap());
            for world in 0..(1u64 << db.len()) {
                assert_eq!(
                    dnf.eval(world),
                    q.lineage_eval(&db, world),
                    "table {table:#x}, world {world:#b}"
                );
            }
        }
    }

    #[test]
    fn clauses_are_sorted_deduped_and_support_is_exact() {
        // h_{2,1} ∧ h_{2,2}-style overlap: shared tuples appear once.
        let phi = BoolFn::from_fn(3, |v| v & 0b110 == 0b110);
        let q = HQuery::new(phi);
        let db = complete_database(2, 2);
        let dnf = lineage_dnf(&q, &db).unwrap();
        for c in dnf.clauses() {
            assert!(c.windows(2).all(|w| w[0] < w[1]), "{c:?}");
        }
        let mut sorted = dnf.clauses().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.as_slice(), dnf.clauses());
        let mut expect: Vec<u32> = dnf.clauses().iter().flatten().copied().collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(dnf.support(), expect.as_slice());
    }

    #[test]
    fn non_monotone_has_no_dnf_and_tautology_grounds_to_true() {
        let db = small_db();
        let non_monotone = BoolFn::from_fn(3, |v| v == 0);
        let q = HQuery::new(non_monotone);
        assert!(lineage_dnf(&q, &db).is_none());
        assert!(dnf_clause_bound(&q, &db).is_none());

        let top = BoolFn::from_fn(3, |_| true);
        let q = HQuery::new(top);
        let dnf = lineage_dnf(&q, &db).unwrap();
        assert_eq!(dnf.clauses(), &[Vec::<u32>::new()]);
        assert!(dnf.eval(0), "the empty clause is constant true");

        let bottom = BoolFn::from_fn(3, |_| false);
        let dnf = lineage_dnf(&HQuery::new(bottom), &db).unwrap();
        assert!(dnf.is_empty());
        assert!(!dnf.eval(u64::MAX >> 1));
    }
}
