//! A small generic conjunctive-query engine over the `H` vocabulary.
//!
//! General enough to express any Boolean CQ on `R, S_1..S_k, T` (with
//! variables shared across atoms and constants), evaluated by
//! backtracking. The `h_{k,i}` queries are defined through this engine;
//! the specialized code paths elsewhere are validated against it.

use std::collections::HashMap;
use std::fmt;

use intext_tid::{Database, Relation};

/// A term: a query variable or a domain constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A query variable, identified by a small index.
    Var(u8),
    /// A domain constant.
    Const(u32),
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "x{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A relational atom `Rel(t1)` or `Rel(t1, t2)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    /// The relation symbol.
    pub rel: Relation,
    /// One term for unary `R`/`T`, two for binary `S_i`.
    pub args: Vec<Term>,
}

impl Atom {
    /// Unary atom.
    pub fn unary(rel: Relation, t: Term) -> Atom {
        debug_assert!(matches!(rel, Relation::R | Relation::T));
        Atom { rel, args: vec![t] }
    }

    /// Binary atom.
    pub fn binary(rel: Relation, t1: Term, t2: Term) -> Atom {
        debug_assert!(matches!(rel, Relation::S(_)));
        Atom {
            rel,
            args: vec![t1, t2],
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A Boolean conjunctive query: an existentially quantified conjunction
/// of atoms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConjunctiveQuery {
    /// The atoms of the query body.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Builds a CQ from atoms.
    pub fn new(atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery { atoms }
    }

    /// The set of variables appearing in the query.
    pub fn variables(&self) -> Vec<u8> {
        let mut vars: Vec<u8> = self
            .atoms
            .iter()
            .flat_map(|a| a.args.iter())
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Does the (deterministic) database satisfy the query?
    ///
    /// Backtracking over atoms with a variable binding environment; the
    /// queries in this project have two atoms and two variables, so no
    /// join optimization is needed.
    pub fn eval(&self, db: &Database) -> bool {
        let mut binding: HashMap<u8, u32> = HashMap::new();
        self.search(db, 0, &mut binding)
    }

    fn search(&self, db: &Database, atom_idx: usize, binding: &mut HashMap<u8, u32>) -> bool {
        let Some(atom) = self.atoms.get(atom_idx) else {
            return true;
        };
        let resolve = |t: &Term, binding: &HashMap<u8, u32>| match t {
            Term::Const(c) => Some(*c),
            Term::Var(v) => binding.get(v).copied(),
        };
        // Candidate argument tuples present in the database for this atom.
        let candidates: Vec<Vec<u32>> = match atom.rel {
            Relation::R => db
                .iter()
                .filter_map(|(_, t)| match t {
                    intext_tid::TupleDesc::R(a) => Some(vec![a]),
                    _ => None,
                })
                .collect(),
            Relation::T => db
                .iter()
                .filter_map(|(_, t)| match t {
                    intext_tid::TupleDesc::T(b) => Some(vec![b]),
                    _ => None,
                })
                .collect(),
            Relation::S(i) => db.s_facts(i).map(|((a, b), _)| vec![a, b]).collect(),
        };
        'cand: for cand in candidates {
            debug_assert_eq!(cand.len(), atom.args.len(), "arity mismatch");
            let mut newly_bound: Vec<u8> = Vec::new();
            for (t, &c) in atom.args.iter().zip(&cand) {
                match resolve(t, binding) {
                    Some(bound) if bound != c => {
                        for v in newly_bound.drain(..) {
                            binding.remove(&v);
                        }
                        continue 'cand;
                    }
                    Some(_) => {}
                    None => {
                        let Term::Var(v) = t else {
                            unreachable!("consts always resolve")
                        };
                        binding.insert(*v, c);
                        newly_bound.push(*v);
                    }
                }
            }
            if self.search(db, atom_idx + 1, binding) {
                return true;
            }
            for v in newly_bound {
                binding.remove(&v);
            }
        }
        false
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vars = self.variables();
        for v in &vars {
            write!(f, "∃x{v} ")?;
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_tid::TupleDesc;

    fn db_with(tuples: &[TupleDesc]) -> Database {
        let mut db = Database::new(3, 4);
        for &t in tuples {
            db.insert(t).unwrap();
        }
        db
    }

    #[test]
    fn single_atom_queries() {
        let q = ConjunctiveQuery::new(vec![Atom::unary(Relation::R, Term::Var(0))]);
        assert!(!q.eval(&db_with(&[])));
        assert!(q.eval(&db_with(&[TupleDesc::R(2)])));
    }

    #[test]
    fn join_on_shared_variables() {
        // ∃x∃y S1(x,y) ∧ S2(x,y): both atoms on the SAME pair.
        let q = ConjunctiveQuery::new(vec![
            Atom::binary(Relation::S(1), Term::Var(0), Term::Var(1)),
            Atom::binary(Relation::S(2), Term::Var(0), Term::Var(1)),
        ]);
        // Present but at different pairs: no.
        let db = db_with(&[TupleDesc::S(1, 0, 1), TupleDesc::S(2, 1, 0)]);
        assert!(!q.eval(&db));
        // Same pair: yes.
        let db = db_with(&[TupleDesc::S(1, 0, 1), TupleDesc::S(2, 0, 1)]);
        assert!(q.eval(&db));
    }

    #[test]
    fn constants_constrain_matching() {
        let q = ConjunctiveQuery::new(vec![Atom::binary(
            Relation::S(1),
            Term::Const(2),
            Term::Var(0),
        )]);
        assert!(!q.eval(&db_with(&[TupleDesc::S(1, 0, 1)])));
        assert!(q.eval(&db_with(&[TupleDesc::S(1, 2, 3)])));
    }

    #[test]
    fn variable_reuse_within_atom() {
        // ∃x S1(x,x): diagonal.
        let q = ConjunctiveQuery::new(vec![Atom::binary(
            Relation::S(1),
            Term::Var(0),
            Term::Var(0),
        )]);
        assert!(!q.eval(&db_with(&[TupleDesc::S(1, 0, 1)])));
        assert!(q.eval(&db_with(&[TupleDesc::S(1, 3, 3)])));
    }

    #[test]
    fn triangle_join_three_atoms() {
        // ∃x∃y R(x) ∧ S1(x,y) ∧ T(y).
        let q = ConjunctiveQuery::new(vec![
            Atom::unary(Relation::R, Term::Var(0)),
            Atom::binary(Relation::S(1), Term::Var(0), Term::Var(1)),
            Atom::unary(Relation::T, Term::Var(1)),
        ]);
        let db = db_with(&[TupleDesc::R(0), TupleDesc::S(1, 0, 1)]);
        assert!(!q.eval(&db));
        let db = db_with(&[TupleDesc::R(0), TupleDesc::S(1, 0, 1), TupleDesc::T(1)]);
        assert!(q.eval(&db));
        // All pieces present but not joinable.
        let db = db_with(&[TupleDesc::R(0), TupleDesc::S(1, 1, 2), TupleDesc::T(3)]);
        assert!(!q.eval(&db));
    }

    #[test]
    fn display_renders_fo_syntax() {
        let q = ConjunctiveQuery::new(vec![
            Atom::unary(Relation::R, Term::Var(0)),
            Atom::binary(Relation::S(1), Term::Var(0), Term::Var(1)),
        ]);
        assert_eq!(q.to_string(), "∃x0 ∃x1 R(x0) ∧ S1(x0,x1)");
    }
}
