//! A small generic conjunctive-query engine over the `H` vocabulary.
//!
//! General enough to express any Boolean CQ on `R, S_1..S_k, T` (with
//! variables shared across atoms and constants), evaluated by
//! backtracking. The `h_{k,i}` queries are defined through this engine;
//! the specialized code paths elsewhere are validated against it.

use std::collections::HashMap;
use std::fmt;

use intext_tid::{Database, Relation};

/// A term: a query variable or a domain constant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A query variable, identified by a small index.
    Var(u8),
    /// A domain constant.
    Const(u32),
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "x{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A relational atom `Rel(t1)` or `Rel(t1, t2)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Atom {
    /// The relation symbol.
    pub rel: Relation,
    /// One term for unary `R`/`T`, two for binary `S_i`.
    pub args: Vec<Term>,
}

impl Atom {
    /// Unary atom.
    pub fn unary(rel: Relation, t: Term) -> Atom {
        debug_assert!(matches!(rel, Relation::R | Relation::T));
        Atom { rel, args: vec![t] }
    }

    /// Binary atom.
    pub fn binary(rel: Relation, t1: Term, t2: Term) -> Atom {
        debug_assert!(matches!(rel, Relation::S(_)));
        Atom {
            rel,
            args: vec![t1, t2],
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A Boolean conjunctive query: an existentially quantified conjunction
/// of atoms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ConjunctiveQuery {
    /// The atoms of the query body.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Builds a CQ from atoms.
    pub fn new(atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery { atoms }
    }

    /// The set of variables appearing in the query.
    pub fn variables(&self) -> Vec<u8> {
        let mut vars: Vec<u8> = self
            .atoms
            .iter()
            .flat_map(|a| a.args.iter())
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Does the (deterministic) database satisfy the query?
    ///
    /// Backtracking over atoms with a variable binding environment; the
    /// queries in this project have two atoms and two variables, so no
    /// join optimization is needed.
    pub fn eval(&self, db: &Database) -> bool {
        let mut binding: HashMap<u8, u32> = HashMap::new();
        self.search(db, 0, &mut binding)
    }

    fn search(&self, db: &Database, atom_idx: usize, binding: &mut HashMap<u8, u32>) -> bool {
        let Some(atom) = self.atoms.get(atom_idx) else {
            return true;
        };
        let resolve = |t: &Term, binding: &HashMap<u8, u32>| match t {
            Term::Const(c) => Some(*c),
            Term::Var(v) => binding.get(v).copied(),
        };
        // Candidate argument tuples present in the database for this atom.
        let candidates: Vec<Vec<u32>> = match atom.rel {
            Relation::R => db
                .iter()
                .filter_map(|(_, t)| match t {
                    intext_tid::TupleDesc::R(a) => Some(vec![a]),
                    _ => None,
                })
                .collect(),
            Relation::T => db
                .iter()
                .filter_map(|(_, t)| match t {
                    intext_tid::TupleDesc::T(b) => Some(vec![b]),
                    _ => None,
                })
                .collect(),
            Relation::S(i) => db.s_facts(i).map(|((a, b), _)| vec![a, b]).collect(),
        };
        'cand: for cand in candidates {
            debug_assert_eq!(cand.len(), atom.args.len(), "arity mismatch");
            let mut newly_bound: Vec<u8> = Vec::new();
            for (t, &c) in atom.args.iter().zip(&cand) {
                match resolve(t, binding) {
                    Some(bound) if bound != c => {
                        for v in newly_bound.drain(..) {
                            binding.remove(&v);
                        }
                        continue 'cand;
                    }
                    Some(_) => {}
                    None => {
                        let Term::Var(v) = t else {
                            unreachable!("consts always resolve")
                        };
                        binding.insert(*v, c);
                        newly_bound.push(*v);
                    }
                }
            }
            if self.search(db, atom_idx + 1, binding) {
                return true;
            }
            for v in newly_bound {
                binding.remove(&v);
            }
        }
        false
    }
}

impl ConjunctiveQuery {
    /// The variables of the query in order of first occurrence (the
    /// order a left-to-right parse assigns indices in).
    pub fn variables_in_order(&self) -> Vec<u8> {
        let mut vars = Vec::new();
        for atom in &self.atoms {
            for t in &atom.args {
                if let Term::Var(v) = t {
                    if !vars.contains(v) {
                        vars.push(*v);
                    }
                }
            }
        }
        vars
    }

    /// The canonical representative of this query's variable-renaming
    /// class: atoms sorted and deduplicated, variables renamed to
    /// `0..n`, choosing (over all `n!` renamings when `n ≤ 7`, else
    /// over the first-occurrence renaming only) the lexicographically
    /// least sorted atom list. Two queries equal up to variable renaming
    /// and atom order/duplication canonicalize identically.
    pub fn canonical(&self) -> ConjunctiveQuery {
        let vars = self.variables_in_order();
        let n = vars.len();
        let rename = |perm: &[u8]| -> Vec<Atom> {
            let mut atoms: Vec<Atom> = self
                .atoms
                .iter()
                .map(|a| Atom {
                    rel: a.rel,
                    args: a
                        .args
                        .iter()
                        .map(|t| match t {
                            Term::Var(v) => {
                                let i = vars.iter().position(|w| w == v).expect("collected");
                                Term::Var(perm[i])
                            }
                            Term::Const(c) => Term::Const(*c),
                        })
                        .collect(),
                })
                .collect();
            atoms.sort();
            atoms.dedup();
            atoms
        };
        let identity: Vec<u8> = (0..n as u8).collect();
        let mut best = rename(&identity);
        if n <= 7 {
            permutations(n as u8, &mut |perm| {
                let candidate = rename(perm);
                if candidate < best {
                    best = candidate;
                }
            });
        }
        ConjunctiveQuery::new(best)
    }

    /// The core of the query: repeatedly drops an atom whenever the
    /// full query has a homomorphism into the remainder (so the
    /// remainder is logically equivalent). Eliminates redundant atoms
    /// like the second `R` in `R(x), R(y), S1(x,z)`.
    pub fn minimized(&self) -> ConjunctiveQuery {
        let mut atoms: Vec<Atom> = Vec::new();
        for a in &self.atoms {
            if !atoms.contains(a) {
                atoms.push(a.clone());
            }
        }
        loop {
            let mut removed = false;
            for i in 0..atoms.len() {
                if atoms.len() == 1 {
                    break;
                }
                let mut reduced = atoms.clone();
                reduced.remove(i);
                if homomorphism(&atoms, &reduced) {
                    atoms = reduced;
                    removed = true;
                    break;
                }
            }
            if !removed {
                return ConjunctiveQuery::new(atoms);
            }
        }
    }
}

/// Calls `visit` with every permutation of `0..n` (Heap's algorithm).
fn permutations(n: u8, visit: &mut impl FnMut(&[u8])) {
    fn heap(slice: &mut [u8], n: usize, visit: &mut impl FnMut(&[u8])) {
        if n <= 1 {
            visit(slice);
            return;
        }
        for i in 0..n {
            heap(slice, n - 1, visit);
            if n.is_multiple_of(2) {
                slice.swap(i, n - 1);
            } else {
                slice.swap(0, n - 1);
            }
        }
    }
    let mut scratch: Vec<u8> = (0..n).collect();
    let len = scratch.len();
    heap(&mut scratch, len, visit);
}

/// Is there a homomorphism from the atom set `from` into `to` — a map
/// of `from`'s variables to `to`'s terms, fixing constants, that sends
/// every atom of `from` onto an atom of `to`? For Boolean CQs `Q, Q'`,
/// `hom(Q → Q')` means `Q'` implies `Q` on every database.
pub(crate) fn homomorphism(from: &[Atom], to: &[Atom]) -> bool {
    fn search(from: &[Atom], to: &[Atom], idx: usize, binding: &mut HashMap<u8, Term>) -> bool {
        let Some(atom) = from.get(idx) else {
            return true;
        };
        'target: for target in to {
            if target.rel != atom.rel || target.args.len() != atom.args.len() {
                continue;
            }
            let mut newly_bound: Vec<u8> = Vec::new();
            for (t, image) in atom.args.iter().zip(&target.args) {
                match t {
                    Term::Const(c) => {
                        if *image != Term::Const(*c) {
                            for v in newly_bound.drain(..) {
                                binding.remove(&v);
                            }
                            continue 'target;
                        }
                    }
                    Term::Var(v) => match binding.get(v) {
                        Some(bound) if bound != image => {
                            for v in newly_bound.drain(..) {
                                binding.remove(&v);
                            }
                            continue 'target;
                        }
                        Some(_) => {}
                        None => {
                            binding.insert(*v, *image);
                            newly_bound.push(*v);
                        }
                    },
                }
            }
            if search(from, to, idx + 1, binding) {
                return true;
            }
            for v in newly_bound {
                binding.remove(&v);
            }
        }
        false
    }
    search(from, to, 0, &mut HashMap::new())
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vars = self.variables();
        for v in &vars {
            write!(f, "∃x{v} ")?;
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_tid::TupleDesc;

    fn db_with(tuples: &[TupleDesc]) -> Database {
        let mut db = Database::new(3, 4);
        for &t in tuples {
            db.insert(t).unwrap();
        }
        db
    }

    #[test]
    fn single_atom_queries() {
        let q = ConjunctiveQuery::new(vec![Atom::unary(Relation::R, Term::Var(0))]);
        assert!(!q.eval(&db_with(&[])));
        assert!(q.eval(&db_with(&[TupleDesc::R(2)])));
    }

    #[test]
    fn join_on_shared_variables() {
        // ∃x∃y S1(x,y) ∧ S2(x,y): both atoms on the SAME pair.
        let q = ConjunctiveQuery::new(vec![
            Atom::binary(Relation::S(1), Term::Var(0), Term::Var(1)),
            Atom::binary(Relation::S(2), Term::Var(0), Term::Var(1)),
        ]);
        // Present but at different pairs: no.
        let db = db_with(&[TupleDesc::S(1, 0, 1), TupleDesc::S(2, 1, 0)]);
        assert!(!q.eval(&db));
        // Same pair: yes.
        let db = db_with(&[TupleDesc::S(1, 0, 1), TupleDesc::S(2, 0, 1)]);
        assert!(q.eval(&db));
    }

    #[test]
    fn constants_constrain_matching() {
        let q = ConjunctiveQuery::new(vec![Atom::binary(
            Relation::S(1),
            Term::Const(2),
            Term::Var(0),
        )]);
        assert!(!q.eval(&db_with(&[TupleDesc::S(1, 0, 1)])));
        assert!(q.eval(&db_with(&[TupleDesc::S(1, 2, 3)])));
    }

    #[test]
    fn variable_reuse_within_atom() {
        // ∃x S1(x,x): diagonal.
        let q = ConjunctiveQuery::new(vec![Atom::binary(
            Relation::S(1),
            Term::Var(0),
            Term::Var(0),
        )]);
        assert!(!q.eval(&db_with(&[TupleDesc::S(1, 0, 1)])));
        assert!(q.eval(&db_with(&[TupleDesc::S(1, 3, 3)])));
    }

    #[test]
    fn triangle_join_three_atoms() {
        // ∃x∃y R(x) ∧ S1(x,y) ∧ T(y).
        let q = ConjunctiveQuery::new(vec![
            Atom::unary(Relation::R, Term::Var(0)),
            Atom::binary(Relation::S(1), Term::Var(0), Term::Var(1)),
            Atom::unary(Relation::T, Term::Var(1)),
        ]);
        let db = db_with(&[TupleDesc::R(0), TupleDesc::S(1, 0, 1)]);
        assert!(!q.eval(&db));
        let db = db_with(&[TupleDesc::R(0), TupleDesc::S(1, 0, 1), TupleDesc::T(1)]);
        assert!(q.eval(&db));
        // All pieces present but not joinable.
        let db = db_with(&[TupleDesc::R(0), TupleDesc::S(1, 1, 2), TupleDesc::T(3)]);
        assert!(!q.eval(&db));
    }

    #[test]
    fn canonical_is_invariant_under_renaming_and_reordering() {
        let a = ConjunctiveQuery::new(vec![
            Atom::unary(Relation::R, Term::Var(3)),
            Atom::binary(Relation::S(1), Term::Var(3), Term::Var(7)),
        ]);
        let b = ConjunctiveQuery::new(vec![
            Atom::binary(Relation::S(1), Term::Var(0), Term::Var(1)),
            Atom::unary(Relation::R, Term::Var(0)),
            Atom::unary(Relation::R, Term::Var(0)), // duplicate
        ]);
        assert_eq!(a.canonical(), b.canonical());
        let c = ConjunctiveQuery::new(vec![
            Atom::binary(Relation::S(1), Term::Var(1), Term::Var(0)), // swapped roles
            Atom::unary(Relation::R, Term::Var(1)),
        ]);
        assert_eq!(a.canonical(), c.canonical());
        // Constants are fixed points: different constants, different class.
        let d = ConjunctiveQuery::new(vec![Atom::unary(Relation::R, Term::Const(2))]);
        let e = ConjunctiveQuery::new(vec![Atom::unary(Relation::R, Term::Const(3))]);
        assert_ne!(d.canonical(), e.canonical());
    }

    #[test]
    fn minimized_drops_redundant_atoms() {
        // R(x), R(y), S1(x,z): R(y) folds onto R(x).
        let q = ConjunctiveQuery::new(vec![
            Atom::unary(Relation::R, Term::Var(0)),
            Atom::unary(Relation::R, Term::Var(1)),
            Atom::binary(Relation::S(1), Term::Var(0), Term::Var(2)),
        ]);
        let core = q.minimized();
        assert_eq!(core.atoms.len(), 2);
        // S1(x,y), S1(x,z): the second atom folds onto the first.
        let q = ConjunctiveQuery::new(vec![
            Atom::binary(Relation::S(1), Term::Var(0), Term::Var(1)),
            Atom::binary(Relation::S(1), Term::Var(0), Term::Var(2)),
        ]);
        assert_eq!(q.minimized().atoms.len(), 1);
        // S1(x,y), S1(y,x): a genuine cycle, nothing to drop.
        let q = ConjunctiveQuery::new(vec![
            Atom::binary(Relation::S(1), Term::Var(0), Term::Var(1)),
            Atom::binary(Relation::S(1), Term::Var(1), Term::Var(0)),
        ]);
        assert_eq!(q.minimized().atoms.len(), 2);
        // Constants block folding: S1(x,1), S1(x,2) is already a core.
        let q = ConjunctiveQuery::new(vec![
            Atom::binary(Relation::S(1), Term::Var(0), Term::Const(1)),
            Atom::binary(Relation::S(1), Term::Var(0), Term::Const(2)),
        ]);
        assert_eq!(q.minimized().atoms.len(), 2);
    }

    #[test]
    fn display_renders_fo_syntax() {
        let q = ConjunctiveQuery::new(vec![
            Atom::unary(Relation::R, Term::Var(0)),
            Atom::binary(Relation::S(1), Term::Var(0), Term::Var(1)),
        ]);
        assert_eq!(q.to_string(), "∃x0 ∃x1 R(x0) ∧ S1(x0,x1)");
    }
}
