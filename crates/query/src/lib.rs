//! Queries: conjunctive queries over the `h_{k,i}` vocabulary, Boolean
//! combinations thereof, and the `H`-queries `Q_φ` of Monet (PODS 2020).
//!
//! Definition 3.1 fixes the building blocks
//!
//! * `h_{k,0} = ∃x∃y R(x) ∧ S_1(x,y)`
//! * `h_{k,i} = ∃x∃y S_i(x,y) ∧ S_{i+1}(x,y)` for `1 <= i < k`
//! * `h_{k,k} = ∃x∃y S_k(x,y) ∧ T(y)`
//!
//! and Definition 3.2 builds `Q_φ = φ[0 ↦ h_{k,0}, ..., k ↦ h_{k,k}]` for
//! any Boolean function `φ` on `V = {0..k}`. When `φ` is monotone, `Q_φ`
//! is a UCQ (`H⁺`); in general it is a Boolean combination of CQs.
//!
//! This crate provides:
//! * a small generic conjunctive-query engine ([`ConjunctiveQuery`],
//!   evaluated by backtracking) used to *define* the `h` queries,
//! * the specialized [`HQuery`] type with fast witness enumeration,
//! * brute-force probabilistic evaluation over all possible worlds
//!   ([`pqe_brute_force`]) — exponential, but the exact ground truth that
//!   every other engine in the workspace is validated against.

mod brute;
mod cq;
mod dnf;
mod hardness;
mod hquery;

pub use brute::{pqe_brute_force, pqe_brute_force_f64, BruteForceError};
pub use cq::{Atom, ConjunctiveQuery, Term};
pub use dnf::{dnf_clause_bound, lineage_dnf, DnfLineage};
pub use hardness::{pqe_brute_force_cq, Pp2Cnf};
pub use hquery::{h_cq, h_truth_vector, h_witnesses, HQuery};
