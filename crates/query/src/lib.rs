//! Queries: conjunctive queries over the `h_{k,i}` vocabulary, Boolean
//! combinations thereof, and the `H`-queries `Q_φ` of Monet (PODS 2020).
//!
//! Definition 3.1 fixes the building blocks
//!
//! * `h_{k,0} = ∃x∃y R(x) ∧ S_1(x,y)`
//! * `h_{k,i} = ∃x∃y S_i(x,y) ∧ S_{i+1}(x,y)` for `1 <= i < k`
//! * `h_{k,k} = ∃x∃y S_k(x,y) ∧ T(y)`
//!
//! and Definition 3.2 builds `Q_φ = φ[0 ↦ h_{k,0}, ..., k ↦ h_{k,k}]` for
//! any Boolean function `φ` on `V = {0..k}`. When `φ` is monotone, `Q_φ`
//! is a UCQ (`H⁺`); in general it is a Boolean combination of CQs.
//!
//! This crate provides:
//! * a small generic conjunctive-query engine ([`ConjunctiveQuery`],
//!   evaluated by backtracking) used to *define* the `h` queries,
//! * the specialized [`HQuery`] type with fast witness enumeration,
//! * brute-force probabilistic evaluation over all possible worlds
//!   ([`pqe_brute_force`]) — exponential, but the exact ground truth that
//!   every other engine in the workspace is validated against,
//! * the general UCQ front door: a text [`parse_query`] over a named
//!   vocabulary, the unified [`Query`] type every engine entry point
//!   accepts, Dalvi–Suciu safety testing and lifted inference for safe
//!   UCQs ([`is_safe_ucq`], [`lifted_probability`]), H-shape
//!   recognition onto the `φ + h_{k,i}` machinery ([`recognize_h`]),
//!   and grounded circuit compilation for everything else
//!   ([`ground_circuit`]).

mod brute;
mod cq;
mod dnf;
mod ground;
mod hardness;
mod hquery;
mod lifted;
mod parse;
mod query;
mod ucq;

pub use brute::{pqe_brute_force, pqe_brute_force_f64, BruteForceError};
pub use cq::{Atom, ConjunctiveQuery, Term};
pub use dnf::{dnf_clause_bound, lineage_dnf, DnfLineage};
pub use ground::{
    ground_circuit, ground_circuit_probability, ground_circuit_probability_f64, ground_cq,
    ucq_brute_force, ucq_brute_force_f64,
};
pub use hardness::{pqe_brute_force_cq, Pp2Cnf};
pub use hquery::{h_cq, h_truth_vector, h_witnesses, HQuery};
pub use lifted::{is_safe_ucq, lifted_probability, lifted_probability_f64};
pub use parse::{parse_query, ParseError, MAX_DEPTH};
pub use query::{h_query_text, recognize_h, Query};
pub use ucq::{QueryExpr, Ucq, MAX_UCQ_DISJUNCTS};
