//! Lifted (extensional) inference for safe UCQs, after Dalvi–Suciu.
//!
//! The evaluator recurses over the *structure* of a union of
//! conjunctive queries, never over worlds:
//!
//! - **Independent union** — disjuncts that share no relation symbol
//!   touch disjoint tuples, so `P(∨ᵢ Qᵢ) = 1 − Πᵢ (1 − P(Qᵢ))`.
//! - **Inclusion–exclusion** — disjuncts entangled through shared
//!   symbols expand as `Σ_{∅≠S} (−1)^{|S|+1} P(∧_{i∈S} Qᵢ)`, with
//!   each conjunction formed by merging CQs with variables renamed
//!   apart.
//! - **Independent join** — within one CQ, atom groups linked by
//!   neither a shared variable nor a shared relation symbol ground to
//!   disjoint tuples, so their probabilities multiply.
//! - **Separator** — a variable occurring in every atom of a connected
//!   CQ makes distinct groundings tuple-disjoint:
//!   `P = 1 − Π_{a ∈ domain} (1 − P(Q[x:=a]))`.
//! - **Ground base** — a fully ground CQ is a product of tuple
//!   probabilities (absent tuples contribute zero).
//!
//! A query where the recursion gets stuck (a connected, non-ground CQ
//! with no workable separator) is *unsafe* and must be evaluated
//! intensionally. [`is_safe_ucq`] runs the same recursion
//! *symbolically*: instead of grounding a separator over the concrete
//! domain, it substitutes one fresh marker constant **and** every
//! constant already occurring in the CQ — covering every constant
//! equality pattern a concrete domain can produce. Control flow below
//! depends only on that pattern (atom equality, variable sharing,
//! relation symbols), so a symbolically safe query can never get stuck
//! at evaluation time. The test is conservative: some queries it
//! rejects may still be tractable.

use std::collections::BTreeSet;

use intext_numeric::BigRational;
use intext_tid::{Database, Relation, Tid, TupleId};

use crate::cq::{Atom, ConjunctiveQuery, Term};
use crate::ucq::{merge_cqs, Ucq};

/// Inclusion–exclusion expands `2^m − 1` subsets; beyond this many
/// entangled disjuncts the query is treated as unsafe.
const MAX_INCLUSION_EXCLUSION: usize = 12;

/// The arithmetic the lifted evaluator needs, instantiated for exact
/// rationals and for floats.
trait Num: Clone {
    fn zero() -> Self;
    fn one() -> Self;
    fn add(&self, other: &Self) -> Self;
    fn sub(&self, other: &Self) -> Self;
    fn mul(&self, other: &Self) -> Self;
    fn tuple_prob(tid: &Tid, id: TupleId) -> Self;
}

impl Num for BigRational {
    fn zero() -> Self {
        BigRational::zero()
    }
    fn one() -> Self {
        BigRational::one()
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn tuple_prob(tid: &Tid, id: TupleId) -> Self {
        tid.prob(id).clone()
    }
}

impl Num for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn tuple_prob(tid: &Tid, id: TupleId) -> Self {
        tid.prob_f64(id)
    }
}

fn atom_vars(atom: &Atom) -> BTreeSet<u8> {
    atom.args
        .iter()
        .filter_map(|t| match t {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        })
        .collect()
}

fn atom_is_ground(atom: &Atom) -> bool {
    atom.args.iter().all(|t| matches!(t, Term::Const(_)))
}

fn cq_constants(cq: &ConjunctiveQuery) -> BTreeSet<u32> {
    cq.atoms
        .iter()
        .flat_map(|a| a.args.iter())
        .filter_map(|t| match t {
            Term::Const(c) => Some(*c),
            Term::Var(_) => None,
        })
        .collect()
}

fn substitute(cq: &ConjunctiveQuery, var: u8, value: u32) -> ConjunctiveQuery {
    let atoms = cq
        .atoms
        .iter()
        .map(|a| Atom {
            rel: a.rel,
            args: a
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) if *v == var => Term::Const(value),
                    other => *other,
                })
                .collect(),
        })
        .collect();
    ConjunctiveQuery::new(atoms)
}

/// Removes exact duplicate atoms, keeping first occurrences in order.
fn dedup_atoms(cq: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut seen: BTreeSet<Atom> = BTreeSet::new();
    let atoms = cq
        .atoms
        .iter()
        .filter(|a| seen.insert((*a).clone()))
        .cloned()
        .collect();
    ConjunctiveQuery::new(atoms)
}

/// Variables occurring in *every* atom — separator candidates, in
/// ascending order for determinism.
fn separators(cq: &ConjunctiveQuery) -> Vec<u8> {
    let mut iter = cq.atoms.iter();
    let Some(first) = iter.next() else {
        return Vec::new();
    };
    let mut common = atom_vars(first);
    for atom in iter {
        let vars = atom_vars(atom);
        common.retain(|v| vars.contains(v));
    }
    common.into_iter().collect()
}

/// Groups items into connected components under `linked`.
fn components<T: Clone>(items: &[T], linked: impl Fn(&T, &T) -> bool) -> Vec<Vec<T>> {
    let n = items.len();
    let mut group = vec![usize::MAX; n];
    let mut out: Vec<Vec<T>> = Vec::new();
    for start in 0..n {
        if group[start] != usize::MAX {
            continue;
        }
        let id = out.len();
        group[start] = id;
        let mut stack = vec![start];
        let mut members = Vec::new();
        while let Some(i) = stack.pop() {
            members.push(items[i].clone());
            for j in 0..n {
                if group[j] == usize::MAX && linked(&items[i], &items[j]) {
                    group[j] = id;
                    stack.push(j);
                }
            }
        }
        out.push(members);
    }
    out
}

fn cq_relations(cq: &ConjunctiveQuery) -> BTreeSet<Relation> {
    cq.atoms.iter().map(|a| a.rel).collect()
}

/// CQs entangled iff they share a relation symbol.
fn union_components(cqs: &[ConjunctiveQuery]) -> Vec<Vec<ConjunctiveQuery>> {
    components(cqs, |a, b| !cq_relations(a).is_disjoint(&cq_relations(b)))
}

/// Atoms entangled iff they share a variable or a relation symbol.
fn atom_components(atoms: &[Atom]) -> Vec<Vec<Atom>> {
    components(atoms, |a, b| {
        a.rel == b.rel || !atom_vars(a).is_disjoint(&atom_vars(b))
    })
}

fn ground_tuple(db: &Database, atom: &Atom) -> Option<TupleId> {
    match (atom.rel, atom.args.as_slice()) {
        (Relation::R, [Term::Const(a)]) => db.r_tuple(*a),
        (Relation::T, [Term::Const(b)]) => db.t_tuple(*b),
        (Relation::S(i), [Term::Const(a), Term::Const(b)]) => db.s_tuple(i, *a, *b),
        _ => None,
    }
}

fn eval_union<N: Num>(cqs: &[ConjunctiveQuery], tid: &Tid) -> Option<N> {
    if cqs.iter().any(|c| c.atoms.is_empty()) {
        return Some(N::one());
    }
    if cqs.is_empty() {
        return Some(N::zero());
    }
    let comps = union_components(cqs);
    if comps.len() > 1 {
        let mut miss = N::one();
        for comp in &comps {
            let p = eval_union::<N>(comp, tid)?;
            miss = miss.mul(&N::one().sub(&p));
        }
        return Some(N::one().sub(&miss));
    }
    if cqs.len() > 1 {
        if cqs.len() > MAX_INCLUSION_EXCLUSION {
            return None;
        }
        let mut total = N::zero();
        for mask in 1u32..(1u32 << cqs.len()) {
            let mut merged = ConjunctiveQuery::new(Vec::new());
            for (i, cq) in cqs.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    merged = merge_cqs(&merged, cq)?;
                }
            }
            let p = eval_cq::<N>(&merged, tid)?;
            total = if mask.count_ones() % 2 == 1 {
                total.add(&p)
            } else {
                total.sub(&p)
            };
        }
        return Some(total);
    }
    eval_cq::<N>(&cqs[0], tid)
}

fn eval_cq<N: Num>(cq: &ConjunctiveQuery, tid: &Tid) -> Option<N> {
    let cq = dedup_atoms(cq);
    if cq.atoms.is_empty() {
        return Some(N::one());
    }
    if cq.atoms.iter().all(atom_is_ground) {
        // Distinct ground atoms are distinct tuples, hence independent.
        let mut p = N::one();
        for atom in &cq.atoms {
            match ground_tuple(tid.database(), atom) {
                Some(id) => p = p.mul(&N::tuple_prob(tid, id)),
                None => return Some(N::zero()),
            }
        }
        return Some(p);
    }
    let comps = atom_components(&cq.atoms);
    if comps.len() > 1 {
        let mut p = N::one();
        for atoms in comps {
            let q = eval_cq::<N>(&ConjunctiveQuery::new(atoms), tid)?;
            p = p.mul(&q);
        }
        return Some(p);
    }
    for sep in separators(&cq) {
        let mut miss = Some(N::one());
        for a in 0..tid.database().domain_size() {
            match eval_cq::<N>(&substitute(&cq, sep, a), tid) {
                Some(p) => {
                    miss = miss.map(|m| m.mul(&N::one().sub(&p)));
                }
                None => {
                    miss = None;
                    break;
                }
            }
        }
        if let Some(miss) = miss {
            return Some(N::one().sub(&miss));
        }
    }
    None
}

fn safe_union(cqs: &[ConjunctiveQuery]) -> bool {
    if cqs.iter().any(|c| c.atoms.is_empty()) || cqs.is_empty() {
        return true;
    }
    let comps = union_components(cqs);
    if comps.len() > 1 {
        return comps.iter().all(|c| safe_union(c));
    }
    if cqs.len() > 1 {
        if cqs.len() > MAX_INCLUSION_EXCLUSION {
            return false;
        }
        for mask in 1u32..(1u32 << cqs.len()) {
            let mut merged = ConjunctiveQuery::new(Vec::new());
            for (i, cq) in cqs.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    match merge_cqs(&merged, cq) {
                        Some(m) => merged = m,
                        None => return false,
                    }
                }
            }
            if !safe_cq(&merged) {
                return false;
            }
        }
        return true;
    }
    safe_cq(&cqs[0])
}

fn safe_cq(cq: &ConjunctiveQuery) -> bool {
    let cq = dedup_atoms(cq);
    if cq.atoms.is_empty() || cq.atoms.iter().all(atom_is_ground) {
        return true;
    }
    let comps = atom_components(&cq.atoms);
    if comps.len() > 1 {
        return comps
            .iter()
            .all(|atoms| safe_cq(&ConjunctiveQuery::new(atoms.clone())));
    }
    'sep: for sep in separators(&cq) {
        // One fresh marker (distinct from everything) plus every
        // occurring constant covers all equality patterns a concrete
        // domain value can realize.
        let constants = cq_constants(&cq);
        let mut marker = u32::MAX;
        while constants.contains(&marker) {
            marker -= 1;
        }
        let mut values: Vec<u32> = constants.into_iter().collect();
        values.push(marker);
        for value in values {
            if !safe_cq(&substitute(&cq, sep, value)) {
                continue 'sep;
            }
        }
        return true;
    }
    false
}

/// Is this UCQ safe — evaluable by the lifted rules on *every* TID
/// instance of its vocabulary? Conservative: `true` guarantees
/// [`lifted_probability`] succeeds; `false` sends the query to an
/// intensional route.
pub fn is_safe_ucq(ucq: &Ucq) -> bool {
    safe_union(ucq.disjuncts())
}

/// Exact lifted evaluation. Returns `None` iff the recursion gets
/// stuck, which [`is_safe_ucq`] rules out in advance.
pub fn lifted_probability(ucq: &Ucq, tid: &Tid) -> Option<BigRational> {
    eval_union::<BigRational>(ucq.disjuncts(), tid)
}

/// Float lifted evaluation; same recursion as [`lifted_probability`]
/// with `f64` arithmetic.
pub fn lifted_probability_f64(ucq: &Ucq, tid: &Tid) -> Option<f64> {
    eval_union::<f64>(ucq.disjuncts(), tid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_tid::TupleDesc;

    fn ratio(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    /// Brute-force world enumeration, independent of the lifted rules.
    fn brute(ucq: &Ucq, tid: &Tid) -> BigRational {
        let db = tid.database();
        let n = db.len();
        assert!(n <= 20, "brute oracle is for small fixtures");
        let mut total = BigRational::zero();
        for world in 0u64..(1u64 << n) {
            let mut sub = Database::new(db.k(), db.domain_size());
            for i in 0..n {
                if world >> i & 1 == 1 {
                    sub.insert(db.describe(TupleId(i as u32))).unwrap();
                }
            }
            if ucq.eval(&sub) {
                total = &total + &tid.world_probability(world);
            }
        }
        total
    }

    fn fixture() -> Tid {
        let mut db = Database::new(1, 3);
        let mut descs = Vec::new();
        for a in 0..3 {
            descs.push(TupleDesc::R(a));
            descs.push(TupleDesc::T(a));
        }
        for (a, b) in [(0, 0), (0, 1), (1, 2), (2, 2)] {
            descs.push(TupleDesc::S(1, a, b));
        }
        let mut probs = Vec::new();
        for (i, d) in descs.into_iter().enumerate() {
            db.insert(d).unwrap();
            probs.push(ratio(i as i64 % 5 + 1, 7));
        }
        Tid::new(db, probs).unwrap()
    }

    fn cq(atoms: Vec<Atom>) -> ConjunctiveQuery {
        ConjunctiveQuery::new(atoms)
    }

    fn var(v: u8) -> Term {
        Term::Var(v)
    }

    #[test]
    fn hierarchical_queries_are_safe_and_match_brute_force() {
        let tid = fixture();
        let queries = vec![
            // ∃x R(x)
            Ucq::new(vec![cq(vec![Atom::unary(Relation::R, var(0))])]),
            // ∃x∃y R(x) ∧ S1(x,y)
            Ucq::new(vec![cq(vec![
                Atom::unary(Relation::R, var(0)),
                Atom::binary(Relation::S(1), var(0), var(1)),
            ])]),
            // ∃x∃y S1(x,y) ∧ T(y) with a constant: S1(0,y) ∧ T(y)
            Ucq::new(vec![cq(vec![
                Atom::binary(Relation::S(1), Term::Const(0), var(0)),
                Atom::unary(Relation::T, var(0)),
            ])]),
            // R(x) ∨ T(y): independent union
            Ucq::new(vec![
                cq(vec![Atom::unary(Relation::R, var(0))]),
                cq(vec![Atom::unary(Relation::T, var(0))]),
            ]),
            // R(0) ∨ R(0),T(x): entangled through the shared ground
            // atom, and the inclusion–exclusion conjunction dedupes
            // back to a self-join-free CQ.
            Ucq::new(vec![
                cq(vec![Atom::unary(Relation::R, Term::Const(0))]),
                cq(vec![
                    Atom::unary(Relation::R, Term::Const(0)),
                    Atom::unary(Relation::T, var(0)),
                ]),
            ]),
            // Ground atoms only
            Ucq::new(vec![cq(vec![
                Atom::unary(Relation::R, Term::Const(0)),
                Atom::unary(Relation::T, Term::Const(2)),
            ])]),
        ];
        for q in queries {
            assert!(is_safe_ucq(&q), "expected safe: {q:?}");
            let exact = lifted_probability(&q, &tid).expect("safe queries evaluate");
            assert_eq!(exact, brute(&q, &tid), "lifted vs brute on {q:?}");
            let f = lifted_probability_f64(&q, &tid).unwrap();
            assert!((f - exact.to_f64()).abs() < 1e-12);
        }
    }

    #[test]
    fn the_h0_union_is_unsafe() {
        // R(x),S1(x,y) ∨ S1(x,y),T(y) — the non-hierarchical #P-hard
        // query; lifted inference must refuse it.
        let q = Ucq::new(vec![
            cq(vec![
                Atom::unary(Relation::R, var(0)),
                Atom::binary(Relation::S(1), var(0), var(1)),
            ]),
            cq(vec![
                Atom::binary(Relation::S(1), var(0), var(1)),
                Atom::unary(Relation::T, var(1)),
            ]),
        ]);
        assert!(!is_safe_ucq(&q));
        assert_eq!(lifted_probability(&q, &fixture()), None);
    }

    #[test]
    fn the_nonhierarchical_single_cq_is_unsafe() {
        // R(x),S1(x,y),T(y): connected, no separator.
        let q = Ucq::new(vec![cq(vec![
            Atom::unary(Relation::R, var(0)),
            Atom::binary(Relation::S(1), var(0), var(1)),
            Atom::unary(Relation::T, var(1)),
        ])]);
        assert!(!is_safe_ucq(&q));
    }

    #[test]
    fn constant_collisions_are_anticipated_symbolically() {
        // S1(x,0),S1(x,y): grounding x can collide y's column with the
        // constant 0; the symbolic test must explore that pattern and
        // the evaluator must still agree with brute force.
        let q = Ucq::new(vec![cq(vec![
            Atom::binary(Relation::S(1), var(0), Term::Const(0)),
            Atom::binary(Relation::S(1), var(0), var(1)),
        ])]);
        let tid = fixture();
        if is_safe_ucq(&q) {
            let exact = lifted_probability(&q, &tid).unwrap();
            assert_eq!(exact, brute(&q, &tid));
        } else {
            // Conservative rejection is acceptable; evaluation must not
            // disagree with brute force if it does complete.
            if let Some(exact) = lifted_probability(&q, &tid) {
                assert_eq!(exact, brute(&q, &tid));
            }
        }
    }
}
