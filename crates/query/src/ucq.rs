//! Boolean combinations of conjunctive queries, and their UCQ normal
//! form.
//!
//! The parser ([`crate::parse`]) produces a [`QueryExpr`]: a Boolean
//! tree (`&`/`|`/`!`) whose leaves are independently existentially
//! closed [`ConjunctiveQuery`]s. This is deliberately *more* than a
//! union of conjunctive queries — the non-monotone `H`-queries the rest
//! of the workspace revolves around are Boolean combinations of the
//! `h_{k,i}` CQs, not UCQs — and the engine's safe-or-H normalizer
//! needs both views:
//!
//! * [`QueryExpr::to_ucq`] rewrites a negation-free expression into a
//!   flat [`Ucq`] (distributing `&` over `|`, renaming variables
//!   apart), the input shape of the Dalvi–Suciu safety test and lifted
//!   evaluator ([`crate::lifted`]);
//! * [`Ucq::normalize`] canonicalizes each disjunct (core minimization
//!   and variable canonicalization, [`ConjunctiveQuery::minimized`] /
//!   [`ConjunctiveQuery::canonical`]), deduplicates, and drops subsumed
//!   disjuncts, so syntactically different spellings of the same query
//!   meet in one normal form.

use std::fmt::Write as _;

use intext_tid::{Database, Relation};

use crate::cq::{homomorphism, Atom, ConjunctiveQuery, Term};

/// Hard bound on how many disjuncts [`QueryExpr::to_ucq`] will produce
/// while distributing `&` over `|` — past it the expression is treated
/// as not-a-UCQ (the engine falls back to the grounding route).
pub const MAX_UCQ_DISJUNCTS: usize = 1024;

/// A Boolean combination of existentially closed conjunctive queries.
///
/// Each [`ConjunctiveQuery`] leaf is closed independently: its
/// variables are scoped to the leaf, so `R(x) & T(x)` is
/// `(∃x R(x)) ∧ (∃x T(x))` — two independent facts — while the
/// comma-conjunction `R(x),S1(x,y)` shares `x` across atoms *inside*
/// one leaf.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum QueryExpr {
    /// An existentially closed conjunctive query (atoms share scope).
    Cq(ConjunctiveQuery),
    /// Boolean conjunction of independently closed subqueries.
    And(Vec<QueryExpr>),
    /// Disjunction.
    Or(Vec<QueryExpr>),
    /// Negation.
    Not(Box<QueryExpr>),
}

impl QueryExpr {
    /// Does the (deterministic) database satisfy the query?
    pub fn eval(&self, db: &Database) -> bool {
        match self {
            QueryExpr::Cq(cq) => cq.eval(db),
            QueryExpr::And(cs) => cs.iter().all(|c| c.eval(db)),
            QueryExpr::Or(cs) => cs.iter().any(|c| c.eval(db)),
            QueryExpr::Not(c) => !c.eval(db),
        }
    }

    /// The CQ leaves in left-to-right order.
    pub fn leaves(&self) -> Vec<&ConjunctiveQuery> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a ConjunctiveQuery>) {
        match self {
            QueryExpr::Cq(cq) => out.push(cq),
            QueryExpr::And(cs) | QueryExpr::Or(cs) => {
                for c in cs {
                    c.collect_leaves(out);
                }
            }
            QueryExpr::Not(c) => c.collect_leaves(out),
        }
    }

    /// The smallest database arity `k` this query can be evaluated on:
    /// the largest `i` with an `S_i` atom (0 when only `R`/`T` occur).
    pub fn required_k(&self) -> u8 {
        self.leaves()
            .iter()
            .flat_map(|cq| cq.atoms.iter())
            .map(|a| match a.rel {
                Relation::S(i) => i,
                Relation::R | Relation::T => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Does the expression contain a negation?
    pub fn has_negation(&self) -> bool {
        match self {
            QueryExpr::Cq(_) => false,
            QueryExpr::And(cs) | QueryExpr::Or(cs) => cs.iter().any(QueryExpr::has_negation),
            QueryExpr::Not(_) => true,
        }
    }

    /// Rewrites a negation-free expression into a flat union of
    /// conjunctive queries, distributing `&` over `|` and renaming
    /// variables apart when conjoining leaves. `None` if the expression
    /// contains negation, runs out of variable indices, or the
    /// distribution exceeds [`MAX_UCQ_DISJUNCTS`] disjuncts.
    pub fn to_ucq(&self) -> Option<Ucq> {
        let disjuncts = self.disjuncts()?;
        Some(Ucq { disjuncts })
    }

    fn disjuncts(&self) -> Option<Vec<ConjunctiveQuery>> {
        match self {
            QueryExpr::Cq(cq) => Some(vec![cq.clone()]),
            QueryExpr::Or(cs) => {
                let mut out = Vec::new();
                for c in cs {
                    out.extend(c.disjuncts()?);
                    if out.len() > MAX_UCQ_DISJUNCTS {
                        return None;
                    }
                }
                Some(out)
            }
            QueryExpr::And(cs) => {
                let mut acc = vec![ConjunctiveQuery::new(Vec::new())];
                for c in cs {
                    let child = c.disjuncts()?;
                    if acc.len().checked_mul(child.len())? > MAX_UCQ_DISJUNCTS {
                        return None;
                    }
                    let mut next = Vec::with_capacity(acc.len() * child.len());
                    for a in &acc {
                        for b in &child {
                            next.push(merge_cqs(a, b)?);
                        }
                    }
                    acc = next;
                }
                Some(acc)
            }
            QueryExpr::Not(_) => None,
        }
    }

    /// The same expression with every leaf replaced by its normal form
    /// (core minimization, then canonical variable renaming). The
    /// Boolean structure is untouched; this is the shape the engine
    /// renders into grounding-route cache keys.
    pub fn normalize_leaves(&self) -> QueryExpr {
        match self {
            QueryExpr::Cq(cq) => QueryExpr::Cq(cq.minimized().canonical()),
            QueryExpr::And(cs) => {
                QueryExpr::And(cs.iter().map(QueryExpr::normalize_leaves).collect())
            }
            QueryExpr::Or(cs) => {
                QueryExpr::Or(cs.iter().map(QueryExpr::normalize_leaves).collect())
            }
            QueryExpr::Not(c) => QueryExpr::Not(Box::new(c.normalize_leaves())),
        }
    }

    /// Renders the expression in the UCQ grammar, naming relations via
    /// `name`. With a [`intext_tid::Vocabulary`]'s names the output
    /// re-parses to this expression (up to per-leaf variable
    /// renumbering); with [`Relation`]'s `Display` names it is the
    /// vocabulary-independent text used for cache keys.
    pub fn render(&self, name: &impl Fn(Relation) -> String) -> String {
        let mut out = String::new();
        self.render_or(name, &mut out);
        out
    }

    fn render_or(&self, name: &impl Fn(Relation) -> String, out: &mut String) {
        match self {
            QueryExpr::Or(cs) if !cs.is_empty() => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" | ");
                    }
                    c.render_and(name, out);
                }
            }
            _ => self.render_and(name, out),
        }
    }

    fn render_and(&self, name: &impl Fn(Relation) -> String, out: &mut String) {
        match self {
            QueryExpr::And(cs) if !cs.is_empty() => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" & ");
                    }
                    c.render_factor(name, out);
                }
            }
            _ => self.render_factor(name, out),
        }
    }

    fn render_factor(&self, name: &impl Fn(Relation) -> String, out: &mut String) {
        match self {
            QueryExpr::Cq(cq) => {
                debug_assert!(!cq.atoms.is_empty(), "rendering an empty CQ");
                for (i, atom) in cq.atoms.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&name(atom.rel));
                    out.push('(');
                    for (j, t) in atom.args.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        match t {
                            Term::Var(v) => {
                                let _ = write!(out, "x{v}");
                            }
                            Term::Const(c) => {
                                let _ = write!(out, "{c}");
                            }
                        }
                    }
                    out.push(')');
                }
            }
            QueryExpr::Not(c) => {
                out.push_str("!(");
                c.render_or(name, out);
                out.push(')');
            }
            QueryExpr::And(_) | QueryExpr::Or(_) => {
                out.push('(');
                self.render_or(name, out);
                out.push(')');
            }
        }
    }
}

/// Conjoins two CQs into one, renaming `b`'s variables apart from
/// `a`'s. `None` when the combined query would run out of `u8` variable
/// indices.
pub(crate) fn merge_cqs(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> Option<ConjunctiveQuery> {
    let offset = a.variables().last().map_or(0u16, |v| u16::from(*v) + 1);
    let bvars = b.variables_in_order();
    if offset + bvars.len() as u16 > 256 {
        return None;
    }
    let mut atoms = a.atoms.clone();
    for atom in &b.atoms {
        atoms.push(Atom {
            rel: atom.rel,
            args: atom
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => {
                        let i = bvars.iter().position(|w| w == v).expect("collected");
                        Term::Var((offset + i as u16) as u8)
                    }
                    Term::Const(c) => Term::Const(*c),
                })
                .collect(),
        });
    }
    Some(ConjunctiveQuery::new(atoms))
}

/// A union of Boolean conjunctive queries, `Q = Q_1 ∨ ... ∨ Q_m`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Ucq {
    disjuncts: Vec<ConjunctiveQuery>,
}

impl Ucq {
    /// Builds a UCQ from its disjuncts.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Ucq {
        Ucq { disjuncts }
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// Does the (deterministic) database satisfy the union?
    pub fn eval(&self, db: &Database) -> bool {
        self.disjuncts.iter().any(|cq| cq.eval(db))
    }

    /// Normal form: each disjunct core-minimized and canonicalized,
    /// exact duplicates removed, and any disjunct implied by another
    /// (a homomorphism from the other into it) dropped — sorted for
    /// determinism.
    pub fn normalize(&self) -> Ucq {
        let mut ds: Vec<ConjunctiveQuery> = self
            .disjuncts
            .iter()
            .map(|cq| cq.minimized().canonical())
            .collect();
        ds.sort();
        ds.dedup();
        let keep: Vec<bool> = (0..ds.len())
            .map(|j| !(0..ds.len()).any(|i| i != j && homomorphism(&ds[i].atoms, &ds[j].atoms)))
            .collect();
        Ucq {
            disjuncts: ds
                .into_iter()
                .zip(keep)
                .filter_map(|(d, k)| k.then_some(d))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: u8) -> Atom {
        Atom::unary(Relation::R, Term::Var(v))
    }

    fn t(v: u8) -> Atom {
        Atom::unary(Relation::T, Term::Var(v))
    }

    fn s(i: u8, a: u8, b: u8) -> Atom {
        Atom::binary(Relation::S(i), Term::Var(a), Term::Var(b))
    }

    fn cq(atoms: Vec<Atom>) -> QueryExpr {
        QueryExpr::Cq(ConjunctiveQuery::new(atoms))
    }

    #[test]
    fn and_distributes_over_or_with_variables_renamed_apart() {
        // (R(x) | T(x)) & S1(x,y) — the leaf variables are independent.
        let e = QueryExpr::And(vec![
            QueryExpr::Or(vec![cq(vec![r(0)]), cq(vec![t(0)])]),
            cq(vec![s(1, 0, 1)]),
        ]);
        let ucq = e.to_ucq().unwrap();
        assert_eq!(ucq.disjuncts().len(), 2);
        for d in ucq.disjuncts() {
            assert_eq!(d.atoms.len(), 2);
            // The S1 atom's variables were renamed apart from the unary's.
            let unary_var = match d.atoms[0].args[0] {
                Term::Var(v) => v,
                Term::Const(_) => unreachable!(),
            };
            assert!(d.atoms[1].args.iter().all(|a| *a != Term::Var(unary_var)));
        }
        assert!(QueryExpr::Not(Box::new(cq(vec![r(0)]))).to_ucq().is_none());
    }

    #[test]
    fn normalize_drops_duplicates_and_subsumed_disjuncts() {
        // R(x) ∨ R(y) ∨ (R(z),T(w)): the renamed duplicate collapses and
        // the conjunction is subsumed by R alone.
        let u = Ucq::new(vec![
            ConjunctiveQuery::new(vec![r(0)]),
            ConjunctiveQuery::new(vec![r(5)]),
            ConjunctiveQuery::new(vec![r(0), t(1)]),
        ]);
        let n = u.normalize();
        assert_eq!(n.disjuncts().len(), 1);
        assert_eq!(n.disjuncts()[0].atoms.len(), 1);
    }

    #[test]
    fn required_k_is_the_largest_s_index() {
        let e = QueryExpr::Or(vec![cq(vec![r(0)]), cq(vec![s(2, 0, 1), s(1, 1, 2)])]);
        assert_eq!(e.required_k(), 2);
        assert_eq!(cq(vec![r(0), t(1)]).required_k(), 0);
    }

    #[test]
    fn render_round_trips_structure() {
        let e = QueryExpr::Or(vec![
            QueryExpr::And(vec![
                cq(vec![r(0), s(1, 0, 1)]),
                QueryExpr::Not(Box::new(cq(vec![t(0)]))),
            ]),
            cq(vec![s(2, 0, 0)]),
        ]);
        let text = e.render(&|rel: Relation| rel.to_string());
        assert_eq!(text, "R(x0),S1(x0,x1) & !(T(x0)) | S2(x0,x0)");
    }
}
