//! The executable core of the `#P`-hardness side of the dichotomy.
//!
//! Every hardness result the paper builds on (Proposition 3.5's hard
//! branch, hence Corollary 3.9 and Proposition 6.4) descends from Dalvi
//! and Suciu's reduction of **#PP2CNF** — counting the models of a
//! *positive partitioned 2-CNF* `Φ = ⋀_{(i,j)∈E} (x_i ∨ y_j)` — to
//! probabilistic evaluation of the "triangle" query
//! `q = ∃x∃y R(x) ∧ S_1(x,y) ∧ T(y)`.
//!
//! The reduction: put `R(i)` and `T(j)` in the database with probability
//! `1/2` each and `S_1(i,j)` with probability `1` for every clause
//! `(i,j)`. Reading `x_i = 1` as "`R(i)` absent" and `y_j = 1` as
//! "`T(j)` absent", a clause `x_i ∨ y_j` fails exactly when the edge
//! `(i,j)` is witnessed, so `Φ` is satisfied iff `q` is *false*:
//!
//! ```text
//! #Φ = 2^(m+n) · (1 − Pr(q))
//! ```
//!
//! Hardness cannot be "run", but the reduction can: this module counts
//! PP2CNF models through a PQE oracle and checks the answer against
//! direct enumeration — making the `#P`-hardness proofs of the paper's
//! red regions concrete.

use intext_numeric::{BigRational, BigUint};
use intext_tid::{Database, Tid, TupleDesc};

use crate::{Atom, ConjunctiveQuery, Term};

/// A positive partitioned 2-CNF: clauses `(x_i ∨ y_j)` over disjoint
/// variable sets `x_0..x_{m-1}` and `y_0..y_{n-1}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pp2Cnf {
    /// Number of `x` variables.
    pub num_x: u32,
    /// Number of `y` variables.
    pub num_y: u32,
    /// Clauses as `(i, j)` index pairs.
    pub clauses: Vec<(u32, u32)>,
}

impl Pp2Cnf {
    /// Builds a formula, validating the variable indices.
    ///
    /// # Panics
    /// Panics if a clause references an out-of-range variable.
    pub fn new(num_x: u32, num_y: u32, clauses: Vec<(u32, u32)>) -> Self {
        for &(i, j) in &clauses {
            assert!(i < num_x && j < num_y, "clause ({i},{j}) out of range");
        }
        Pp2Cnf {
            num_x,
            num_y,
            clauses,
        }
    }

    /// Counts the models by direct enumeration over `2^(m+n)` assignments
    /// (the ground truth; `m + n <= 24`).
    pub fn count_models_direct(&self) -> BigUint {
        let (m, n) = (self.num_x, self.num_y);
        assert!(m + n <= 24, "direct counting supports m + n <= 24");
        let mut count = 0u64;
        for bits in 0..(1u64 << (m + n)) {
            let x = bits & ((1 << m) - 1);
            let y = bits >> m;
            let ok = self
                .clauses
                .iter()
                .all(|&(i, j)| (x >> i) & 1 == 1 || (y >> j) & 1 == 1);
            if ok {
                count += 1;
            }
        }
        BigUint::from(count)
    }

    /// The Dalvi–Suciu gadget database: `R` over the `x` indices (`1/2`),
    /// `T` over the `y` indices (`1/2`), `S_1(i,j)` per clause (prob `1`).
    pub fn to_tid(&self) -> Tid {
        let domain = self.num_x.max(self.num_y);
        let mut db = Database::new(1, domain);
        let mut probs = Vec::new();
        let half = BigRational::from_ratio(1, 2);
        for i in 0..self.num_x {
            db.insert(TupleDesc::R(i)).expect("fresh tuple");
            probs.push(half.clone());
        }
        for j in 0..self.num_y {
            db.insert(TupleDesc::T(j)).expect("fresh tuple");
            probs.push(half.clone());
        }
        for &(i, j) in &self.clauses {
            db.insert(TupleDesc::S(1, i, j)).expect("fresh tuple");
            probs.push(BigRational::one());
        }
        Tid::new(db, probs).expect("valid probabilities")
    }

    /// The triangle query `∃x∃y R(x) ∧ S_1(x,y) ∧ T(y)`.
    pub fn triangle_query() -> ConjunctiveQuery {
        ConjunctiveQuery::new(vec![
            Atom::unary(intext_tid::Relation::R, Term::Var(0)),
            Atom::binary(intext_tid::Relation::S(1), Term::Var(0), Term::Var(1)),
            Atom::unary(intext_tid::Relation::T, Term::Var(1)),
        ])
    }

    /// Counts the models **through the PQE oracle**: evaluates
    /// `Pr(q_triangle)` on the gadget TID (here by brute-force possible
    /// worlds — the only generally correct oracle for a `#P`-hard query)
    /// and inverts the reduction.
    pub fn count_models_via_pqe(&self) -> BigUint {
        let tid = self.to_tid();
        let pr_q = pqe_brute_force_cq(&Self::triangle_query(), &tid);
        // #Φ = 2^(m+n) · (1 − Pr(q)).
        let worlds = BigUint::from(1u64).shl_bits(u64::from(self.num_x + self.num_y));
        let count =
            &BigRational::new(worlds.into(), intext_numeric::BigUint::one()) * &pr_q.complement();
        debug_assert!(count.denom().is_one(), "the count is an integer");
        count.numer().magnitude().clone()
    }
}

/// Brute-force PQE for an arbitrary conjunctive query: enumerates the
/// possible worlds, materializes each sub-database, and runs the generic
/// CQ evaluator. Exponential — which is the point when it plays the
/// oracle for a `#P`-hard query.
pub fn pqe_brute_force_cq(q: &ConjunctiveQuery, tid: &Tid) -> BigRational {
    let db = tid.database();
    let m = db.len();
    assert!(m < 26, "brute-force CQ evaluation supports < 26 tuples");
    let tuples: Vec<TupleDesc> = db.iter().map(|(_, t)| t).collect();
    let mut total = BigRational::zero();
    for world in 0..(1u64 << m) {
        let p = tid.world_probability(world);
        if p.is_zero() {
            continue;
        }
        let mut sub = Database::new(db.k(), db.domain_size());
        for (idx, &t) in tuples.iter().enumerate() {
            if (world >> idx) & 1 == 1 {
                sub.insert(t).expect("subset of a valid instance");
            }
        }
        if q.eval(&sub) {
            total = &total + &p;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_clause_formula() {
        // (x0 ∨ y0): 3 of 4 assignments satisfy.
        let f = Pp2Cnf::new(1, 1, vec![(0, 0)]);
        assert_eq!(f.count_models_direct().to_u64(), Some(3));
        assert_eq!(f.count_models_via_pqe().to_u64(), Some(3));
    }

    #[test]
    fn empty_formula_counts_everything() {
        let f = Pp2Cnf::new(2, 2, vec![]);
        assert_eq!(f.count_models_direct().to_u64(), Some(16));
        assert_eq!(f.count_models_via_pqe().to_u64(), Some(16));
    }

    #[test]
    fn path_and_cycle_graphs() {
        // Path: (x0∨y0)(x1∨y0)(x1∨y1).
        let path = Pp2Cnf::new(2, 2, vec![(0, 0), (1, 0), (1, 1)]);
        assert_eq!(
            path.count_models_via_pqe(),
            path.count_models_direct(),
            "path graph"
        );
        // 4-cycle: (x0∨y0)(x1∨y0)(x1∨y1)(x0∨y1).
        let cycle = Pp2Cnf::new(2, 2, vec![(0, 0), (1, 0), (1, 1), (0, 1)]);
        assert_eq!(
            cycle.count_models_via_pqe(),
            cycle.count_models_direct(),
            "cycle graph"
        );
    }

    #[test]
    fn reduction_matches_on_pseudorandom_graphs() {
        let mut state = 0xabcd_ef01_2345_6789u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..5 {
            let m = (next() % 3 + 1) as u32;
            let n = (next() % 3 + 1) as u32;
            let mut clauses = Vec::new();
            for i in 0..m {
                for j in 0..n {
                    if next() % 2 == 0 {
                        clauses.push((i, j));
                    }
                }
            }
            let f = Pp2Cnf::new(m, n, clauses);
            assert_eq!(
                f.count_models_via_pqe(),
                f.count_models_direct(),
                "trial {trial}: {f:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn clause_indices_validated() {
        let _ = Pp2Cnf::new(1, 1, vec![(1, 0)]);
    }

    #[test]
    fn triangle_query_shape() {
        assert_eq!(
            Pp2Cnf::triangle_query().to_string(),
            "∃x0 ∃x1 R(x0) ∧ S1(x0,x1) ∧ T(x1)"
        );
    }
}
