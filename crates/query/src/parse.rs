//! A total text parser for the UCQ grammar.
//!
//! ```text
//! query  := or                          (then end of input)
//! or     := and ('|' and)*
//! and    := factor ('&' factor)*
//! factor := '!' factor | '(' or ')' | cq
//! cq     := atom (',' atom)*
//! atom   := ident '(' term (',' term)* ')'
//! term   := number | ident
//! ```
//!
//! Precedence from loose to tight: `|`, `&`, `!`, `,`. The comma is
//! atom-level conjunction *inside one CQ leaf* — atoms joined by `,`
//! share a variable scope — while `&` conjoins independently
//! existentially closed subqueries. Identifiers in term position are
//! variables (scoped per CQ leaf, numbered in first-occurrence order);
//! numbers are domain constants; identifiers in atom position resolve
//! against a [`Vocabulary`] with their arity.
//!
//! The parser is **total**: any input — including hostile bytes — comes
//! back as a [`QueryExpr`] or a typed [`ParseError`], never a panic.
//! Nesting depth (parentheses and negations) is capped at
//! [`MAX_DEPTH`] so recursion cannot overflow the stack.

use std::collections::HashMap;
use std::fmt;

use intext_tid::Vocabulary;

use crate::cq::{Atom, ConjunctiveQuery, Term};
use crate::ucq::QueryExpr;

/// Maximum nesting depth of `(...)` and `!` the parser accepts.
pub const MAX_DEPTH: usize = 64;

/// Why a query text did not parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// A character outside the grammar's alphabet.
    UnexpectedChar {
        /// Byte offset of the character.
        pos: usize,
        /// The offending character.
        ch: char,
    },
    /// The input ended where a token was required.
    UnexpectedEnd,
    /// A well-formed token in the wrong place.
    Unexpected {
        /// Byte offset of the token.
        pos: usize,
        /// The token found.
        found: String,
        /// What the grammar required instead.
        expected: &'static str,
    },
    /// An atom's relation name (at its arity) is not in the vocabulary.
    UnknownRelation {
        /// Byte offset of the relation name.
        pos: usize,
        /// The name as written.
        name: String,
        /// The arity implied by the argument list.
        arity: usize,
    },
    /// A constant larger than the `u32` domain.
    ConstantTooLarge {
        /// Byte offset of the number.
        pos: usize,
    },
    /// More than 256 distinct variables in one CQ leaf.
    TooManyVariables {
        /// Byte offset of the variable that overflowed the scope.
        pos: usize,
    },
    /// Nesting beyond [`MAX_DEPTH`] parentheses/negations.
    TooDeep,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedChar { pos, ch } => {
                write!(f, "unexpected character {ch:?} at byte {pos}")
            }
            ParseError::UnexpectedEnd => write!(f, "unexpected end of input"),
            ParseError::Unexpected {
                pos,
                found,
                expected,
            } => write!(f, "expected {expected} at byte {pos}, found {found:?}"),
            ParseError::UnknownRelation { pos, name, arity } => write!(
                f,
                "unknown relation {name:?} of arity {arity} at byte {pos}"
            ),
            ParseError::ConstantTooLarge { pos } => {
                write!(f, "constant at byte {pos} exceeds the u32 domain")
            }
            ParseError::TooManyVariables { pos } => write!(
                f,
                "more than 256 distinct variables in one conjunctive query (byte {pos})"
            ),
            ParseError::TooDeep => write!(f, "nesting deeper than {MAX_DEPTH} levels"),
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    Ident(String),
    Number(u32),
    LParen,
    RParen,
    Comma,
    Amp,
    Pipe,
    Bang,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Amp => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::Bang => write!(f, "!"),
        }
    }
}

fn tokenize(text: &str) -> Result<Vec<(usize, Token)>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = text.char_indices().peekable();
    while let Some(&(pos, ch)) = chars.peek() {
        match ch {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                tokens.push((pos, Token::LParen));
            }
            ')' => {
                chars.next();
                tokens.push((pos, Token::RParen));
            }
            ',' => {
                chars.next();
                tokens.push((pos, Token::Comma));
            }
            '&' => {
                chars.next();
                tokens.push((pos, Token::Amp));
            }
            '|' => {
                chars.next();
                tokens.push((pos, Token::Pipe));
            }
            '!' => {
                chars.next();
                tokens.push((pos, Token::Bang));
            }
            c if c.is_ascii_digit() => {
                let mut value: u64 = 0;
                while let Some(&(_, d)) = chars.peek() {
                    let Some(digit) = d.to_digit(10) else { break };
                    chars.next();
                    value = value * 10 + u64::from(digit);
                    if value > u64::from(u32::MAX) {
                        return Err(ParseError::ConstantTooLarge { pos });
                    }
                }
                tokens.push((pos, Token::Number(value as u32)));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        name.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push((pos, Token::Ident(name)));
            }
            _ => return Err(ParseError::UnexpectedChar { pos, ch }),
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    voc: &'a Vocabulary,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&(usize, Token)> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<(usize, Token)> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Token, expected: &'static str) -> Result<(), ParseError> {
        match self.next() {
            Some((_, t)) if t == want => Ok(()),
            Some((pos, t)) => Err(ParseError::Unexpected {
                pos,
                found: t.to_string(),
                expected,
            }),
            None => Err(ParseError::UnexpectedEnd),
        }
    }

    fn parse_or(&mut self, depth: usize) -> Result<QueryExpr, ParseError> {
        let mut parts = vec![self.parse_and(depth)?];
        while matches!(self.peek(), Some((_, Token::Pipe))) {
            self.next();
            parts.push(self.parse_and(depth)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            QueryExpr::Or(parts)
        })
    }

    fn parse_and(&mut self, depth: usize) -> Result<QueryExpr, ParseError> {
        let mut parts = vec![self.parse_factor(depth)?];
        while matches!(self.peek(), Some((_, Token::Amp))) {
            self.next();
            parts.push(self.parse_factor(depth)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            QueryExpr::And(parts)
        })
    }

    fn parse_factor(&mut self, depth: usize) -> Result<QueryExpr, ParseError> {
        if depth >= MAX_DEPTH {
            return Err(ParseError::TooDeep);
        }
        match self.peek() {
            Some((_, Token::Bang)) => {
                self.next();
                Ok(QueryExpr::Not(Box::new(self.parse_factor(depth + 1)?)))
            }
            Some((_, Token::LParen)) => {
                self.next();
                let inner = self.parse_or(depth + 1)?;
                self.expect(Token::RParen, "`)`")?;
                Ok(inner)
            }
            Some((_, Token::Ident(_))) => self.parse_cq(),
            Some(&(pos, ref t)) => Err(ParseError::Unexpected {
                pos,
                found: t.to_string(),
                expected: "an atom, `!`, or `(`",
            }),
            None => Err(ParseError::UnexpectedEnd),
        }
    }

    fn parse_cq(&mut self) -> Result<QueryExpr, ParseError> {
        let mut scope: HashMap<String, u8> = HashMap::new();
        let mut atoms = vec![self.parse_atom(&mut scope)?];
        while matches!(self.peek(), Some((_, Token::Comma))) {
            self.next();
            atoms.push(self.parse_atom(&mut scope)?);
        }
        Ok(QueryExpr::Cq(ConjunctiveQuery::new(atoms)))
    }

    fn parse_atom(&mut self, scope: &mut HashMap<String, u8>) -> Result<Atom, ParseError> {
        let (name_pos, name) = match self.next() {
            Some((pos, Token::Ident(name))) => (pos, name),
            Some((pos, t)) => {
                return Err(ParseError::Unexpected {
                    pos,
                    found: t.to_string(),
                    expected: "a relation name",
                })
            }
            None => return Err(ParseError::UnexpectedEnd),
        };
        self.expect(Token::LParen, "`(` after a relation name")?;
        let mut args = vec![self.parse_term(scope)?];
        while matches!(self.peek(), Some((_, Token::Comma))) {
            self.next();
            args.push(self.parse_term(scope)?);
        }
        self.expect(Token::RParen, "`)` closing the argument list")?;
        let rel = self
            .voc
            .resolve(&name, args.len())
            .ok_or(ParseError::UnknownRelation {
                pos: name_pos,
                name,
                arity: args.len(),
            })?;
        Ok(Atom { rel, args })
    }

    fn parse_term(&mut self, scope: &mut HashMap<String, u8>) -> Result<Term, ParseError> {
        match self.next() {
            Some((_, Token::Number(n))) => Ok(Term::Const(n)),
            Some((pos, Token::Ident(name))) => {
                if let Some(&v) = scope.get(&name) {
                    return Ok(Term::Var(v));
                }
                if scope.len() > usize::from(u8::MAX) {
                    return Err(ParseError::TooManyVariables { pos });
                }
                let v = scope.len() as u8;
                scope.insert(name, v);
                Ok(Term::Var(v))
            }
            Some((pos, t)) => Err(ParseError::Unexpected {
                pos,
                found: t.to_string(),
                expected: "a variable or constant",
            }),
            None => Err(ParseError::UnexpectedEnd),
        }
    }
}

/// Parses a UCQ-grammar query against a vocabulary. Total: every input
/// yields a [`QueryExpr`] or a typed [`ParseError`].
pub fn parse_query(text: &str, voc: &Vocabulary) -> Result<QueryExpr, ParseError> {
    let tokens = tokenize(text)?;
    if tokens.is_empty() {
        return Err(ParseError::UnexpectedEnd);
    }
    let mut parser = Parser {
        tokens,
        pos: 0,
        voc,
    };
    let expr = parser.parse_or(0)?;
    match parser.next() {
        None => Ok(expr),
        Some((pos, t)) => Err(ParseError::Unexpected {
            pos,
            found: t.to_string(),
            expected: "end of input",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_tid::Relation;

    fn h3() -> Vocabulary {
        Vocabulary::h(3)
    }

    #[test]
    fn parses_the_grammar_with_precedence() {
        let e = parse_query("R(x),S1(x,y) & !(T(z)) | S2(u,u)", &h3()).unwrap();
        let QueryExpr::Or(parts) = &e else {
            panic!("`|` binds loosest: {e:?}")
        };
        assert_eq!(parts.len(), 2);
        let QueryExpr::And(conj) = &parts[0] else {
            panic!("`&` under `|`: {parts:?}")
        };
        assert!(matches!(&conj[0], QueryExpr::Cq(cq) if cq.atoms.len() == 2));
        assert!(matches!(&conj[1], QueryExpr::Not(_)));
        assert!(
            matches!(&parts[1], QueryExpr::Cq(cq) if cq.atoms[0].args[0] == cq.atoms[0].args[1])
        );
    }

    #[test]
    fn comma_shares_scope_and_amp_does_not() {
        // In one CQ leaf, both `x`s are the same variable.
        let e = parse_query("R(x),T(x)", &h3()).unwrap();
        let QueryExpr::Cq(cq) = &e else { panic!() };
        assert_eq!(cq.atoms[0].args[0], cq.atoms[1].args[0]);
        // Across `&`, each leaf opens a fresh scope (both are Var(0)
        // *within their own leaf*).
        let e = parse_query("R(x) & T(x)", &h3()).unwrap();
        let QueryExpr::And(parts) = &e else { panic!() };
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn constants_and_custom_vocabularies_resolve() {
        let voc =
            Vocabulary::new(vec!["Person".into(), "City".into()], vec!["LivesIn".into()]).unwrap();
        let e = parse_query("Person(x), LivesIn(x, 4), City(4)", &voc).unwrap();
        let QueryExpr::Cq(cq) = &e else { panic!() };
        assert_eq!(cq.atoms[1].rel, Relation::S(1));
        assert_eq!(cq.atoms[1].args[1], Term::Const(4));
        assert_eq!(cq.atoms[2].args[0], Term::Const(4));
    }

    #[test]
    fn errors_are_typed_and_total() {
        let voc = h3();
        assert_eq!(parse_query("", &voc), Err(ParseError::UnexpectedEnd));
        assert_eq!(parse_query("R(x", &voc), Err(ParseError::UnexpectedEnd));
        assert!(matches!(
            parse_query("R(x))", &voc),
            Err(ParseError::Unexpected { .. })
        ));
        assert!(matches!(
            parse_query("(R(x)), T(y)", &voc), // comma after a paren group
            Err(ParseError::Unexpected { .. })
        ));
        assert!(matches!(
            parse_query("Q(x)", &voc),
            Err(ParseError::UnknownRelation { arity: 1, .. })
        ));
        assert!(matches!(
            parse_query("R(x,y)", &voc), // R at the wrong arity
            Err(ParseError::UnknownRelation { arity: 2, .. })
        ));
        assert!(matches!(
            parse_query("S4(x,y)", &voc), // beyond k = 3
            Err(ParseError::UnknownRelation { .. })
        ));
        assert!(matches!(
            parse_query("R(99999999999)", &voc),
            Err(ParseError::ConstantTooLarge { .. })
        ));
        assert!(matches!(
            parse_query("R(#)", &voc),
            Err(ParseError::UnexpectedChar { ch: '#', .. })
        ));
        let deep = format!("{}R(x){}", "(".repeat(80), ")".repeat(80));
        assert_eq!(parse_query(&deep, &voc), Err(ParseError::TooDeep));
        let negs = format!("{}R(x)", "!".repeat(80));
        assert_eq!(parse_query(&negs, &voc), Err(ParseError::TooDeep));
    }

    #[test]
    fn render_then_parse_is_identity_on_parser_output() {
        let voc = h3();
        for text in [
            "R(x0)",
            "R(x0),S1(x0,x1)",
            "R(x0),S1(x0,x1) & !(T(x0)) | S2(x0,x0)",
            "!(R(x0) | T(x0)) & S3(x0,7)",
            "S1(x0,x1),S2(x1,x0),T(x1)",
        ] {
            let e = parse_query(text, &voc).unwrap();
            let rendered = e.render(&|rel: Relation| rel.to_string());
            assert_eq!(rendered, text);
            assert_eq!(parse_query(&rendered, &voc).unwrap(), e);
        }
    }
}
