//! The `h_{k,i}` queries and the `H`-queries `Q_φ`
//! (Definitions 3.1 and 3.2 of the paper).

use std::fmt;

use intext_boolfn::BoolFn;
use intext_tid::{Database, Relation, TupleId};

use crate::{Atom, ConjunctiveQuery, Term};

/// The conjunctive query `h_{k,i}` (Definition 3.1).
///
/// # Panics
/// Panics unless `i <= k` and `k >= 1`.
pub fn h_cq(k: u8, i: u8) -> ConjunctiveQuery {
    assert!(k >= 1, "k >= 1 required");
    assert!(i <= k, "h_{{k,i}} needs 0 <= i <= k");
    let (x, y) = (Term::Var(0), Term::Var(1));
    let atoms = if i == 0 {
        vec![
            Atom::unary(Relation::R, x),
            Atom::binary(Relation::S(1), x, y),
        ]
    } else if i == k {
        vec![
            Atom::binary(Relation::S(k), x, y),
            Atom::unary(Relation::T, y),
        ]
    } else {
        vec![
            Atom::binary(Relation::S(i), x, y),
            Atom::binary(Relation::S(i + 1), x, y),
        ]
    };
    ConjunctiveQuery::new(atoms)
}

/// The *witnesses* of `h_{k,i}` on a database: the pairs of tuples whose
/// joint presence satisfies the query. The lineage of `h_{k,i}` is exactly
/// the DNF `∨ (t1 ∧ t2)` over these pairs.
pub fn h_witnesses(db: &Database, i: u8) -> Vec<(TupleId, TupleId)> {
    let k = db.k();
    assert!(i <= k, "h_{{k,i}} needs 0 <= i <= k");
    let mut out = Vec::new();
    if i == 0 {
        for ((a, b), s_id) in db.s_facts(1) {
            let _ = b;
            if let Some(r_id) = db.r_tuple(a) {
                out.push((r_id, s_id));
            }
        }
    } else if i == k {
        for ((_, b), s_id) in db.s_facts(k) {
            if let Some(t_id) = db.t_tuple(b) {
                out.push((s_id, t_id));
            }
        }
    } else {
        for ((a, b), s_id) in db.s_facts(i) {
            if let Some(s2_id) = db.s_tuple(i + 1, a, b) {
                out.push((s_id, s2_id));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Evaluates all `h_{k,i}` on a deterministic database, returning the
/// truth vector as a bitmask (bit `i` = `h_{k,i}` holds).
pub fn h_truth_vector(db: &Database) -> u32 {
    (0..=db.k())
        .filter(|&i| !h_witnesses(db, i).is_empty())
        .map(|i| 1u32 << i)
        .sum()
}

/// An `H`-query `Q_φ` (Definition 3.2): the Boolean combination `φ` of
/// the queries `h_{k,0}, ..., h_{k,k}`.
///
/// When `φ` is monotone, `Q_φ` is (equivalent to) a UCQ and belongs to
/// the class `H⁺`; otherwise it is a Boolean combination of CQs.
#[derive(Clone, Debug)]
pub struct HQuery {
    phi: BoolFn,
}

impl HQuery {
    /// Builds `Q_φ`; the chain length is `k = phi.num_vars() - 1`.
    pub fn new(phi: BoolFn) -> Self {
        HQuery { phi }
    }

    /// The defining Boolean function `φ`.
    pub fn phi(&self) -> &BoolFn {
        &self.phi
    }

    /// The chain length `k`.
    pub fn k(&self) -> u8 {
        self.phi.k()
    }

    /// Is the query a UCQ (i.e. is `φ` monotone)?
    pub fn is_ucq(&self) -> bool {
        self.phi.is_monotone()
    }

    /// Evaluates `Q_φ` on a deterministic database.
    ///
    /// # Panics
    /// Panics if the database's `k` differs from the query's.
    pub fn eval(&self, db: &Database) -> bool {
        assert_eq!(db.k(), self.k(), "database vocabulary mismatch");
        self.phi.eval(h_truth_vector(db))
    }

    /// Evaluates the query's lineage on one possible world of `db`,
    /// specified as a tuple-presence bitmask (requires < 64 tuples).
    ///
    /// Together with [`h_witnesses`] this is the semantics
    /// `Lin(Q_φ, D)(D') = [D' |= Q_φ]` used by the brute-force evaluator
    /// and by the circuit validators.
    pub fn lineage_eval(&self, db: &Database, world: u64) -> bool {
        assert!(db.len() < 64, "world bitmask supports < 64 tuples");
        let mut truth = 0u32;
        for i in 0..=self.k() {
            let holds = h_witnesses(db, i).iter().any(|&(t1, t2)| {
                let m = (1u64 << t1.0) | (1u64 << t2.0);
                world & m == m
            });
            if holds {
                truth |= 1 << i;
            }
        }
        self.phi.eval(truth)
    }
}

impl fmt::Display for HQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q_φ with k={}, φ={:?}", self.k(), self.phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::phi9;
    use intext_tid::{complete_database, TupleDesc};

    #[test]
    fn h_cq_shapes_match_definition_3_1() {
        assert_eq!(h_cq(3, 0).to_string(), "∃x0 ∃x1 R(x0) ∧ S1(x0,x1)");
        assert_eq!(h_cq(3, 1).to_string(), "∃x0 ∃x1 S1(x0,x1) ∧ S2(x0,x1)");
        assert_eq!(h_cq(3, 3).to_string(), "∃x0 ∃x1 S3(x0,x1) ∧ T(x1)");
    }

    #[test]
    #[should_panic(expected = "0 <= i <= k")]
    fn h_cq_index_out_of_range() {
        let _ = h_cq(2, 3);
    }

    #[test]
    fn witnesses_match_generic_cq_evaluation() {
        // On assorted small instances, h_{k,i} holds iff it has a witness.
        let mut db = Database::new(2, 3);
        db.insert(TupleDesc::R(0)).unwrap();
        db.insert(TupleDesc::S(1, 0, 1)).unwrap();
        db.insert(TupleDesc::S(2, 0, 1)).unwrap();
        db.insert(TupleDesc::S(2, 2, 2)).unwrap();
        db.insert(TupleDesc::T(1)).unwrap();
        for i in 0..=2u8 {
            let via_cq = h_cq(2, i).eval(&db);
            let via_witness = !h_witnesses(&db, i).is_empty();
            assert_eq!(via_cq, via_witness, "h_{{2,{i}}}");
        }
        assert_eq!(h_truth_vector(&db), 0b111);
    }

    #[test]
    fn witnesses_on_empty_and_complete_instances() {
        let empty = Database::new(3, 3);
        for i in 0..=3 {
            assert!(h_witnesses(&empty, i).is_empty());
        }
        let full = complete_database(3, 3);
        for i in 0..=3 {
            // Complete instance: h_{k,0} has n*n witnesses, the middle ones
            // n*n, and h_{k,k} n*n.
            assert_eq!(h_witnesses(&full, i).len(), 9, "i={i}");
        }
    }

    #[test]
    fn hquery_eval_composes_phi() {
        let q = HQuery::new(phi9());
        // Complete database satisfies every h, and phi9(1111) = true.
        assert!(q.eval(&complete_database(3, 2)));
        // Empty database: truth vector 0000, phi9(0) = false.
        assert!(!q.eval(&Database::new(3, 2)));
    }

    #[test]
    fn lineage_eval_agrees_with_eval_on_sub_databases() {
        // For every world of a small instance, lineage_eval must equal
        // evaluating Q_φ on the corresponding sub-database.
        let mut db = Database::new(2, 2);
        let tuples = [
            TupleDesc::R(0),
            TupleDesc::S(1, 0, 1),
            TupleDesc::S(2, 0, 1),
            TupleDesc::T(1),
        ];
        for t in tuples {
            db.insert(t).unwrap();
        }
        let phi = BoolFn::from_fn(3, |v| (v & 0b001 != 0) ^ (v & 0b100 != 0));
        let q = HQuery::new(phi);
        for world in 0..(1u64 << tuples.len()) {
            let mut sub = Database::new(2, 2);
            for (j, t) in tuples.iter().enumerate() {
                if (world >> j) & 1 == 1 {
                    sub.insert(*t).unwrap();
                }
            }
            assert_eq!(
                q.lineage_eval(&db, world),
                q.eval(&sub),
                "world {world:#06b}"
            );
        }
    }

    #[test]
    fn ucq_detection() {
        assert!(HQuery::new(phi9()).is_ucq());
        let neg = HQuery::new(!&phi9());
        assert!(!neg.is_ucq());
    }
}
