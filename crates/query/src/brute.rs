//! Brute-force probabilistic query evaluation: the exact, exponential
//! ground truth (`Pr(Q, (D,π)) = Σ_{D' |= Q} Pr(D')`, Section 2).
//!
//! This is also the honest baseline for *unsafe* queries: when
//! `PQE(Q_φ)` is `#P`-hard no polynomial algorithm is expected to exist,
//! and the scaling experiment (EXPERIMENTS.md, E15) contrasts this
//! evaluator's exponential growth with the paper's polynomial d-D
//! pipeline on safe queries.

use std::fmt;

use intext_numeric::BigRational;
use intext_tid::Tid;

use crate::{h_witnesses, HQuery};

/// Errors from the brute-force evaluator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BruteForceError {
    /// More tuples than the world bitmask supports.
    TooManyTuples(usize),
}

impl fmt::Display for BruteForceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BruteForceError::TooManyTuples(n) => {
                write!(f, "brute force supports < 64 tuples, got {n}")
            }
        }
    }
}

impl std::error::Error for BruteForceError {}

/// Precomputed per-`h` witness masks for fast world evaluation.
fn witness_masks(q: &HQuery, tid: &Tid) -> Vec<Vec<u64>> {
    (0..=q.k())
        .map(|i| {
            h_witnesses(tid.database(), i)
                .into_iter()
                .map(|(t1, t2)| (1u64 << t1.0) | (1u64 << t2.0))
                .collect()
        })
        .collect()
}

fn world_truth(phi: &intext_boolfn::BoolFn, masks: &[Vec<u64>], world: u64) -> bool {
    let mut truth = 0u32;
    for (i, ms) in masks.iter().enumerate() {
        // False positive of clippy::manual_contains: `m` is bound on both
        // sides (witness-mask inclusion, not membership).
        #[allow(clippy::manual_contains)]
        if ms.iter().any(|&m| world & m == m) {
            truth |= 1 << i;
        }
    }
    phi.eval(truth)
}

/// Exact brute-force `PQE(Q_φ)` by summing over all `2^|D|` worlds.
///
/// The recursion shares partial products along world prefixes, so the
/// total cost is `O(2^|D|)` rational multiplications plus a witness scan
/// per world.
pub fn pqe_brute_force(q: &HQuery, tid: &Tid) -> Result<BigRational, BruteForceError> {
    let m = tid.len();
    if m >= 64 {
        return Err(BruteForceError::TooManyTuples(m));
    }
    let masks = witness_masks(q, tid);
    fn rec(
        q: &HQuery,
        tid: &Tid,
        masks: &[Vec<u64>],
        depth: usize,
        world: u64,
        weight: BigRational,
    ) -> BigRational {
        if weight.is_zero() {
            return BigRational::zero();
        }
        if depth == tid.len() {
            return if world_truth(q.phi(), masks, world) {
                weight
            } else {
                BigRational::zero()
            };
        }
        let p = tid.prob(intext_tid::TupleId(depth as u32));
        let with = rec(q, tid, masks, depth + 1, world | (1 << depth), &weight * p);
        let without = rec(q, tid, masks, depth + 1, world, &weight * &p.complement());
        &with + &without
    }
    Ok(rec(q, tid, &masks, 0, 0, BigRational::one()))
}

/// `f64` variant of [`pqe_brute_force`] for benchmarks.
pub fn pqe_brute_force_f64(q: &HQuery, tid: &Tid) -> Result<f64, BruteForceError> {
    let m = tid.len();
    if m >= 64 {
        return Err(BruteForceError::TooManyTuples(m));
    }
    let masks = witness_masks(q, tid);
    let probs: Vec<f64> = (0..m)
        .map(|i| tid.prob_f64(intext_tid::TupleId(i as u32)))
        .collect();
    let mut total = 0.0f64;
    for world in 0..(1u64 << m) {
        if !world_truth(q.phi(), &masks, world) {
            continue;
        }
        let mut w = 1.0;
        for (i, &p) in probs.iter().enumerate() {
            w *= if (world >> i) & 1 == 1 { p } else { 1.0 - p };
        }
        total += w;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::{phi9, BoolFn};
    use intext_tid::{random_tid, uniform_tid, Database, DbGenConfig, TupleDesc};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    #[test]
    fn single_h_query_probability_by_hand() {
        // Q = h_{1,0} = ∃x∃y R(x)∧S1(x,y); D = {R(0), S1(0,0)} with
        // probabilities 1/2 and 1/3: Pr = 1/6.
        let mut db = Database::new(1, 1);
        db.insert(TupleDesc::R(0)).unwrap();
        db.insert(TupleDesc::S(1, 0, 0)).unwrap();
        let tid = intext_tid::Tid::new(db, vec![r(1, 2), r(1, 3)]).unwrap();
        let q = HQuery::new(BoolFn::var(2, 0));
        assert_eq!(pqe_brute_force(&q, &tid).unwrap(), r(1, 6));
    }

    #[test]
    fn negated_query_complements() {
        let mut db = Database::new(1, 1);
        db.insert(TupleDesc::R(0)).unwrap();
        db.insert(TupleDesc::S(1, 0, 0)).unwrap();
        let tid = intext_tid::Tid::new(db, vec![r(1, 2), r(1, 3)]).unwrap();
        let q = HQuery::new(BoolFn::var(2, 0));
        let nq = HQuery::new(!&BoolFn::var(2, 0));
        let p = pqe_brute_force(&q, &tid).unwrap();
        let np = pqe_brute_force(&nq, &tid).unwrap();
        assert!((&p + &np).is_one());
    }

    #[test]
    fn tautology_and_contradiction() {
        let tid = uniform_tid(intext_tid::complete_database(2, 2), r(1, 2));
        let top = HQuery::new(BoolFn::top(3));
        let bot = HQuery::new(BoolFn::bottom(3));
        assert!(pqe_brute_force(&top, &tid).unwrap().is_one());
        assert!(pqe_brute_force(&bot, &tid).unwrap().is_zero());
    }

    #[test]
    fn f64_matches_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        let db = intext_tid::random_database(
            &DbGenConfig {
                k: 3,
                domain_size: 2,
                density: 0.8,
                prob_denominator: 10,
            },
            &mut rng,
        );
        let tid = random_tid(db, 10, &mut rng);
        let q = HQuery::new(phi9());
        let exact = pqe_brute_force(&q, &tid).unwrap().to_f64();
        let fast = pqe_brute_force_f64(&q, &tid).unwrap();
        assert!((exact - fast).abs() < 1e-12, "{exact} vs {fast}");
    }

    #[test]
    fn deterministic_worlds_reduce_to_model_checking() {
        // All probabilities 1: Pr(Q) = [D |= Q].
        let mut db = Database::new(3, 2);
        db.insert(TupleDesc::R(0)).unwrap();
        db.insert(TupleDesc::S(1, 0, 1)).unwrap();
        let tid = uniform_tid(db, BigRational::one());
        let q = HQuery::new(BoolFn::var(4, 0)); // h_{3,0}
        assert!(pqe_brute_force(&q, &tid).unwrap().is_one());
        let q1 = HQuery::new(BoolFn::var(4, 1)); // h_{3,1}: no S2 tuples
        assert!(pqe_brute_force(&q1, &tid).unwrap().is_zero());
    }

    #[test]
    fn too_many_tuples_is_reported() {
        let tid = uniform_tid(intext_tid::complete_database(3, 5), r(1, 2));
        let q = HQuery::new(phi9());
        assert!(matches!(
            pqe_brute_force(&q, &tid),
            Err(BruteForceError::TooManyTuples(_))
        ));
    }
}
