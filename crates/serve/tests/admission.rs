//! Property and stress tests for the bounded admission queue — the
//! component that turns overload into *typed* backpressure.
//!
//! The invariants (stated in the `queue` module docs) are pinned two
//! ways:
//!
//! * a **model-based property test**: random schedules of
//!   submit / pop / cancel / close are replayed against a reference
//!   model (a plain `VecDeque` of ids), asserting FIFO order, the depth
//!   bound at every step, deterministic expiry flagging, and the
//!   exactly-once partition — every admitted entry leaves through `pop`
//!   or `cancel`, never both, never neither;
//! * a **multi-threaded stress test**: racing producers, consumers, and
//!   cancellers, where termination itself proves no deadlock and the
//!   collected outcomes re-prove the partition under real interleavings.

use std::collections::{HashSet, VecDeque};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use intext_serve::{AdmissionQueue, SubmitError};
use proptest::prelude::*;

/// SplitMix64, the workspace's standard reproducible stream.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random single-threaded schedules against a reference model.
    #[test]
    fn random_schedules_match_the_fifo_model(seed in any::<u64>()) {
        let mut state = seed;
        let capacity = 1 + (mix(&mut state) as usize) % 4;
        let queue = AdmissionQueue::new(capacity);
        prop_assert_eq!(queue.capacity(), capacity);

        // The model: admission order of still-queued entries, plus the
        // outcome sets the partition is asserted over.
        let mut model: VecDeque<(u64, bool)> = VecDeque::new(); // (payload, expired)
        let mut ids = Vec::new(); // payload-indexed JobIds
        let mut next_payload = 0u64;
        let mut admitted = HashSet::new();
        let mut popped = HashSet::new();
        let mut cancelled = HashSet::new();
        let mut rejected = 0usize;
        let mut closed = false;

        for _ in 0..40 {
            match mix(&mut state) % 8 {
                // Submit (weighted heaviest so queues actually fill).
                0..=3 => {
                    let payload = next_payload;
                    next_payload += 1;
                    // Deadlines are either absent or already past —
                    // nothing can *become* expired mid-schedule, so the
                    // flag is deterministic.
                    let expired = mix(&mut state).is_multiple_of(4);
                    let deadline =
                        expired.then(|| Instant::now() - Duration::from_millis(1));
                    match queue.submit(payload, deadline) {
                        Ok(id) => {
                            prop_assert!(!closed, "admission after close");
                            prop_assert!(model.len() < capacity, "admission past the bound");
                            model.push_back((payload, expired));
                            ids.push(Some(id));
                            prop_assert!(admitted.insert(payload));
                        }
                        Err(SubmitError::Closed) => {
                            prop_assert!(closed, "spurious Closed");
                            ids.push(None);
                            rejected += 1;
                        }
                        Err(SubmitError::QueueFull { capacity: c }) => {
                            prop_assert_eq!(c, capacity);
                            prop_assert_eq!(model.len(), capacity, "premature QueueFull");
                            ids.push(None);
                            rejected += 1;
                        }
                    }
                }
                // Pop — only when it cannot block (non-empty, or closed).
                4 | 5 => {
                    if !model.is_empty() {
                        let (payload, expired) = model.pop_front().unwrap();
                        let job = queue.pop().expect("model says non-empty");
                        prop_assert_eq!(job.payload, payload, "FIFO order violated");
                        prop_assert_eq!(job.expired, expired, "expiry flag wrong");
                        prop_assert!(popped.insert(payload));
                    } else if closed {
                        prop_assert!(queue.pop().is_none(), "pop after close+drain");
                    }
                }
                // Cancel a random previously-submitted entry (possibly
                // one already popped or cancelled — must be a no-op).
                6 => {
                    if !ids.is_empty() {
                        let i = (mix(&mut state) as usize) % ids.len();
                        if let Some(id) = ids[i] {
                            let payload = i as u64;
                            let took = queue.cancel(id);
                            let in_queue = model.iter().position(|(p, _)| *p == payload);
                            match (took, in_queue) {
                                (Some(p), Some(pos)) => {
                                    prop_assert_eq!(p, payload);
                                    model.remove(pos);
                                    prop_assert!(cancelled.insert(payload));
                                }
                                (None, None) => {} // already popped/cancelled
                                (Some(_), None) => panic!("cancel resurrected an entry"),
                                (None, Some(_)) => panic!("cancel missed a queued entry"),
                            }
                        }
                    }
                }
                // Close (idempotent; backlog must survive).
                _ => {
                    queue.close();
                    closed = true;
                    prop_assert!(queue.is_closed());
                }
            }
            prop_assert_eq!(queue.depth(), model.len());
            prop_assert!(queue.depth() <= capacity, "depth exceeded the bound");
        }

        // Drain: close + pop everything the model still holds.
        queue.close();
        while let Some((payload, expired)) = model.pop_front() {
            let job = queue.pop().expect("backlog must survive close");
            prop_assert_eq!(job.payload, payload);
            prop_assert_eq!(job.expired, expired);
            prop_assert!(popped.insert(payload));
        }
        prop_assert!(queue.pop().is_none(), "drained queue must end");

        // Exactly-once resolution: {popped, cancelled} partition the
        // admitted set, and rejected entries were never admitted.
        prop_assert!(popped.is_disjoint(&cancelled), "an entry resolved twice");
        let resolved: HashSet<u64> = popped.union(&cancelled).copied().collect();
        prop_assert_eq!(&resolved, &admitted, "an admitted entry evaporated");
        prop_assert_eq!(admitted.len() + rejected, next_payload as usize);
        prop_assert!(queue.high_water() <= capacity);
    }
}

/// Racing producers, consumers, and cancellers. Termination proves no
/// deadlock (`pop` wakes on close); the outcome partition proves
/// exactly-once under real interleavings.
#[test]
fn concurrent_producers_and_consumers_never_lose_an_entry() {
    const PRODUCERS: u64 = 4;
    const CONSUMERS: usize = 2;
    const PER_PRODUCER: u64 = 300;
    const CAPACITY: usize = 8;

    let queue = AdmissionQueue::new(CAPACITY);
    let popped = Mutex::new(Vec::new());
    let cancelled = Mutex::new(Vec::new());
    let mut admitted_total = 0usize;
    let mut rejected_total = 0usize;

    thread::scope(|scope| {
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let (queue, popped) = (&queue, &popped);
                scope.spawn(move || {
                    // Runs until close + drain: returning at all is the
                    // no-deadlock proof.
                    while let Some(job) = queue.pop() {
                        popped.lock().unwrap().push(job.payload);
                    }
                })
            })
            .collect();

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let (queue, cancelled) = (&queue, &cancelled);
                scope.spawn(move || {
                    let mut state = 0xAD0115 ^ (p << 32);
                    let mut last = None;
                    let (mut admitted, mut rejected) = (0usize, 0usize);
                    for i in 0..PER_PRODUCER {
                        let payload = p * PER_PRODUCER + i;
                        match queue.submit(payload, None) {
                            Ok(id) => {
                                admitted += 1;
                                last = Some((id, payload));
                            }
                            Err(SubmitError::QueueFull { capacity }) => {
                                assert_eq!(capacity, CAPACITY);
                                rejected += 1;
                                thread::yield_now();
                            }
                            Err(SubmitError::Closed) => unreachable!("closed while producing"),
                        }
                        // Occasionally race the consumers for our last
                        // admission; whoever wins resolves it alone.
                        if mix(&mut state).is_multiple_of(8) {
                            if let Some((id, payload)) = last.take() {
                                if queue.cancel(id).is_some() {
                                    cancelled.lock().unwrap().push(payload);
                                }
                            }
                        }
                    }
                    (admitted, rejected)
                })
            })
            .collect();

        for producer in producers {
            let (admitted, rejected) = producer.join().unwrap();
            admitted_total += admitted;
            rejected_total += rejected;
        }
        queue.close();
        for consumer in consumers {
            consumer.join().unwrap();
        }
    });

    let popped = popped.into_inner().unwrap();
    let cancelled = cancelled.into_inner().unwrap();
    let popped_set: HashSet<u64> = popped.iter().copied().collect();
    let cancelled_set: HashSet<u64> = cancelled.iter().copied().collect();
    assert_eq!(popped.len(), popped_set.len(), "a payload was popped twice");
    assert_eq!(
        cancelled.len(),
        cancelled_set.len(),
        "a payload was cancelled twice"
    );
    assert!(
        popped_set.is_disjoint(&cancelled_set),
        "an entry was both popped and cancelled"
    );
    assert_eq!(
        popped.len() + cancelled.len(),
        admitted_total,
        "admitted entries must resolve exactly once"
    );
    assert_eq!(
        admitted_total + rejected_total,
        (PRODUCERS * PER_PRODUCER) as usize
    );
    assert!(
        queue.high_water() <= CAPACITY,
        "the bound leaked under races"
    );
    assert!(queue.pop().is_none(), "closed and drained");
}
