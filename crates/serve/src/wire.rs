//! The length-prefixed binary protocol (std only, no serde).
//!
//! Every message is one **frame**: a little-endian `u32` payload length
//! (capped at [`MAX_FRAME_LEN`]) followed by the payload, whose first
//! byte is an opcode. Requests use opcodes `0x01..`, responses `0x81..`
//! with `0xEE` carrying a typed [`ServeError`]. Decoding is **total**:
//! every byte is validated and malformed input returns a typed
//! [`WireError`] — the server never panics on hostile frames.
//!
//! Exact probabilities cross the wire as sign + numerator/denominator
//! limbs ([`BigUint::limbs`]), already normalized, so a round trip is
//! bit-lossless — the property that lets the differential tests compare
//! remote answers with `==` on [`BigRational`]. Floating-point values
//! travel as IEEE 754 bits, likewise lossless.

use std::time::Duration;

use intext_boolfn::BoolFn;
use intext_core::Region;
use intext_engine::{EngineError, Estimate, SamplerKind};
use intext_numeric::{BigInt, BigRational, BigUint, Sign};
use intext_query::{HQuery, Query};
use intext_tid::{Database, Tid, TupleDesc, Vocabulary};

use crate::error::ServeError;
use crate::server::{Request, Response};

/// Protocol version byte, the first payload byte of a `Hello` exchange
/// is reserved for future use; for now the opcode set is the version.
///
/// Version 2 (the UCQ front door): queries are tagged — tag `0` is an
/// H-query as `φ`'s truth-table words, tag `1` a general UCQ as its
/// vocabulary names plus the query text, decoded by re-parsing — and
/// the region/error codes grew [`Region::SafeLifted`],
/// [`Region::GroundCircuit`], and
/// [`EngineError::GroundingTooLarge`]. Version 1 peers reject the new
/// tag byte instead of misreading it.
///
/// Version 3 (crash-safe serving): every frame — request, response,
/// and error — carries a little-endian `u64` **request id** right
/// after the opcode. The server echoes the request's id in its reply,
/// which is what makes a reconnect-and-resend safe: evaluation is
/// pure, so a [`RemoteClient`](crate::net::RemoteClient) that loses
/// the connection mid-exchange re-sends the *same* id over a fresh
/// connection (an idempotent retry) and rejects any reply whose id
/// does not match the request in flight. Version 2 peers reject v3
/// frames as malformed instead of misreading the id bytes as a body.
pub const PROTOCOL_VERSION: u8 = 3;

/// Largest accepted frame payload (64 MiB): big enough for any
/// realistic snapshot, small enough that a hostile length prefix
/// cannot OOM the server.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Why a frame failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field being read.
    Truncated,
    /// The payload has bytes after the last field.
    TrailingBytes,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// A field failed validation (the name says which).
    BadValue(&'static str),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge(u32),
    /// The peer disconnected mid-frame after `bytes_read` bytes of the
    /// frame had arrived. Unlike the other variants this is not a
    /// protocol violation but a *retryable* transport loss: the frame
    /// never completed, so resending the same request id over a fresh
    /// connection cannot double-apply anything.
    ConnectionLost {
        /// Bytes of the frame (length prefix + payload) received
        /// before the stream ended.
        bytes_read: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::TrailingBytes => write!(f, "frame has trailing bytes"),
            WireError::BadOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::BadValue(what) => write!(f, "invalid field: {what}"),
            WireError::FrameTooLarge(len) => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
                )
            }
            WireError::ConnectionLost { bytes_read } => {
                write!(f, "connection lost mid-frame after {bytes_read} byte(s)")
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------- opcodes

const OP_EVALUATE: u8 = 0x01;
const OP_EVALUATE_F64: u8 = 0x02;
const OP_ESTIMATE: u8 = 0x03;
const OP_BATCH: u8 = 0x04;
const OP_BATCH_F64: u8 = 0x05;
const OP_SNAPSHOT: u8 = 0x06;
const OP_PING: u8 = 0x07;

const OP_RESP_EXACT: u8 = 0x81;
const OP_RESP_F64: u8 = 0x82;
const OP_RESP_ESTIMATE: u8 = 0x83;
const OP_RESP_BATCH: u8 = 0x84;
const OP_RESP_BATCH_F64: u8 = 0x85;
const OP_RESP_SNAPSHOT: u8 = 0x86;
const OP_RESP_PONG: u8 = 0x87;
const OP_RESP_ERROR: u8 = 0xEE;

// ------------------------------------------------------------ primitives

/// Growing payload writer; all integers little-endian.
#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A frame payload header: opcode, then the v3 request id.
    fn with_opcode(op: u8, id: u64) -> Self {
        let mut w = Writer { buf: vec![op] };
        w.u64(id);
        w
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("payload fits a frame"));
        self.buf.extend_from_slice(v);
    }
}

/// Bounds-checked payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }
    /// A length prefix for `count` items of at least `min_item_bytes`
    /// each — rejects hostile counts before any allocation.
    fn count(&mut self, min_item_bytes: usize) -> Result<usize, WireError> {
        let count = self.u32()? as usize;
        if count.saturating_mul(min_item_bytes) > self.buf.len() - self.pos {
            return Err(WireError::Truncated);
        }
        Ok(count)
    }
    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

// ------------------------------------------------------------ value codecs

fn put_biguint(w: &mut Writer, v: &BigUint) {
    let limbs = v.limbs();
    w.u32(u32::try_from(limbs.len()).expect("limb count fits u32"));
    for &limb in limbs {
        w.u32(limb);
    }
}

fn get_biguint(r: &mut Reader) -> Result<BigUint, WireError> {
    let count = r.count(4)?;
    let mut limbs = Vec::with_capacity(count);
    for _ in 0..count {
        limbs.push(r.u32()?);
    }
    if limbs.last() == Some(&0) {
        // from_limbs would normalize, but a non-canonical encoding is a
        // protocol violation worth surfacing (it breaks byte-level
        // determinism of re-encoded values).
        return Err(WireError::BadValue("denormalized limbs"));
    }
    Ok(BigUint::from_limbs(limbs))
}

fn put_rational(w: &mut Writer, v: &BigRational) {
    w.u8(match v.numer().sign() {
        Sign::Negative => 1,
        Sign::Zero | Sign::Positive => 0,
    });
    put_biguint(w, v.numer().magnitude());
    put_biguint(w, v.denom());
}

fn get_rational(r: &mut Reader) -> Result<BigRational, WireError> {
    let sign_byte = r.u8()?;
    let numer_mag = get_biguint(r)?;
    let denom = get_biguint(r)?;
    if denom.is_zero() {
        return Err(WireError::BadValue("zero denominator"));
    }
    let sign = match (sign_byte, numer_mag.is_zero()) {
        (0, true) => Sign::Zero,
        (0, false) => Sign::Positive,
        (1, false) => Sign::Negative,
        _ => return Err(WireError::BadValue("rational sign")),
    };
    Ok(BigRational::new(
        BigInt::from_sign_mag(sign, numer_mag),
        denom,
    ))
}

fn put_str(w: &mut Writer, s: &str) {
    w.bytes(s.as_bytes());
}

fn get_str<'a>(r: &mut Reader<'a>) -> Result<&'a str, WireError> {
    std::str::from_utf8(r.bytes()?).map_err(|_| WireError::BadValue("utf-8 string"))
}

/// Query tag `0`: H-query, `φ` as truth-table words.
fn put_h_query(w: &mut Writer, q: &HQuery) {
    let phi = q.phi();
    w.u8(phi.num_vars());
    let words = phi.words();
    w.u32(u32::try_from(words.len()).expect("word count fits u32"));
    for &word in words {
        w.u64(word);
    }
}

fn get_h_query(r: &mut Reader) -> Result<HQuery, WireError> {
    let num_vars = r.u8()?;
    let count = r.count(8)?;
    let mut words = Vec::with_capacity(count);
    for _ in 0..count {
        words.push(r.u64()?);
    }
    let phi = BoolFn::from_words(num_vars, words).ok_or(WireError::BadValue("truth table"))?;
    Ok(HQuery::new(phi))
}

/// Tagged query codec (protocol v2). An H-query travels as `φ` (tag
/// `0`), a general UCQ as its vocabulary names plus the rendered query
/// text (tag `1`); the receiver rebuilds it by re-parsing, so every
/// hostile byte funnels through the parser's own validation and comes
/// back as a typed [`WireError::BadValue`].
fn put_query(w: &mut Writer, q: &Query) {
    if let Some(h) = q.as_h() {
        w.u8(0);
        put_h_query(w, h);
        return;
    }
    let (_, voc) = q.general().expect("a query is H or general");
    w.u8(1);
    w.u8(u8::try_from(voc.unary_names().len()).expect("2 unary names"));
    for name in voc.unary_names() {
        put_str(w, name);
    }
    w.u8(voc.k());
    for name in voc.binary_names() {
        put_str(w, name);
    }
    put_str(w, &q.to_string());
}

fn get_query(r: &mut Reader) -> Result<Query, WireError> {
    match r.u8()? {
        0 => Ok(Query::from(get_h_query(r)?)),
        1 => {
            let unary_count = r.u8()? as usize;
            let mut unary = Vec::with_capacity(unary_count.min(2));
            for _ in 0..unary_count {
                unary.push(get_str(r)?.to_owned());
            }
            let binary_count = r.u8()? as usize;
            let mut binary = Vec::with_capacity(binary_count.min(255));
            for _ in 0..binary_count {
                binary.push(get_str(r)?.to_owned());
            }
            let voc =
                Vocabulary::new(unary, binary).map_err(|_| WireError::BadValue("vocabulary"))?;
            let text = get_str(r)?;
            Query::parse(text, &voc).map_err(|_| WireError::BadValue("query text"))
        }
        _ => Err(WireError::BadValue("query tag")),
    }
}

fn put_tid(w: &mut Writer, tid: &Tid) {
    let db = tid.database();
    w.u8(db.k());
    w.u32(db.domain_size());
    w.u32(u32::try_from(db.len()).expect("tuple count fits u32"));
    for (id, desc) in db.iter() {
        match desc {
            TupleDesc::R(a) => {
                w.u8(0);
                w.u32(a);
            }
            TupleDesc::S(i, a, b) => {
                w.u8(1);
                w.u8(i);
                w.u32(a);
                w.u32(b);
            }
            TupleDesc::T(b) => {
                w.u8(2);
                w.u32(b);
            }
        }
        put_rational(w, tid.prob(id));
    }
}

fn get_tid(r: &mut Reader) -> Result<Tid, WireError> {
    let k = r.u8()?;
    if k == 0 {
        return Err(WireError::BadValue("vocabulary k"));
    }
    let domain_size = r.u32()?;
    let mut db = Database::new(k, domain_size);
    let count = r.count(6)?;
    let mut probs = Vec::with_capacity(count);
    for _ in 0..count {
        let desc = match r.u8()? {
            0 => TupleDesc::R(r.u32()?),
            1 => TupleDesc::S(r.u8()?, r.u32()?, r.u32()?),
            2 => TupleDesc::T(r.u32()?),
            _ => return Err(WireError::BadValue("tuple tag")),
        };
        db.insert(desc).map_err(|_| WireError::BadValue("tuple"))?;
        probs.push(get_rational(r)?);
    }
    Tid::new(db, probs).map_err(|_| WireError::BadValue("tuple probability"))
}

fn put_estimate(w: &mut Writer, e: &Estimate) {
    w.f64(e.value);
    w.f64(e.eps);
    w.f64(e.delta);
    w.u64(e.samples);
    w.u64(u64::try_from(e.elapsed.as_nanos()).unwrap_or(u64::MAX));
    w.u8(match e.sampler {
        None => 0,
        Some(SamplerKind::KarpLuby) => 1,
        Some(SamplerKind::NaiveWorlds) => 2,
    });
    w.u8(u8::from(e.deadline_hit));
}

fn get_estimate(r: &mut Reader) -> Result<Estimate, WireError> {
    Ok(Estimate {
        value: r.f64()?,
        eps: r.f64()?,
        delta: r.f64()?,
        samples: r.u64()?,
        elapsed: Duration::from_nanos(r.u64()?),
        sampler: match r.u8()? {
            0 => None,
            1 => Some(SamplerKind::KarpLuby),
            2 => Some(SamplerKind::NaiveWorlds),
            _ => return Err(WireError::BadValue("sampler kind")),
        },
        deadline_hit: match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::BadValue("deadline flag")),
        },
    })
}

fn put_region(w: &mut Writer, region: Region) {
    w.u8(match region {
        Region::DegenerateObdd => 0,
        Region::ZeroEulerDD => 1,
        Region::HardMonotone => 2,
        Region::HardByTransfer => 3,
        Region::ConjecturedHard => 4,
        Region::SafeLifted => 5,
        Region::GroundCircuit => 6,
    });
}

fn get_region(r: &mut Reader) -> Result<Region, WireError> {
    Ok(match r.u8()? {
        0 => Region::DegenerateObdd,
        1 => Region::ZeroEulerDD,
        2 => Region::HardMonotone,
        3 => Region::HardByTransfer,
        4 => Region::ConjecturedHard,
        5 => Region::SafeLifted,
        6 => Region::GroundCircuit,
        _ => return Err(WireError::BadValue("region")),
    })
}

fn put_usize(w: &mut Writer, v: usize) {
    w.u64(u64::try_from(v).expect("usize fits u64"));
}

fn get_usize(r: &mut Reader) -> Result<usize, WireError> {
    usize::try_from(r.u64()?).map_err(|_| WireError::BadValue("size"))
}

// ---------------------------------------------------------- frame codecs

/// Encodes a request into one frame payload (opcode + request id +
/// body). The id is the client's to choose; the server echoes it in
/// the reply frame, which is what lets a reconnecting client resend
/// under the same id and pair replies with requests.
pub fn encode_request(id: u64, req: &Request) -> Vec<u8> {
    let mut w;
    match req {
        Request::Evaluate { q, tid } => {
            w = Writer::with_opcode(OP_EVALUATE, id);
            put_query(&mut w, q);
            put_tid(&mut w, tid);
        }
        Request::EvaluateF64 { q, tid } => {
            w = Writer::with_opcode(OP_EVALUATE_F64, id);
            put_query(&mut w, q);
            put_tid(&mut w, tid);
        }
        Request::Estimate { q, tid } => {
            w = Writer::with_opcode(OP_ESTIMATE, id);
            put_query(&mut w, q);
            put_tid(&mut w, tid);
        }
        Request::Batch { q, tids } => {
            w = Writer::with_opcode(OP_BATCH, id);
            put_query(&mut w, q);
            w.u32(u32::try_from(tids.len()).expect("batch fits u32"));
            for tid in tids {
                put_tid(&mut w, tid);
            }
        }
        Request::BatchF64 { q, tids, shards } => {
            w = Writer::with_opcode(OP_BATCH_F64, id);
            put_query(&mut w, q);
            put_usize(&mut w, *shards);
            w.u32(u32::try_from(tids.len()).expect("batch fits u32"));
            for tid in tids {
                put_tid(&mut w, tid);
            }
        }
        Request::Snapshot => w = Writer::with_opcode(OP_SNAPSHOT, id),
        Request::Ping => w = Writer::with_opcode(OP_PING, id),
    }
    w.buf
}

/// Decodes one frame payload into its request id and request (total:
/// every malformed byte is a typed [`WireError`]).
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), WireError> {
    let mut r = Reader::new(payload);
    let op = r.u8()?;
    let id = r.u64()?;
    let req = match op {
        OP_EVALUATE => Request::Evaluate {
            q: get_query(&mut r)?,
            tid: get_tid(&mut r)?,
        },
        OP_EVALUATE_F64 => Request::EvaluateF64 {
            q: get_query(&mut r)?,
            tid: get_tid(&mut r)?,
        },
        OP_ESTIMATE => Request::Estimate {
            q: get_query(&mut r)?,
            tid: get_tid(&mut r)?,
        },
        OP_BATCH => {
            let q = get_query(&mut r)?;
            let count = r.count(1)?;
            let mut tids = Vec::with_capacity(count);
            for _ in 0..count {
                tids.push(get_tid(&mut r)?);
            }
            Request::Batch { q, tids }
        }
        OP_BATCH_F64 => {
            let q = get_query(&mut r)?;
            let shards = get_usize(&mut r)?;
            let count = r.count(1)?;
            let mut tids = Vec::with_capacity(count);
            for _ in 0..count {
                tids.push(get_tid(&mut r)?);
            }
            Request::BatchF64 { q, tids, shards }
        }
        OP_SNAPSHOT => Request::Snapshot,
        OP_PING => Request::Ping,
        other => return Err(WireError::BadOpcode(other)),
    };
    r.finish()?;
    Ok((id, req))
}

/// Encodes a successful response into one frame payload, echoing the
/// request's id.
pub fn encode_response(id: u64, resp: &Response) -> Vec<u8> {
    let mut w;
    match resp {
        Response::Exact(p) => {
            w = Writer::with_opcode(OP_RESP_EXACT, id);
            put_rational(&mut w, p);
        }
        Response::F64(v) => {
            w = Writer::with_opcode(OP_RESP_F64, id);
            w.f64(*v);
        }
        Response::Estimate(e) => {
            w = Writer::with_opcode(OP_RESP_ESTIMATE, id);
            put_estimate(&mut w, e);
        }
        Response::Batch(ps) => {
            w = Writer::with_opcode(OP_RESP_BATCH, id);
            w.u32(u32::try_from(ps.len()).expect("batch fits u32"));
            for p in ps {
                put_rational(&mut w, p);
            }
        }
        Response::BatchF64(vs) => {
            w = Writer::with_opcode(OP_RESP_BATCH_F64, id);
            w.u32(u32::try_from(vs.len()).expect("batch fits u32"));
            for &v in vs {
                w.f64(v);
            }
        }
        Response::Snapshot(bytes) => {
            w = Writer::with_opcode(OP_RESP_SNAPSHOT, id);
            w.bytes(bytes);
        }
        Response::Pong => w = Writer::with_opcode(OP_RESP_PONG, id),
    }
    w.buf
}

/// Encodes a typed rejection into one frame payload, echoing the
/// request's id.
pub fn encode_error(id: u64, err: &ServeError) -> Vec<u8> {
    let mut w = Writer::with_opcode(OP_RESP_ERROR, id);
    match err {
        ServeError::QueueFull { capacity } => {
            w.u8(1);
            put_usize(&mut w, *capacity);
        }
        ServeError::DeadlineExceeded { late_by } => {
            w.u8(2);
            w.u64(u64::try_from(late_by.as_nanos()).unwrap_or(u64::MAX));
        }
        ServeError::BudgetExceeded { scenarios, budget } => {
            w.u8(3);
            put_usize(&mut w, *scenarios);
            put_usize(&mut w, *budget);
        }
        ServeError::Cancelled => w.u8(4),
        ServeError::Closed => w.u8(5),
        ServeError::WorkerPanicked => w.u8(6),
        ServeError::Engine(EngineError::VocabularyMismatch {
            query_k,
            database_k,
        }) => {
            w.u8(7);
            w.u8(*query_k);
            w.u8(*database_k);
        }
        ServeError::Engine(EngineError::Intractable {
            region,
            tuples,
            budget,
        }) => {
            w.u8(8);
            put_region(&mut w, *region);
            put_usize(&mut w, *tuples);
            put_usize(&mut w, *budget);
        }
        ServeError::Engine(EngineError::GroundingTooLarge { tuples, budget }) => {
            w.u8(9);
            put_usize(&mut w, *tuples);
            put_usize(&mut w, *budget);
        }
    }
    w.buf
}

/// Decodes one frame payload into its echoed request id and a
/// response or typed rejection.
pub fn decode_reply(payload: &[u8]) -> Result<(u64, Result<Response, ServeError>), WireError> {
    let mut r = Reader::new(payload);
    let op = r.u8()?;
    let id = r.u64()?;
    let reply = match op {
        OP_RESP_EXACT => Ok(Response::Exact(get_rational(&mut r)?)),
        OP_RESP_F64 => Ok(Response::F64(r.f64()?)),
        OP_RESP_ESTIMATE => Ok(Response::Estimate(get_estimate(&mut r)?)),
        OP_RESP_BATCH => {
            let count = r.count(1)?;
            let mut ps = Vec::with_capacity(count);
            for _ in 0..count {
                ps.push(get_rational(&mut r)?);
            }
            Ok(Response::Batch(ps))
        }
        OP_RESP_BATCH_F64 => {
            let count = r.count(8)?;
            let mut vs = Vec::with_capacity(count);
            for _ in 0..count {
                vs.push(r.f64()?);
            }
            Ok(Response::BatchF64(vs))
        }
        OP_RESP_SNAPSHOT => Ok(Response::Snapshot(r.bytes()?.to_vec())),
        OP_RESP_PONG => Ok(Response::Pong),
        OP_RESP_ERROR => Err(match r.u8()? {
            1 => ServeError::QueueFull {
                capacity: get_usize(&mut r)?,
            },
            2 => ServeError::DeadlineExceeded {
                late_by: Duration::from_nanos(r.u64()?),
            },
            3 => ServeError::BudgetExceeded {
                scenarios: get_usize(&mut r)?,
                budget: get_usize(&mut r)?,
            },
            4 => ServeError::Cancelled,
            5 => ServeError::Closed,
            6 => ServeError::WorkerPanicked,
            7 => ServeError::Engine(EngineError::VocabularyMismatch {
                query_k: r.u8()?,
                database_k: r.u8()?,
            }),
            8 => ServeError::Engine(EngineError::Intractable {
                region: get_region(&mut r)?,
                tuples: get_usize(&mut r)?,
                budget: get_usize(&mut r)?,
            }),
            9 => ServeError::Engine(EngineError::GroundingTooLarge {
                tuples: get_usize(&mut r)?,
                budget: get_usize(&mut r)?,
            }),
            _ => return Err(WireError::BadValue("error code")),
        }),
        other => return Err(WireError::BadOpcode(other)),
    };
    r.finish()?;
    Ok((id, reply))
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::phi9;
    use intext_tid::{complete_database, uniform_tid};

    fn sample_tid() -> Tid {
        uniform_tid(complete_database(3, 2), BigRational::from_ratio(1, 3))
    }

    #[test]
    fn requests_round_trip() {
        let q = Query::from(HQuery::new(phi9()));
        let tid = sample_tid();
        let requests = [
            Request::Evaluate {
                q: q.clone(),
                tid: tid.clone(),
            },
            Request::EvaluateF64 {
                q: q.clone(),
                tid: tid.clone(),
            },
            Request::Estimate {
                q: q.clone(),
                tid: tid.clone(),
            },
            Request::Batch {
                q: q.clone(),
                tids: vec![tid.clone(), tid.clone()],
            },
            Request::BatchF64 {
                q: q.clone(),
                tids: vec![tid.clone()],
                shards: 4,
            },
            Request::Snapshot,
            Request::Ping,
        ];
        for (i, req) in requests.iter().enumerate() {
            let id = 0xA5A5_0000 + i as u64;
            let bytes = encode_request(id, req);
            let (back_id, back) = decode_request(&bytes).unwrap();
            assert_eq!(back_id, id, "request id lost in transit");
            // Request has no PartialEq (Tid doesn't); compare re-encodings,
            // which are canonical.
            assert_eq!(encode_request(id, &back), bytes);
        }
    }

    #[test]
    fn general_queries_round_trip_by_reparsing() {
        let voc =
            Vocabulary::new(vec!["Author".into(), "Cited".into()], vec!["Wrote".into()]).unwrap();
        let q = Query::parse("Author(x), Wrote(x,y), Cited(y)", &voc).unwrap();
        let req = Request::Evaluate {
            q,
            tid: sample_tid(),
        };
        let bytes = encode_request(7, &req);
        let (id, back) = decode_request(&bytes).unwrap();
        assert_eq!(id, 7);
        assert_eq!(encode_request(7, &back), bytes);
        let Request::Evaluate { q: decoded, .. } = back else {
            panic!("request changed shape over the wire");
        };
        // The user's relation names survive (variables normalize to
        // the canonical x0, x1, … at parse time on both sides).
        assert_eq!(decoded.to_string(), "Author(x0),Wrote(x0,x1),Cited(x1)");
        assert!(decoded.as_h().is_none());
    }

    #[test]
    fn hostile_query_frames_are_typed_errors() {
        let good = {
            let voc = Vocabulary::h(1);
            let q = Query::parse("R(x),S1(x,y),T(y)", &voc).unwrap();
            encode_request(
                0,
                &Request::Evaluate {
                    q,
                    tid: sample_tid(),
                },
            )
        };
        // An unknown query tag is rejected, not misread. (Payload
        // layout: opcode, 8 id bytes, then the query tag.)
        let mut bad_tag = good.clone();
        bad_tag[9] = 7;
        assert_eq!(
            decode_request(&bad_tag).unwrap_err(),
            WireError::BadValue("query tag")
        );
        // Corrupting the text bytes funnels through the parser.
        let mut w = Writer::with_opcode(OP_EVALUATE, 0);
        w.u8(1); // general tag
        w.u8(2);
        put_str(&mut w, "R");
        put_str(&mut w, "T");
        w.u8(1);
        put_str(&mut w, "S1");
        put_str(&mut w, "R(x,"); // torn query text
        assert_eq!(
            decode_request(&w.buf).unwrap_err(),
            WireError::BadValue("query text")
        );
        // A vocabulary with duplicate names is rejected before parsing.
        let mut w = Writer::with_opcode(OP_EVALUATE, 0);
        w.u8(1);
        w.u8(2);
        put_str(&mut w, "R");
        put_str(&mut w, "R");
        w.u8(1);
        put_str(&mut w, "S1");
        put_str(&mut w, "R(x)");
        assert_eq!(
            decode_request(&w.buf).unwrap_err(),
            WireError::BadValue("vocabulary")
        );
        // Non-UTF-8 name bytes are a typed error, not a panic.
        let mut w = Writer::with_opcode(OP_EVALUATE, 0);
        w.u8(1);
        w.u8(2);
        w.bytes(&[0xFF, 0xFE]);
        assert_eq!(
            decode_request(&w.buf).unwrap_err(),
            WireError::BadValue("utf-8 string")
        );
    }

    #[test]
    fn general_regions_and_errors_cross_the_wire() {
        for region in [Region::SafeLifted, Region::GroundCircuit] {
            let mut w = Writer::default();
            put_region(&mut w, region);
            let mut r = Reader::new(&w.buf);
            assert_eq!(get_region(&mut r).unwrap(), region);
        }
        let err = ServeError::Engine(EngineError::GroundingTooLarge {
            tuples: 4096,
            budget: 2048,
        });
        let bytes = encode_error(42, &err);
        let (id, reply) = decode_reply(&bytes).unwrap();
        assert_eq!(id, 42);
        assert_eq!(reply.unwrap_err(), err);
    }

    #[test]
    fn replies_round_trip_bit_exactly() {
        let p = BigRational::from_ratio(355, 452);
        let replies: Vec<Result<Response, ServeError>> = vec![
            Ok(Response::Exact(p.clone())),
            Ok(Response::F64(0.1 + 0.2)),
            Ok(Response::Batch(vec![p.clone(), BigRational::zero()])),
            Ok(Response::BatchF64(vec![f64::MIN_POSITIVE, 1.0])),
            Ok(Response::Snapshot(vec![1, 2, 3])),
            Ok(Response::Pong),
            Err(ServeError::QueueFull { capacity: 8 }),
            Err(ServeError::DeadlineExceeded {
                late_by: Duration::from_micros(17),
            }),
            Err(ServeError::BudgetExceeded {
                scenarios: 100,
                budget: 10,
            }),
            Err(ServeError::Cancelled),
            Err(ServeError::Closed),
            Err(ServeError::WorkerPanicked),
            Err(ServeError::Engine(EngineError::VocabularyMismatch {
                query_k: 2,
                database_k: 3,
            })),
            Err(ServeError::Engine(EngineError::Intractable {
                region: Region::HardMonotone,
                tuples: 99,
                budget: 20,
            })),
        ];
        for (i, reply) in replies.iter().enumerate() {
            let id = u64::MAX - i as u64;
            let bytes = match reply {
                Ok(resp) => encode_response(id, resp),
                Err(err) => encode_error(id, err),
            };
            let (back_id, back) = decode_reply(&bytes).unwrap();
            assert_eq!(back_id, id, "reply id lost in transit");
            match (reply, &back) {
                (Ok(Response::Exact(a)), Ok(Response::Exact(b))) => assert_eq!(a, b),
                (Ok(Response::F64(a)), Ok(Response::F64(b))) => {
                    assert_eq!(a.to_bits(), b.to_bits())
                }
                (Ok(Response::Batch(a)), Ok(Response::Batch(b))) => assert_eq!(a, b),
                (Ok(Response::BatchF64(a)), Ok(Response::BatchF64(b))) => {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                (Ok(Response::Snapshot(a)), Ok(Response::Snapshot(b))) => assert_eq!(a, b),
                (Ok(Response::Pong), Ok(Response::Pong)) => {}
                (Err(a), Err(b)) => assert_eq!(a, b),
                other => panic!("reply changed shape over the wire: {other:?}"),
            }
        }
    }

    #[test]
    fn estimates_round_trip() {
        let e = Estimate {
            value: 0.123456789,
            eps: 0.05,
            delta: 1e-3,
            samples: 738,
            elapsed: Duration::from_nanos(98_765),
            sampler: Some(SamplerKind::KarpLuby),
            deadline_hit: true,
        };
        let bytes = encode_response(3, &Response::Estimate(e));
        match decode_reply(&bytes).unwrap().1.unwrap() {
            Response::Estimate(back) => {
                assert_eq!(back.value.to_bits(), e.value.to_bits());
                assert_eq!(back.eps.to_bits(), e.eps.to_bits());
                assert_eq!(back.delta.to_bits(), e.delta.to_bits());
                assert_eq!(back.samples, e.samples);
                assert_eq!(back.elapsed, e.elapsed);
                assert_eq!(back.sampler, e.sampler);
                assert_eq!(back.deadline_hit, e.deadline_hit);
            }
            other => panic!("expected an estimate, got {other:?}"),
        }
    }

    #[test]
    fn malformed_frames_are_typed_errors_not_panics() {
        assert_eq!(decode_request(&[]).unwrap_err(), WireError::Truncated);
        // An unknown opcode with a complete id is a typed rejection…
        let mut unknown = vec![0x99];
        unknown.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            decode_request(&unknown).unwrap_err(),
            WireError::BadOpcode(0x99)
        );
        // …and a frame cut inside the request id is truncated, not
        // misread (the id is part of every v3 frame).
        assert_eq!(
            decode_request(&[OP_PING, 0xFF]).unwrap_err(),
            WireError::Truncated
        );
        let mut trailing = vec![OP_PING];
        trailing.extend_from_slice(&9u64.to_le_bytes());
        trailing.push(0xFF);
        assert_eq!(
            decode_request(&trailing).unwrap_err(),
            WireError::TrailingBytes
        );
        // A hostile tuple count cannot force a huge allocation.
        // (Leading 0 after the opcode + id: the H-query tag.)
        let mut bad = vec![OP_EVALUATE];
        bad.extend_from_slice(&0u64.to_le_bytes()); // request id
        bad.extend_from_slice(&[0, 2, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        bad.extend_from_slice(&[1, 4, 0, 0, 0]); // k=1, domain=4
        bad.extend_from_slice(&u32::MAX.to_le_bytes()); // "4 billion tuples"
        assert_eq!(decode_request(&bad).unwrap_err(), WireError::Truncated);
        // Zero denominators are rejected, not a divide-by-zero panic.
        let mut w = Writer::with_opcode(OP_RESP_EXACT, 0);
        w.u8(0);
        w.u32(1);
        w.u32(5); // numerator 5
        w.u32(0); // denominator: zero limbs = 0
        assert_eq!(
            decode_reply(&w.buf).unwrap_err(),
            WireError::BadValue("zero denominator")
        );
    }
}
