//! PQE-as-a-service: a concurrent front door for one shared
//! [`PqeEngine`](intext_engine::PqeEngine).
//!
//! The engine itself is single-writer (`&mut self` for compiles, cache
//! maintenance, and live tuple updates) while its evaluation paths are
//! pure walks over immutable `Arc`-shared artifacts. This crate turns
//! that split into a server:
//!
//! * [`SharedEngine`] — the engine behind one `RwLock`, with a
//!   read-locked probe / write-locked compile discipline
//!   (double-checked, so N racing cold probes cost one compile) and
//!   every evaluation outside any lock.
//! * [`AdmissionQueue`] — a bounded queue in front of the worker pool.
//!   Overload is a *typed* signal ([`ServeError::QueueFull`],
//!   [`ServeError::DeadlineExceeded`], [`ServeError::BudgetExceeded`]),
//!   never a wrong answer, a panic, or a hang; every admitted request
//!   resolves exactly once.
//! * [`Server`] / [`ServeHandle`] — the worker pool and its in-process
//!   client: single queries, exact batches, lane-kernel sharded f64
//!   batches, `(ε, δ)` estimates, and cache snapshots for replica warm
//!   starts, all **bit-identical** to a sequential engine fed the same
//!   requests (the differential harness in `tests/engine_serve.rs`
//!   pins this for all 272 H-queries with `k ≤ 2`).
//! * [`net`] + [`wire`] — a length-prefixed binary protocol over
//!   TCP/Unix sockets (std only), with lossless round trips for exact
//!   rationals, and [`RemoteClient`] as the blocking client.
//!
//! ```
//! use intext_serve::{Server, ServeConfig};
//! use intext_query::HQuery;
//! use intext_boolfn::phi9;
//! use intext_numeric::BigRational;
//! use intext_tid::{complete_database, uniform_tid};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let handle = server.handle();
//! let tid = uniform_tid(complete_database(3, 1), BigRational::from_ratio(1, 2));
//! let p = handle.evaluate(&HQuery::new(phi9()), &tid).unwrap();
//! assert_eq!(p, intext_engine::PqeEngine::new().evaluate(&HQuery::new(phi9()), &tid).unwrap());
//! let snapshot = handle.snapshot().unwrap(); // warm-start bytes for a replica
//! assert!(!snapshot.is_empty());
//! server.shutdown();
//! ```

#![deny(missing_docs)]

mod error;
pub mod net;
mod queue;
mod server;
mod shared;
pub mod wire;

pub use error::ServeError;
#[cfg(unix)]
pub use net::listen_unix;
pub use net::{listen_tcp, BoundAddr, ClientError, ListenerHandle, RemoteClient, RetryPolicy};
pub use queue::{AdmissionQueue, Job, JobId, SubmitError};
pub use server::{PendingResponse, Request, Response, ServeConfig, ServeHandle, Server};
pub use shared::SharedEngine;
