//! The bounded admission queue in front of the worker pool.
//!
//! Invariants (pinned by the proptest in `tests/admission.rs`):
//!
//! * **Bounded**: depth never exceeds the configured capacity —
//!   [`AdmissionQueue::submit`] rejects instead of blocking or growing,
//!   which is what makes overload a *typed* signal rather than latency.
//! * **Exactly-once resolution**: every admitted entry leaves the queue
//!   exactly once, through [`pop`](AdmissionQueue::pop) (a worker takes
//!   it — possibly flagged expired) or
//!   [`cancel`](AdmissionQueue::cancel) (the submitter takes it back).
//!   Nothing is ever silently dropped: even after
//!   [`close`](AdmissionQueue::close), `pop` drains what was admitted
//!   before returning `None`.
//! * **No deadlock**: the only blocking operation is `pop` on an empty,
//!   open queue; `submit`, `cancel`, and `close` never wait.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Identifies one admitted request, unique over the queue's lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct JobId(u64);

/// Why [`AdmissionQueue::submit`] refused a payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue already holds `capacity` entries.
    QueueFull {
        /// The configured bound that was hit.
        capacity: usize,
    },
    /// The queue was closed; no further admissions.
    Closed,
}

/// An entry handed to a worker by [`AdmissionQueue::pop`].
#[derive(Debug)]
pub struct Job<T> {
    /// The ticket [`AdmissionQueue::submit`] returned for this entry.
    pub id: JobId,
    /// The submitted payload.
    pub payload: T,
    /// The entry's deadline passed while it queued: the worker must
    /// resolve it with a deadline rejection instead of evaluating —
    /// returning it (rather than dropping it inside the queue) is what
    /// keeps resolution exactly-once.
    pub expired: bool,
}

struct Entry<T> {
    id: JobId,
    payload: T,
    deadline: Option<Instant>,
}

struct State<T> {
    queue: VecDeque<Entry<T>>,
    next_id: u64,
    closed: bool,
    /// Largest depth ever observed — the saturation tests assert it
    /// never exceeds the capacity.
    high_water: usize,
}

/// A bounded MPMC queue with non-blocking admission, cancellation, and
/// pop-time deadline flagging. See the module docs for the invariants.
pub struct AdmissionQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    /// Signalled on every admission and on close; `pop` waits on it.
    available: Condvar,
    /// Times a lock or condvar wait recovered from poisoning — silent
    /// before, counted now so the panic-injection tests can assert the
    /// recovery happened.
    poisonings: AtomicU64,
}

impl<T> AdmissionQueue<T> {
    /// An open queue admitting at most `capacity` entries at a time
    /// (`capacity` is clamped to ≥ 1: a zero-capacity queue could admit
    /// nothing and would deadlock every consumer).
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                queue: VecDeque::new(),
                next_id: 0,
                closed: false,
                high_water: 0,
            }),
            available: Condvar::new(),
            poisonings: AtomicU64::new(0),
        }
    }

    /// How many lock acquisitions (or condvar waits) recovered from
    /// poisoning; `0` unless a payload's drop glue panicked inside the
    /// queue. Folded into the serve layer's
    /// `EngineStats::lock_poisonings_recovered`.
    pub fn lock_poisonings_recovered(&self) -> u64 {
        self.poisonings.load(Ordering::Relaxed)
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently queued (admitted, not yet popped or cancelled).
    pub fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// The largest depth ever observed; `high_water() ≤ capacity()`
    /// always.
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }

    /// Admits `payload`, or rejects it immediately — never blocks, never
    /// grows past the bound. An entry whose `deadline` passes while it
    /// queues is still popped (flagged [`Job::expired`]) so the worker
    /// resolves it; the queue itself drops nothing.
    pub fn submit(&self, payload: T, deadline: Option<Instant>) -> Result<JobId, SubmitError> {
        let mut state = self.lock();
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.queue.len() >= self.capacity {
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        let id = JobId(state.next_id);
        state.next_id += 1;
        state.queue.push_back(Entry {
            id,
            payload,
            deadline,
        });
        state.high_water = state.high_water.max(state.queue.len());
        drop(state);
        self.available.notify_one();
        Ok(id)
    }

    /// Takes a still-queued entry back, returning its payload; `None`
    /// if a worker already popped it (the submitter then awaits the
    /// worker's resolution — the entry is never resolved twice).
    pub fn cancel(&self, id: JobId) -> Option<T> {
        let mut state = self.lock();
        let pos = state.queue.iter().position(|e| e.id == id)?;
        state.queue.remove(pos).map(|e| e.payload)
    }

    /// Blocks until an entry is available and takes the oldest one, or
    /// returns `None` once the queue is closed **and** drained — so
    /// workers process every admitted request before exiting, and
    /// nothing a client is waiting on evaporates at shutdown.
    pub fn pop(&self) -> Option<Job<T>> {
        let mut state = self.lock();
        loop {
            if let Some(entry) = state.queue.pop_front() {
                let expired = entry.deadline.is_some_and(|d| Instant::now() > d);
                return Some(Job {
                    id: entry.id,
                    payload: entry.payload,
                    expired,
                });
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap_or_else(|poisoned| {
                self.poisonings.fetch_add(1, Ordering::Relaxed);
                poisoned.into_inner()
            });
        }
    }

    /// Closes the queue: future [`submit`](Self::submit)s fail with
    /// [`SubmitError::Closed`], and every blocked or future
    /// [`pop`](Self::pop) returns `None` once the backlog drains.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // A panic while holding this mutex can only come from a caller's
        // payload drop glue; the queue's own state is valid between
        // every statement, so recovering the guard is sound.
        self.state.lock().unwrap_or_else(|poisoned| {
            self.poisonings.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bounded_fifo_with_rejection() {
        let q = AdmissionQueue::new(2);
        let a = q.submit('a', None).unwrap();
        let b = q.submit('b', None).unwrap();
        assert_ne!(a, b);
        assert_eq!(
            q.submit('c', None),
            Err(SubmitError::QueueFull { capacity: 2 })
        );
        assert_eq!(q.depth(), 2);
        let first = q.pop().unwrap();
        assert_eq!((first.id, first.payload, first.expired), (a, 'a', false));
        // Rejection freed no slot (the reject never entered), popping did.
        q.submit('d', None).unwrap();
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn cancel_takes_the_entry_back_exactly_once() {
        let q = AdmissionQueue::new(4);
        let id = q.submit(7, None).unwrap();
        assert_eq!(q.cancel(id), Some(7));
        assert_eq!(q.cancel(id), None, "second cancel finds nothing");
        assert_eq!(q.depth(), 0);
        let id2 = q.submit(8, None).unwrap();
        assert_eq!(q.pop().unwrap().payload, 8);
        assert_eq!(q.cancel(id2), None, "popped entries cannot be cancelled");
    }

    #[test]
    fn expired_entries_are_flagged_not_dropped() {
        let q = AdmissionQueue::new(4);
        let past = Instant::now() - Duration::from_millis(1);
        q.submit("late", Some(past)).unwrap();
        q.submit("fresh", Some(Instant::now() + Duration::from_secs(600)))
            .unwrap();
        let first = q.pop().unwrap();
        assert!(first.expired);
        assert_eq!(first.payload, "late");
        let second = q.pop().unwrap();
        assert!(!second.expired);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = AdmissionQueue::new(4);
        q.submit(1, None).unwrap();
        q.close();
        assert_eq!(q.submit(2, None), Err(SubmitError::Closed));
        assert_eq!(q.pop().unwrap().payload, 1, "backlog survives close");
        assert!(q.pop().is_none());
        assert!(q.is_closed());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = AdmissionQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.submit((), None).unwrap();
    }

    #[test]
    fn poisoned_state_recovers_and_is_counted() {
        let q = AdmissionQueue::new(2);
        q.submit('a', None).unwrap();
        assert_eq!(q.lock_poisonings_recovered(), 0);
        // Poison the state mutex the way a panicking payload drop
        // would: panic while holding the guard.
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = q.state.lock().unwrap();
            panic!("injected panic under the queue lock");
        }));
        assert!(unwound.is_err());
        // Admission, pop, and close all still work — and the recovery
        // is observable, not silent.
        q.submit('b', None).unwrap();
        assert_eq!(q.pop().unwrap().payload, 'a');
        assert_eq!(q.pop().unwrap().payload, 'b');
        q.close();
        assert!(q.pop().is_none());
        assert!(q.lock_poisonings_recovered() >= 1);
    }
}
