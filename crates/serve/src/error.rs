//! The serve layer's typed error vocabulary.
//!
//! Overload never surfaces as a wrong answer, a panic, or a hang: every
//! request resolves to exactly one of an answer or one of these errors,
//! and the backpressure trio ([`ServeError::QueueFull`],
//! [`ServeError::DeadlineExceeded`], [`ServeError::BudgetExceeded`]) is
//! the *only* way the server sheds load — the contract the saturation
//! tests pin.

use std::error::Error;
use std::fmt;
use std::time::Duration;

use intext_engine::EngineError;

/// Why a request did not come back with an answer.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// Admission control rejected the request outright: the bounded
    /// queue already holds `capacity` requests. Backpressure, not
    /// failure — retry after draining, or add workers.
    QueueFull {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// The request's deadline passed while it waited in the queue; the
    /// worker that picked it up discarded it without evaluating.
    DeadlineExceeded {
        /// How long past the deadline the request was when a worker
        /// finally reached it.
        late_by: Duration,
    },
    /// Admission control rejected a batch larger than the server's
    /// per-request scenario budget.
    BudgetExceeded {
        /// Scenarios the batch asked for.
        scenarios: usize,
        /// The configured per-request bound.
        budget: usize,
    },
    /// The submitter cancelled the request before a worker reached it.
    Cancelled,
    /// The server is shutting down (or has shut down) and accepts no
    /// new requests.
    Closed,
    /// The planner found no sound backend for the query (vocabulary
    /// mismatch, or a hard instance beyond the brute-force budget with
    /// sampling disabled).
    Engine(EngineError),
    /// A worker panicked while evaluating this request. The panic is
    /// contained (other requests and the server survive), but the
    /// answer is lost; this is a bug, never load shedding.
    WorkerPanicked,
}

impl ServeError {
    /// Whether this error is *backpressure* — deliberate load shedding
    /// under overload, as opposed to an unsound query or a server bug.
    pub fn is_backpressure(&self) -> bool {
        matches!(
            self,
            ServeError::QueueFull { .. }
                | ServeError::DeadlineExceeded { .. }
                | ServeError::BudgetExceeded { .. }
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "admission queue is full ({capacity} requests)")
            }
            ServeError::DeadlineExceeded { late_by } => {
                write!(f, "deadline exceeded: request was {late_by:?} late")
            }
            ServeError::BudgetExceeded { scenarios, budget } => write!(
                f,
                "batch of {scenarios} scenarios exceeds the per-request budget of {budget}"
            ),
            ServeError::Cancelled => write!(f, "request cancelled by the submitter"),
            ServeError::Closed => write!(f, "server is shut down"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::WorkerPanicked => write!(f, "worker panicked while evaluating"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}
