//! Socket transports: the same [`ServeHandle`] front door, reachable
//! over TCP or a Unix-domain socket with the [`wire`] frame protocol
//! (std only — no async runtime, no external crates).
//!
//! Threading model: one non-blocking accept loop per listener (polled
//! so [`ListenerHandle::stop`] and `Drop` can interrupt it), one
//! blocking thread per connection. Each connection thread speaks
//! frames synchronously — read a request, push it through the handle
//! (admission control and all: a remote client sees exactly the same
//! typed backpressure as an in-process one), write the reply. A
//! malformed frame closes the connection; it never reaches the engine
//! and never panics the server.
//!
//! Client-side crash safety (protocol v3): every request carries a
//! `u64` id the server echoes in its reply. [`RemoteClient`] maps a
//! mid-frame disconnect to the typed
//! [`WireError::ConnectionLost`] —
//! distinguishable from hostile frames — and, when it owns a dialer,
//! redials under a bounded exponential backoff ([`RetryPolicy`]) and
//! **resends the same id**. Evaluation is pure, so the retry is
//! idempotent: re-executing a request whose reply was torn cannot
//! change any answer, and a reply whose id does not match the request
//! in flight is rejected instead of being mistaken for the answer.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::error::ServeError;
use crate::server::{Request, Response, ServeHandle};
use crate::wire::{self, WireError, MAX_FRAME_LEN};

/// How often the accept loop re-checks its stop flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Why a [`RemoteClient`] call failed (after exhausting any retries).
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (dialing, writing, or a non-disconnect
    /// read error).
    Io(io::Error),
    /// The peer violated the frame protocol, or —
    /// [`WireError::ConnectionLost`] — disconnected mid-frame.
    Wire(WireError),
}

impl ClientError {
    /// Whether redialing can fix this failure: the connection died
    /// (mid-frame, between frames, or on write) rather than the peer
    /// speaking a broken protocol — resending identical bytes to a
    /// protocol violator would fail identically.
    pub fn is_connection_lost(&self) -> bool {
        match self {
            ClientError::Wire(WireError::ConnectionLost { .. }) => true,
            ClientError::Wire(_) => false,
            ClientError::Io(e) => is_disconnect(e),
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// `io::Error` kinds that mean the connection is gone (as opposed to
/// a local or protocol problem a redial cannot fix).
fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
            | io::ErrorKind::WriteZero
    )
}

/// Writes one `u32`-length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&len| len <= MAX_FRAME_LEN)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary (the
/// peer hung up between requests), `Err` on a torn frame or an
/// oversized length prefix.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    // Read the first byte by hand to tell clean EOF (0 bytes at a
    // boundary) from a frame truncated mid-prefix.
    let mut got = 0;
    while got < len_bytes.len() {
        match r.read(&mut len_bytes[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            wire::WireError::FrameTooLarge(len),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// The client-side frame read: like [`read_frame`], but a disconnect
/// mid-frame (EOF or a reset/abort after some bytes arrived) comes
/// back as the typed [`WireError::ConnectionLost`] carrying how many
/// bytes of the frame had landed — the signal [`RemoteClient`] uses to
/// decide a redial-and-resend is safe.
fn read_frame_counted<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, ClientError> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0;
    while got < len_bytes.len() {
        match r.read(&mut len_bytes[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(ClientError::Wire(WireError::ConnectionLost {
                    bytes_read: got,
                }))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_disconnect(&e) => {
                return Err(ClientError::Wire(WireError::ConnectionLost {
                    bytes_read: got,
                }))
            }
            Err(e) => return Err(ClientError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(ClientError::Wire(WireError::FrameTooLarge(len)));
    }
    let mut payload = vec![0u8; len as usize];
    let mut read = 0;
    while read < payload.len() {
        match r.read(&mut payload[read..]) {
            Ok(0) => {
                return Err(ClientError::Wire(WireError::ConnectionLost {
                    bytes_read: len_bytes.len() + read,
                }))
            }
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_disconnect(&e) => {
                return Err(ClientError::Wire(WireError::ConnectionLost {
                    bytes_read: len_bytes.len() + read,
                }))
            }
            Err(e) => return Err(ClientError::Io(e)),
        }
    }
    Ok(Some(payload))
}

/// Serves one connection until the peer hangs up: decode a request,
/// run it through `handle` (same admission control as in-process
/// callers), reply with the response or the typed error. Returns `Err`
/// only on transport failures or protocol violations — engine and
/// backpressure errors travel *inside* the protocol.
pub fn serve_connection<S: Read + Write>(handle: &ServeHandle, stream: &mut S) -> io::Result<()> {
    loop {
        let Some(payload) = read_frame(stream)? else {
            return Ok(());
        };
        let (id, reply) = match wire::decode_request(&payload) {
            Ok((id, request)) => (id, handle.request(request)),
            Err(e) => {
                // Framing is broken — past this point offsets can't be
                // trusted, so close rather than guess.
                return Err(io::Error::new(io::ErrorKind::InvalidData, e));
            }
        };
        // Echo the request's id so the client can pair the reply with
        // the request in flight (and a retried request with its rerun).
        let bytes = match &reply {
            Ok(response) => wire::encode_response(id, response),
            Err(err) => wire::encode_error(id, err),
        };
        write_frame(stream, &bytes)?;
    }
}

/// Where a listener is bound.
#[derive(Clone, Debug)]
pub enum BoundAddr {
    /// A TCP socket address (with the OS-assigned port when bound to
    /// port 0).
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// A running accept loop. Dropping it (or calling
/// [`stop`](ListenerHandle::stop)) stops accepting new connections;
/// already-established connections finish their in-flight exchanges on
/// their own threads.
pub struct ListenerHandle {
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    addr: BoundAddr,
}

impl ListenerHandle {
    /// Where this listener accepts connections.
    pub fn addr(&self) -> &BoundAddr {
        &self.addr
    }

    /// The bound TCP address, for `TcpStream::connect` in tests
    /// (`None` for Unix listeners).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match self.addr {
            BoundAddr::Tcp(addr) => Some(addr),
            #[cfg(unix)]
            BoundAddr::Unix(_) => None,
        }
    }

    /// Stops the accept loop and joins it.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        #[cfg(unix)]
        if let BoundAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ListenerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Binds a TCP listener and serves `handle` from it; bind to port 0
/// for an OS-assigned port ([`ListenerHandle::tcp_addr`] reports it).
pub fn listen_tcp(handle: ServeHandle, addr: impl ToSocketAddrs) -> io::Result<ListenerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = spawn_accept_loop(Arc::clone(&stop), move |stop| {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                // The accept socket is non-blocking; connections are
                // served blocking on their own threads.
                let _ = stream.set_nonblocking(false);
                let handle = handle.clone();
                thread::spawn(move || {
                    let _ = serve_connection(&handle, &mut stream);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => stop.store(true, Ordering::Relaxed),
        }
    });
    Ok(ListenerHandle {
        stop,
        accept_thread: Some(accept_thread),
        addr: BoundAddr::Tcp(local),
    })
}

/// Binds a Unix-domain socket at `path` and serves `handle` from it;
/// the socket file is removed when the listener stops.
#[cfg(unix)]
pub fn listen_unix(handle: ServeHandle, path: impl AsRef<Path>) -> io::Result<ListenerHandle> {
    let path = path.as_ref().to_path_buf();
    let listener = UnixListener::bind(&path)?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = spawn_accept_loop(Arc::clone(&stop), move |stop| match listener.accept() {
        Ok((mut stream, _peer)) => {
            let _ = stream.set_nonblocking(false);
            let handle = handle.clone();
            thread::spawn(move || {
                let _ = serve_connection(&handle, &mut stream);
            });
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
        Err(_) => stop.store(true, Ordering::Relaxed),
    });
    Ok(ListenerHandle {
        stop,
        accept_thread: Some(accept_thread),
        addr: BoundAddr::Unix(path),
    })
}

fn spawn_accept_loop(
    stop: Arc<AtomicBool>,
    mut step: impl FnMut(&AtomicBool) + Send + 'static,
) -> JoinHandle<()> {
    thread::Builder::new()
        .name("intext-serve-accept".into())
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                step(&stop);
            }
        })
        .expect("spawning the accept thread")
}

/// Reconnect policy for [`RemoteClient`]: bounded exponential backoff.
///
/// After a lost connection, attempt `i` (zero-based) sleeps
/// `base_delay · 2^i` (capped at `max_delay`), redials, and resends
/// the in-flight request under its original id. At most `max_retries`
/// redials per request; the policy never retries protocol violations,
/// only lost connections ([`ClientError::is_connection_lost`]).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Redial attempts per request after a lost connection
    /// (`0` disables reconnection entirely).
    pub max_retries: u32,
    /// Sleep before the first redial; doubles on each further attempt.
    pub base_delay: Duration,
    /// Upper bound on the backoff sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(320),
        }
    }
}

impl RetryPolicy {
    /// No reconnection: the first lost connection is final.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(16);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }
}

/// Re-establishes a [`RemoteClient`]'s transport after a lost
/// connection.
type Dialer<S> = Box<dyn FnMut() -> io::Result<S> + Send>;

/// A blocking frame-protocol client over any byte stream.
///
/// Requests carry monotonically increasing ids (protocol v3). When
/// the client owns a dialer ([`connect`](RemoteClient::connect),
/// [`connect_unix`](RemoteClient::connect_unix), or
/// [`with_dialer`](RemoteClient::with_dialer)), a connection lost
/// mid-exchange is retried under [`RetryPolicy`]: redial, resend the
/// *same* id, accept only a reply echoing it. Evaluation is pure, so
/// the resend is idempotent — at worst the server computes the same
/// pure answer twice.
pub struct RemoteClient<S: Read + Write> {
    stream: S,
    next_id: u64,
    dialer: Option<Dialer<S>>,
    retry: RetryPolicy,
}

impl RemoteClient<TcpStream> {
    /// Connects over TCP and remembers the resolved addresses for
    /// reconnection under the default [`RetryPolicy`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = TcpStream::connect(&addrs[..])?;
        Ok(RemoteClient::new(stream).with_dialer(move || TcpStream::connect(&addrs[..])))
    }
}

#[cfg(unix)]
impl RemoteClient<UnixStream> {
    /// Connects over a Unix-domain socket and remembers the path for
    /// reconnection under the default [`RetryPolicy`].
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let stream = UnixStream::connect(&path)?;
        Ok(RemoteClient::new(stream).with_dialer(move || UnixStream::connect(&path)))
    }
}

impl<S: Read + Write> RemoteClient<S> {
    /// Wraps an already-connected stream. Without a dialer the client
    /// cannot reconnect: the first lost connection surfaces as
    /// [`WireError::ConnectionLost`].
    pub fn new(stream: S) -> Self {
        RemoteClient {
            stream,
            next_id: 0,
            dialer: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Installs (or replaces) the dialer used for reconnection — how a
    /// custom transport, or a fault-injecting test, opts into
    /// [`RetryPolicy`] retries.
    pub fn with_dialer(mut self, dialer: impl FnMut() -> io::Result<S> + Send + 'static) -> Self {
        self.dialer = Some(Box::new(dialer));
        self
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// One round trip. The outer `Result` is transport health; the
    /// inner one is the server's verdict (answers and typed
    /// backpressure both decode losslessly — exact probabilities
    /// compare `==` against a local engine's). A lost connection is
    /// retried per [`RetryPolicy`] when a dialer is installed: same
    /// request id over a fresh connection, so the retry is idempotent
    /// and a mismatched reply id is rejected as a protocol error.
    pub fn request(&mut self, req: &Request) -> Result<Result<Response, ServeError>, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = wire::encode_request(id, req);
        let mut attempt = 0u32;
        loop {
            match self.round_trip(id, &frame) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    let retryable = e.is_connection_lost() && self.dialer.is_some();
                    if !retryable || attempt >= self.retry.max_retries {
                        return Err(e);
                    }
                    thread::sleep(self.retry.delay(attempt));
                    attempt += 1;
                    if let Ok(fresh) = (self.dialer.as_mut().expect("dialer checked above"))() {
                        self.stream = fresh;
                    }
                    // A failed redial leaves the dead stream in place:
                    // the next round trip fails as connection-lost and
                    // consumes the next attempt, keeping the loop
                    // bounded by `max_retries`.
                }
            }
        }
    }

    fn round_trip(
        &mut self,
        id: u64,
        frame: &[u8],
    ) -> Result<Result<Response, ServeError>, ClientError> {
        write_frame(&mut self.stream, frame)?;
        // A server that hangs up between our request and its reply is
        // a lost connection too (zero reply bytes arrived), not a
        // clean end-of-session: the request is still unresolved.
        let payload = read_frame_counted(&mut self.stream)?.ok_or(ClientError::Wire(
            WireError::ConnectionLost { bytes_read: 0 },
        ))?;
        let (reply_id, reply) = wire::decode_reply(&payload).map_err(ClientError::Wire)?;
        if reply_id != id {
            // A reply for some other request (e.g. a stale frame from
            // a half-duplex proxy) must not be mistaken for ours.
            return Err(ClientError::Wire(WireError::BadValue("response id")));
        }
        Ok(reply)
    }

    /// The underlying stream (e.g. to set timeouts).
    pub fn stream(&self) -> &S {
        &self.stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::io::Cursor;
    use std::sync::Mutex;

    /// A scripted transport: reads drain a fixed byte script (EOF
    /// after — a disconnect if a frame is still in flight), writes are
    /// swallowed. The deterministic stand-in for a server that dies
    /// mid-reply.
    struct ScriptStream(Cursor<Vec<u8>>);

    impl Read for ScriptStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.0.read(buf)
        }
    }

    impl Write for ScriptStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// The framed wire bytes of a `Pong` reply echoing `id`.
    fn pong_frame(id: u64) -> Vec<u8> {
        let mut framed = Vec::new();
        write_frame(&mut framed, &wire::encode_response(id, &Response::Pong)).unwrap();
        framed
    }

    fn instant_retry(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    #[test]
    fn mid_frame_disconnect_is_typed_with_byte_count() {
        let torn = pong_frame(0)[..7].to_vec();
        let mut client = RemoteClient::new(ScriptStream(Cursor::new(torn)));
        // No dialer: the loss is final and typed, not a raw io::Error.
        let err = client.request(&Request::Ping).unwrap_err();
        assert!(matches!(
            err,
            ClientError::Wire(WireError::ConnectionLost { bytes_read: 7 })
        ));
        assert!(err.is_connection_lost());
    }

    #[test]
    fn reconnect_resends_the_same_id_and_succeeds() {
        // First connection tears the reply mid-frame; the redialed one
        // answers in full — and must echo id 0, the *original* id.
        let replacements = Mutex::new(VecDeque::from([ScriptStream(Cursor::new(pong_frame(0)))]));
        let mut client =
            RemoteClient::new(ScriptStream(Cursor::new(pong_frame(0)[..3].to_vec())))
                .with_dialer(move || {
                    replacements.lock().unwrap().pop_front().ok_or_else(|| {
                        io::Error::new(io::ErrorKind::ConnectionRefused, "no server")
                    })
                })
                .with_retry(instant_retry(2));
        let reply = client.request(&Request::Ping).unwrap().unwrap();
        assert!(matches!(reply, Response::Pong));
    }

    #[test]
    fn mismatched_reply_ids_are_protocol_errors_not_retried() {
        // The server echoes id 5 for our id-0 request: a protocol
        // violation. The dialer must never fire — retrying can't fix a
        // peer that answers the wrong request.
        let dials = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let dials_in_dialer = Arc::clone(&dials);
        let mut client = RemoteClient::new(ScriptStream(Cursor::new(pong_frame(5))))
            .with_dialer(move || {
                dials_in_dialer.fetch_add(1, Ordering::Relaxed);
                Ok(ScriptStream(Cursor::new(Vec::new())))
            })
            .with_retry(instant_retry(3));
        let err = client.request(&Request::Ping).unwrap_err();
        assert!(matches!(
            err,
            ClientError::Wire(WireError::BadValue("response id"))
        ));
        assert!(!err.is_connection_lost());
        assert_eq!(dials.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn retries_are_bounded_by_the_policy() {
        // Every connection (initial + redials) EOFs before replying;
        // the client must give up after exactly `max_retries` redials.
        let dials = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let dials_in_dialer = Arc::clone(&dials);
        let mut client = RemoteClient::new(ScriptStream(Cursor::new(Vec::new())))
            .with_dialer(move || {
                dials_in_dialer.fetch_add(1, Ordering::Relaxed);
                Ok(ScriptStream(Cursor::new(Vec::new())))
            })
            .with_retry(instant_retry(3));
        let err = client.request(&Request::Ping).unwrap_err();
        assert!(err.is_connection_lost());
        assert_eq!(dials.load(Ordering::Relaxed), 3);
    }
}
