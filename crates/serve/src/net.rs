//! Socket transports: the same [`ServeHandle`] front door, reachable
//! over TCP or a Unix-domain socket with the [`wire`] frame protocol
//! (std only — no async runtime, no external crates).
//!
//! Threading model: one non-blocking accept loop per listener (polled
//! so [`ListenerHandle::stop`] and `Drop` can interrupt it), one
//! blocking thread per connection. Each connection thread speaks
//! frames synchronously — read a request, push it through the handle
//! (admission control and all: a remote client sees exactly the same
//! typed backpressure as an in-process one), write the reply. A
//! malformed frame closes the connection; it never reaches the engine
//! and never panics the server.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::error::ServeError;
use crate::server::{Request, Response, ServeHandle};
use crate::wire::{self, MAX_FRAME_LEN};

/// How often the accept loop re-checks its stop flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Writes one `u32`-length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&len| len <= MAX_FRAME_LEN)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary (the
/// peer hung up between requests), `Err` on a torn frame or an
/// oversized length prefix.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    // Read the first byte by hand to tell clean EOF (0 bytes at a
    // boundary) from a frame truncated mid-prefix.
    let mut got = 0;
    while got < len_bytes.len() {
        match r.read(&mut len_bytes[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            wire::WireError::FrameTooLarge(len),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Serves one connection until the peer hangs up: decode a request,
/// run it through `handle` (same admission control as in-process
/// callers), reply with the response or the typed error. Returns `Err`
/// only on transport failures or protocol violations — engine and
/// backpressure errors travel *inside* the protocol.
pub fn serve_connection<S: Read + Write>(handle: &ServeHandle, stream: &mut S) -> io::Result<()> {
    loop {
        let Some(payload) = read_frame(stream)? else {
            return Ok(());
        };
        let reply = match wire::decode_request(&payload) {
            Ok(request) => handle.request(request),
            Err(e) => {
                // Framing is broken — past this point offsets can't be
                // trusted, so close rather than guess.
                return Err(io::Error::new(io::ErrorKind::InvalidData, e));
            }
        };
        let bytes = match &reply {
            Ok(response) => wire::encode_response(response),
            Err(err) => wire::encode_error(err),
        };
        write_frame(stream, &bytes)?;
    }
}

/// Where a listener is bound.
#[derive(Clone, Debug)]
pub enum BoundAddr {
    /// A TCP socket address (with the OS-assigned port when bound to
    /// port 0).
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// A running accept loop. Dropping it (or calling
/// [`stop`](ListenerHandle::stop)) stops accepting new connections;
/// already-established connections finish their in-flight exchanges on
/// their own threads.
pub struct ListenerHandle {
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    addr: BoundAddr,
}

impl ListenerHandle {
    /// Where this listener accepts connections.
    pub fn addr(&self) -> &BoundAddr {
        &self.addr
    }

    /// The bound TCP address, for `TcpStream::connect` in tests
    /// (`None` for Unix listeners).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match self.addr {
            BoundAddr::Tcp(addr) => Some(addr),
            #[cfg(unix)]
            BoundAddr::Unix(_) => None,
        }
    }

    /// Stops the accept loop and joins it.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        #[cfg(unix)]
        if let BoundAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ListenerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Binds a TCP listener and serves `handle` from it; bind to port 0
/// for an OS-assigned port ([`ListenerHandle::tcp_addr`] reports it).
pub fn listen_tcp(handle: ServeHandle, addr: impl ToSocketAddrs) -> io::Result<ListenerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = spawn_accept_loop(Arc::clone(&stop), move |stop| {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                // The accept socket is non-blocking; connections are
                // served blocking on their own threads.
                let _ = stream.set_nonblocking(false);
                let handle = handle.clone();
                thread::spawn(move || {
                    let _ = serve_connection(&handle, &mut stream);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => stop.store(true, Ordering::Relaxed),
        }
    });
    Ok(ListenerHandle {
        stop,
        accept_thread: Some(accept_thread),
        addr: BoundAddr::Tcp(local),
    })
}

/// Binds a Unix-domain socket at `path` and serves `handle` from it;
/// the socket file is removed when the listener stops.
#[cfg(unix)]
pub fn listen_unix(handle: ServeHandle, path: impl AsRef<Path>) -> io::Result<ListenerHandle> {
    let path = path.as_ref().to_path_buf();
    let listener = UnixListener::bind(&path)?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = spawn_accept_loop(Arc::clone(&stop), move |stop| match listener.accept() {
        Ok((mut stream, _peer)) => {
            let _ = stream.set_nonblocking(false);
            let handle = handle.clone();
            thread::spawn(move || {
                let _ = serve_connection(&handle, &mut stream);
            });
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
        Err(_) => stop.store(true, Ordering::Relaxed),
    });
    Ok(ListenerHandle {
        stop,
        accept_thread: Some(accept_thread),
        addr: BoundAddr::Unix(path),
    })
}

fn spawn_accept_loop(
    stop: Arc<AtomicBool>,
    mut step: impl FnMut(&AtomicBool) + Send + 'static,
) -> JoinHandle<()> {
    thread::Builder::new()
        .name("intext-serve-accept".into())
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                step(&stop);
            }
        })
        .expect("spawning the accept thread")
}

/// A blocking frame-protocol client over any byte stream.
pub struct RemoteClient<S: Read + Write> {
    stream: S,
}

impl RemoteClient<TcpStream> {
    /// Connects over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(RemoteClient {
            stream: TcpStream::connect(addr)?,
        })
    }
}

#[cfg(unix)]
impl RemoteClient<UnixStream> {
    /// Connects over a Unix-domain socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(RemoteClient {
            stream: UnixStream::connect(path)?,
        })
    }
}

impl<S: Read + Write> RemoteClient<S> {
    /// Wraps an already-connected stream.
    pub fn new(stream: S) -> Self {
        RemoteClient { stream }
    }

    /// One round trip. The outer `Result` is transport health; the
    /// inner one is the server's verdict (answers and typed
    /// backpressure both decode losslessly — exact probabilities
    /// compare `==` against a local engine's).
    pub fn request(&mut self, req: &Request) -> io::Result<Result<Response, ServeError>> {
        write_frame(&mut self.stream, &wire::encode_request(req))?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        wire::decode_reply(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// The underlying stream (e.g. to set timeouts).
    pub fn stream(&self) -> &S {
        &self.stream
    }
}
