//! The server: one [`SharedEngine`] behind an [`AdmissionQueue`] and a
//! worker pool, plus the in-process [`ServeHandle`] client.
//!
//! Life of a request: a [`ServeHandle`] submits a [`Request`] with an
//! optional deadline; admission control either queues it (returning a
//! [`PendingResponse`] the client blocks on) or rejects it with typed
//! backpressure ([`ServeError::QueueFull`] /
//! [`ServeError::BudgetExceeded`]) — overload is *always* an error
//! value, never a wrong answer, a panic, or a hang. A worker pops the
//! job, resolves it as [`ServeError::DeadlineExceeded`] if its deadline
//! lapsed in the queue, and otherwise evaluates it as a pure `&self`
//! walk over `Arc`-shared artifacts (see [`SharedEngine`] for the
//! locking contract), recording into a worker-local [`EngineStats`]
//! that is merged into the server totals afterwards. Evaluation runs
//! under `catch_unwind`, so a worker panic costs exactly one request
//! ([`ServeError::WorkerPanicked`]) and nothing else.
//!
//! Determinism contract (pinned by `tests/engine_serve.rs`): every
//! route returns answers **bit-identical** to a sequential
//! [`PqeEngine`] fed the same requests — single queries evaluate at RNG
//! stream 0 like [`PqeEngine::evaluate`], batch scenario `i` at stream
//! `i` like [`PqeEngine::evaluate_batch`], and sharded batches replicate
//! the engine's own chunk math so even the lane-kernel block boundaries
//! line up.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use intext_engine::{
    ConfigError, EngineConfig, EngineStats, Estimate, LaneScratch, PqeEngine, PreparedQuery,
};
use intext_numeric::BigRational;
use intext_query::Query;
use intext_tid::Tid;

use crate::error::ServeError;
use crate::queue::{AdmissionQueue, Job, JobId, SubmitError};
use crate::shared::SharedEngine;

/// One unit of work a client can submit.
#[derive(Clone, Debug)]
pub enum Request {
    /// Exact `PQE(Q_φ)` on one scenario.
    Evaluate {
        /// The query (an H-query or a parsed UCQ).
        q: Query,
        /// The tuple-independent database.
        tid: Tid,
    },
    /// Floating-point `PQE(Q_φ)` on one scenario.
    EvaluateF64 {
        /// The query (an H-query or a parsed UCQ).
        q: Query,
        /// The tuple-independent database.
        tid: Tid,
    },
    /// `(ε, δ)`-shaped estimate (exact routes come back with
    /// `eps = delta = 0`).
    Estimate {
        /// The query (an H-query or a parsed UCQ).
        q: Query,
        /// The tuple-independent database.
        tid: Tid,
    },
    /// Exact batch: scenario `i` is bit-identical to
    /// [`PqeEngine::evaluate_batch`]'s element `i`.
    Batch {
        /// The query (an H-query or a parsed UCQ).
        q: Query,
        /// The probability scenarios, evaluated in order.
        tids: Vec<Tid>,
    },
    /// Sharded f64 batch through the lane kernel, bit-identical to
    /// [`PqeEngine::evaluate_batch_sharded_f64`] at the same `shards`.
    BatchF64 {
        /// The query (an H-query or a parsed UCQ).
        q: Query,
        /// The probability scenarios, evaluated in order.
        tids: Vec<Tid>,
        /// Requested fan-out (clamped like the engine's own sharded
        /// paths).
        shards: usize,
    },
    /// Serialize the artifact cache ([`PqeEngine::save_cache`]) for a
    /// replica warm start.
    Snapshot,
    /// Liveness probe.
    Ping,
}

impl Request {
    /// Scenarios this request will evaluate — what
    /// [`ServeConfig::max_batch_scenarios`] meters.
    pub fn scenarios(&self) -> usize {
        match self {
            Request::Evaluate { .. } | Request::EvaluateF64 { .. } | Request::Estimate { .. } => 1,
            Request::Batch { tids, .. } | Request::BatchF64 { tids, .. } => tids.len(),
            Request::Snapshot | Request::Ping => 0,
        }
    }
}

/// A resolved [`Request`] (the variant always matches the request kind).
#[derive(Clone, Debug)]
pub enum Response {
    /// Answer to [`Request::Evaluate`].
    Exact(BigRational),
    /// Answer to [`Request::EvaluateF64`].
    F64(f64),
    /// Answer to [`Request::Estimate`].
    Estimate(Estimate),
    /// Answer to [`Request::Batch`], one probability per scenario.
    Batch(Vec<BigRational>),
    /// Answer to [`Request::BatchF64`], one probability per scenario.
    BatchF64(Vec<f64>),
    /// Answer to [`Request::Snapshot`]: bytes for
    /// [`PqeEngine::load_cache`] on a replica.
    Snapshot(Vec<u8>),
    /// Answer to [`Request::Ping`].
    Pong,
}

/// Server shape: engine knobs plus the serve layer's own capacity
/// levers.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Planner/cache/sampling configuration for the one shared engine.
    pub engine: EngineConfig,
    /// Worker threads (clamped to ≥ 1). Default: available parallelism.
    pub workers: usize,
    /// Admission queue bound (clamped to ≥ 1); submissions beyond it
    /// are rejected with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Largest batch admitted, in scenarios; bigger requests are
    /// rejected at submit time with [`ServeError::BudgetExceeded`].
    /// `None` admits any size.
    pub max_batch_scenarios: Option<usize>,
    /// Deadline stamped on every request a fresh handle submits
    /// (overridable per handle via [`ServeHandle::with_deadline`]).
    /// `None`: requests wait in the queue indefinitely.
    pub default_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engine: EngineConfig::default(),
            workers: thread::available_parallelism().map_or(2, usize::from),
            queue_capacity: 128,
            max_batch_scenarios: None,
            default_deadline: None,
        }
    }
}

/// Single-assignment response cell a submitter blocks on.
///
/// Resolution is first-writer-wins: the worker and a racing
/// [`PendingResponse::cancel`] can both call [`resolve`](Slot::resolve),
/// and exactly one succeeds — the exactly-once half of the serve
/// contract (the bounded-queue half lives in [`AdmissionQueue`]).
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

enum SlotState {
    Pending,
    Ready(Result<Response, ServeError>),
    Taken,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        }
    }

    /// First resolution wins; later ones are dropped (returns whether
    /// this call was the winner).
    fn resolve(&self, result: Result<Response, ServeError>) -> bool {
        let mut state = self.lock();
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Ready(result);
            drop(state);
            self.ready.notify_all();
            true
        } else {
            false
        }
    }

    fn wait(&self) -> Result<Response, ServeError> {
        let mut state = self.lock();
        loop {
            match std::mem::replace(&mut *state, SlotState::Taken) {
                SlotState::Ready(result) => return result,
                taken_or_pending => {
                    // Not ready yet: put the marker back and block.
                    *state = taken_or_pending;
                    state = self
                        .ready
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    fn lock(&self) -> MutexGuard<'_, SlotState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// What travels through the admission queue.
struct QueuedJob {
    request: Request,
    slot: Arc<Slot>,
    /// Duplicates the queue entry's deadline so the worker can compute
    /// `late_by` for the typed rejection.
    deadline: Option<Instant>,
}

/// Everything the workers, handles, and transports share.
struct ServerShared {
    engine: SharedEngine,
    queue: AdmissionQueue<QueuedJob>,
    /// Evaluation-side counters (queries, hits, route latencies) from
    /// every finished request, merged worker-locally then folded in
    /// here; [`ServeHandle::stats`] adds the engine's own write-path
    /// counters on top.
    served: Mutex<EngineStats>,
    /// Deterministic fault injection: the next `panic_next` executed
    /// jobs panic inside the worker (under `catch_unwind`), so the
    /// crash tests can exercise the [`ServeError::WorkerPanicked`]
    /// containment path at will. `0` in production.
    panic_next: AtomicU32,
    config: ServeConfig,
}

impl ServerShared {
    fn served(&self) -> MutexGuard<'_, EngineStats> {
        self.served.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Claims one injected panic, if any are armed, and panics. Runs
    /// inside the worker's `catch_unwind`, so each injection costs
    /// exactly one request.
    fn consume_injected_panic(&self) {
        let mut armed = self.panic_next.load(Ordering::Relaxed);
        while armed > 0 {
            match self.panic_next.compare_exchange(
                armed,
                armed - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => panic!("injected worker panic (fault harness)"),
                Err(current) => armed = current,
            }
        }
    }

    /// Merged totals: engine write-path counters + every worker's
    /// evaluation counters + the lock-poisoning recoveries observed by
    /// the engine lock and the admission queue.
    fn merged_stats(&self) -> EngineStats {
        let mut stats = self.engine.engine_stats();
        stats.merge(&self.served());
        stats.lock_poisonings_recovered +=
            self.engine.lock_poisonings_recovered() + self.queue.lock_poisonings_recovered();
        stats
    }
}

/// The running server: worker pool + shared state. Dropping it (or
/// calling [`shutdown`](Server::shutdown)) closes admission, drains the
/// backlog, and joins every worker.
pub struct Server {
    shared: Arc<ServerShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Boots a server: validates the engine config, builds the shared
    /// engine, and spawns the worker pool.
    pub fn start(config: ServeConfig) -> Result<Server, ConfigError> {
        let engine = PqeEngine::try_with_config(config.engine)?;
        Ok(Self::start_with_engine(engine, config))
    }

    /// [`start`](Self::start) with a pre-built engine — the warm-start
    /// path: `load_cache` into an engine first, then serve from it.
    pub fn start_with_engine(engine: PqeEngine, config: ServeConfig) -> Server {
        let shared = Arc::new(ServerShared {
            engine: SharedEngine::new(engine),
            queue: AdmissionQueue::new(config.queue_capacity),
            served: Mutex::new(EngineStats::default()),
            panic_next: AtomicU32::new(0),
            config,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("intext-serve-{i}"))
                    .spawn(move || {
                        while let Some(job) = shared.queue.pop() {
                            Self::work_one(&shared, job);
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        Server { shared, workers }
    }

    /// An in-process client for this server; clone freely across
    /// threads.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
            deadline: self.shared.config.default_deadline,
        }
    }

    /// Closes admission, drains the backlog (every queued request still
    /// resolves), joins the workers, and returns the final merged
    /// stats.
    pub fn shutdown(mut self) -> EngineStats {
        self.shutdown_inner();
        self.shared.merged_stats()
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            // A worker that panicked outside `catch_unwind` (a bug) has
            // already resolved nothing further; surface nothing here —
            // shutdown must complete regardless.
            let _ = worker.join();
        }
    }

    /// One popped job, start to resolution. Panics in evaluation are
    /// contained here: the request resolves as
    /// [`ServeError::WorkerPanicked`] and the worker loop continues.
    fn work_one(shared: &ServerShared, job: Job<QueuedJob>) {
        let QueuedJob {
            request,
            slot,
            deadline,
        } = job.payload;
        if job.expired {
            let late_by = deadline
                .map(|d| Instant::now().saturating_duration_since(d))
                .unwrap_or_default();
            slot.resolve(Err(ServeError::DeadlineExceeded { late_by }));
            return;
        }
        let mut local = EngineStats::default();
        let result = catch_unwind(AssertUnwindSafe(|| {
            Self::execute(shared, &request, &mut local)
        }))
        .unwrap_or(Err(ServeError::WorkerPanicked));
        // Merge before resolving so a client that observes its answer
        // and immediately reads stats sees its own request counted.
        shared.served().merge(&local);
        slot.resolve(result);
    }

    fn execute(
        shared: &ServerShared,
        request: &Request,
        stats: &mut EngineStats,
    ) -> Result<Response, ServeError> {
        shared.consume_injected_panic();
        match request {
            Request::Evaluate { q, tid } => {
                let prepared = shared.engine.prepare(q, tid)?;
                Ok(Response::Exact(prepared.eval_exact(tid, 0, stats)))
            }
            Request::EvaluateF64 { q, tid } => {
                let prepared = shared.engine.prepare(q, tid)?;
                Ok(Response::F64(prepared.eval_f64(tid, 0, stats)))
            }
            Request::Estimate { q, tid } => {
                let prepared = shared.engine.prepare(q, tid)?;
                Ok(Response::Estimate(prepared.eval_estimate(tid, 0, stats)))
            }
            Request::Batch { q, tids } => Ok(Response::Batch(Self::eval_batch_exact(
                &shared.engine,
                q,
                tids,
                stats,
            )?)),
            Request::BatchF64 { q, tids, shards } => Ok(Response::BatchF64(Self::eval_batch_f64(
                &shared.engine,
                q,
                tids,
                *shards,
                stats,
            )?)),
            Request::Snapshot => Ok(Response::Snapshot(shared.engine.save_cache())),
            Request::Ping => Ok(Response::Pong),
        }
    }

    /// Mirrors [`PqeEngine::evaluate_batch`] over the shared engine:
    /// consecutive same-shape scenarios share one preparation, scenario
    /// `i` evaluates at RNG stream `i` — identical answers, identical
    /// counters.
    fn eval_batch_exact(
        engine: &SharedEngine,
        q: &Query,
        tids: &[Tid],
        stats: &mut EngineStats,
    ) -> Result<Vec<BigRational>, ServeError> {
        let mut out = Vec::with_capacity(tids.len());
        let mut run: Option<PreparedQuery> = None;
        for (i, tid) in tids.iter().enumerate() {
            let fresh = i == 0 || !tid.database().same_shape(tids[i - 1].database());
            let prepared = match run.take() {
                Some(prev) if !fresh => prev.share(),
                _ => engine.prepare(q, tid)?,
            };
            out.push(prepared.eval_exact(tid, i as u64, stats));
            run = Some(prepared);
        }
        Ok(out)
    }

    /// Mirrors [`PqeEngine::evaluate_batch_sharded_f64`]: prepare once
    /// per same-shape run (shares within a run), then fan the scenarios
    /// across `shards` chunks using the engine's exact chunk math — so
    /// answers, per-scenario stats, *and* lane-kernel call counts all
    /// match the engine's own sharded path at the same `shards`.
    fn eval_batch_f64(
        engine: &SharedEngine,
        q: &Query,
        tids: &[Tid],
        shards: usize,
        stats: &mut EngineStats,
    ) -> Result<Vec<f64>, ServeError> {
        if tids.is_empty() {
            return Ok(Vec::new());
        }
        // Phase 1: one preparation per scenario; `run_start[i]` marks
        // the head of the same-shape run containing scenario `i`.
        let mut prepared: Vec<PreparedQuery> = Vec::with_capacity(tids.len());
        let mut run_start: Vec<usize> = Vec::with_capacity(tids.len());
        for (i, tid) in tids.iter().enumerate() {
            if i > 0 && tid.database().same_shape(tids[i - 1].database()) {
                let share = prepared[i - 1].share();
                prepared.push(share);
                run_start.push(run_start[i - 1]);
            } else {
                prepared.push(engine.prepare(q, tid)?);
                run_start.push(i);
            }
        }
        // Phase 2: chunked walk, engine chunk math (`shard_count` /
        // `div_ceil`) replicated so block boundaries line up with
        // `evaluate_batch_sharded_f64`.
        let shards = {
            let clamped = shards.clamp(1, tids.len());
            tids.len().div_ceil(tids.len().div_ceil(clamped))
        };
        let chunk = tids.len().div_ceil(shards);
        let (prepared, run_start) = (&prepared, &run_start);
        let outputs: Vec<(Vec<f64>, EngineStats)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..tids.len())
                .step_by(chunk)
                .map(|base| {
                    scope.spawn(move || {
                        let end = (base + chunk).min(tids.len());
                        let mut local = EngineStats::default();
                        let mut scratch = LaneScratch::new();
                        let mut out = Vec::with_capacity(end - base);
                        let mut start = base;
                        while start < end {
                            // The run segment inside this chunk.
                            let mut seg_end = start + 1;
                            while seg_end < end && run_start[seg_end] == run_start[start] {
                                seg_end += 1;
                            }
                            prepared[start].eval_run_f64(
                                &tids[start..seg_end],
                                start as u64,
                                &mut scratch,
                                &mut out,
                                &mut local,
                            );
                            start = seg_end;
                        }
                        (out, local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("chunk worker panicked"))
                .collect()
        });
        // Phase 3: stitch and merge in chunk order (deterministic).
        let mut out = Vec::with_capacity(tids.len());
        for (chunk_out, chunk_stats) in outputs {
            out.extend_from_slice(&chunk_out);
            stats.merge(&chunk_stats);
        }
        Ok(out)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// In-process client: submit requests, await answers, read merged
/// stats. Clones share the server; each clone carries its own default
/// deadline.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<ServerShared>,
    deadline: Option<Duration>,
}

impl ServeHandle {
    /// This handle with every subsequent submission deadlined `d` from
    /// its submit instant.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Submits a request through admission control. `Err` here is
    /// *rejection at the door* ([`ServeError::QueueFull`],
    /// [`ServeError::BudgetExceeded`], [`ServeError::Closed`]); an
    /// admitted request resolves through the returned
    /// [`PendingResponse`].
    pub fn submit(&self, request: Request) -> Result<PendingResponse, ServeError> {
        if let Some(budget) = self.shared.config.max_batch_scenarios {
            let scenarios = request.scenarios();
            if scenarios > budget {
                return Err(ServeError::BudgetExceeded { scenarios, budget });
            }
        }
        let slot = Arc::new(Slot::new());
        let deadline = self.deadline.map(|d| Instant::now() + d);
        let job = QueuedJob {
            request,
            slot: Arc::clone(&slot),
            deadline,
        };
        match self.shared.queue.submit(job, deadline) {
            Ok(id) => Ok(PendingResponse {
                slot,
                id,
                shared: Arc::clone(&self.shared),
            }),
            Err(SubmitError::QueueFull { capacity }) => Err(ServeError::QueueFull { capacity }),
            Err(SubmitError::Closed) => Err(ServeError::Closed),
        }
    }

    /// Submit + block: one round trip.
    pub fn request(&self, request: Request) -> Result<Response, ServeError> {
        self.submit(request)?.wait()
    }

    /// Exact `PQE(Q)` — bit-identical to [`PqeEngine::evaluate`].
    /// Accepts anything convertible to a [`Query`]: an
    /// [`HQuery`](intext_query::HQuery) by reference, or a parsed UCQ.
    pub fn evaluate(&self, q: impl Into<Query>, tid: &Tid) -> Result<BigRational, ServeError> {
        match self.request(Request::Evaluate {
            q: q.into(),
            tid: tid.clone(),
        })? {
            Response::Exact(p) => Ok(p),
            other => unreachable!("evaluate resolves to an exact response, got {other:?}"),
        }
    }

    /// Floating-point `PQE(Q)` — bit-identical to
    /// [`PqeEngine::evaluate_f64`].
    pub fn evaluate_f64(&self, q: impl Into<Query>, tid: &Tid) -> Result<f64, ServeError> {
        match self.request(Request::EvaluateF64 {
            q: q.into(),
            tid: tid.clone(),
        })? {
            Response::F64(p) => Ok(p),
            other => unreachable!("evaluate_f64 resolves to an f64 response, got {other:?}"),
        }
    }

    /// `(ε, δ)` estimate — bit-identical to [`PqeEngine::estimate`].
    pub fn estimate(&self, q: impl Into<Query>, tid: &Tid) -> Result<Estimate, ServeError> {
        match self.request(Request::Estimate {
            q: q.into(),
            tid: tid.clone(),
        })? {
            Response::Estimate(e) => Ok(e),
            other => unreachable!("estimate resolves to an estimate response, got {other:?}"),
        }
    }

    /// Exact batch — bit-identical to [`PqeEngine::evaluate_batch`].
    pub fn evaluate_batch(
        &self,
        q: impl Into<Query>,
        tids: &[Tid],
    ) -> Result<Vec<BigRational>, ServeError> {
        match self.request(Request::Batch {
            q: q.into(),
            tids: tids.to_vec(),
        })? {
            Response::Batch(ps) => Ok(ps),
            other => unreachable!("batch resolves to a batch response, got {other:?}"),
        }
    }

    /// Sharded f64 batch — bit-identical to
    /// [`PqeEngine::evaluate_batch_sharded_f64`].
    pub fn evaluate_batch_f64(
        &self,
        q: impl Into<Query>,
        tids: &[Tid],
        shards: usize,
    ) -> Result<Vec<f64>, ServeError> {
        match self.request(Request::BatchF64 {
            q: q.into(),
            tids: tids.to_vec(),
            shards,
        })? {
            Response::BatchF64(ps) => Ok(ps),
            other => unreachable!("batch_f64 resolves to a batch response, got {other:?}"),
        }
    }

    /// Snapshot of the artifact cache for a replica warm start.
    pub fn snapshot(&self) -> Result<Vec<u8>, ServeError> {
        match self.request(Request::Snapshot)? {
            Response::Snapshot(bytes) => Ok(bytes),
            other => unreachable!("snapshot resolves to snapshot bytes, got {other:?}"),
        }
    }

    /// Liveness round trip through the full queue + worker path.
    pub fn ping(&self) -> Result<(), ServeError> {
        match self.request(Request::Ping)? {
            Response::Pong => Ok(()),
            other => unreachable!("ping resolves to pong, got {other:?}"),
        }
    }

    /// Server totals: the engine's write-path counters (compiles,
    /// evictions, memo builds) merged with every worker's evaluation
    /// counters, plus the lock-poisoning recoveries
    /// ([`EngineStats::lock_poisonings_recovered`]). For a quiesced
    /// server fed the same requests, the count fields equal a
    /// sequential engine's.
    pub fn stats(&self) -> EngineStats {
        self.shared.merged_stats()
    }

    /// Fault injection for the crash tests: the next `jobs` executed
    /// jobs panic inside their worker. Each injected panic is
    /// contained by `catch_unwind` and resolves its request as
    /// [`ServeError::WorkerPanicked`]; the worker loop, the queue, and
    /// every other request are untouched.
    pub fn inject_worker_panics(&self, jobs: u32) {
        self.shared.panic_next.fetch_add(jobs, Ordering::Relaxed);
    }

    /// The shared engine, for mutation endpoints (live tuple updates,
    /// warm-start loads) and read-only inspection.
    pub fn engine(&self) -> &SharedEngine {
        &self.shared.engine
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// The admission bound.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// Largest queue depth ever observed (≤ capacity, always).
    pub fn queue_high_water(&self) -> usize {
        self.shared.queue.high_water()
    }
}

/// A submitted, admitted request: block on [`wait`](Self::wait), or
/// take it back with [`cancel`](Self::cancel).
pub struct PendingResponse {
    slot: Arc<Slot>,
    id: JobId,
    shared: Arc<ServerShared>,
}

impl fmt::Debug for PendingResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PendingResponse")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl PendingResponse {
    /// Blocks until the request resolves (answer, typed rejection, or
    /// — after a [`cancel`](Self::cancel) won the race —
    /// [`ServeError::Cancelled`]).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.slot.wait()
    }

    /// Tries to take the request back before a worker reaches it.
    /// Returns `true` if the cancel won (the request resolves
    /// [`ServeError::Cancelled`] and no worker will see it); `false`
    /// if a worker already popped it (its real resolution stands —
    /// never both).
    pub fn cancel(&self) -> bool {
        match self.shared.queue.cancel(self.id) {
            Some(job) => job.slot.resolve(Err(ServeError::Cancelled)),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::phi9;
    use intext_query::HQuery;
    use intext_tid::{complete_database, uniform_tid};

    fn tid3() -> Tid {
        uniform_tid(complete_database(3, 1), BigRational::from_ratio(1, 2))
    }

    #[test]
    fn round_trip_matches_sequential_engine() {
        let server = Server::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.handle();
        let q = HQuery::new(phi9());
        let tid = tid3();
        let expected = PqeEngine::new().evaluate(&q, &tid).unwrap();
        assert_eq!(handle.evaluate(&q, &tid).unwrap(), expected);
        handle.ping().unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn oversized_batches_are_rejected_at_the_door() {
        let server = Server::start(ServeConfig {
            workers: 1,
            max_batch_scenarios: Some(2),
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.handle();
        let q = HQuery::new(phi9());
        let tids = vec![tid3(), tid3(), tid3()];
        let err = handle.evaluate_batch(&q, &tids).unwrap_err();
        assert_eq!(
            err,
            ServeError::BudgetExceeded {
                scenarios: 3,
                budget: 2
            }
        );
        assert!(err.is_backpressure());
        // Nothing was admitted, so nothing was evaluated.
        assert_eq!(server.shutdown().queries, 0);
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let server = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.handle();
        let q = Query::from(HQuery::new(phi9()));
        let tid = tid3();
        let pending: Vec<_> = (0..4)
            .map(|_| {
                handle
                    .submit(Request::EvaluateF64 {
                        q: q.clone(),
                        tid: tid.clone(),
                    })
                    .unwrap()
            })
            .collect();
        let stats = server.shutdown();
        assert_eq!(stats.queries, 4, "backlog resolved, not dropped");
        let expected = PqeEngine::new().evaluate_f64(&q, &tid).unwrap();
        for p in pending {
            match p.wait().unwrap() {
                Response::F64(v) => assert_eq!(v.to_bits(), expected.to_bits()),
                other => panic!("expected f64, got {other:?}"),
            }
        }
    }
}
