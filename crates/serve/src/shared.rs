//! The sharded read-write layer around one [`PqeEngine`].
//!
//! The locking contract (`DESIGN.md` §10): the hot path — planning a
//! query and probing the artifact cache / lattice memo — takes the
//! **read** lock ([`PqeEngine::prepare_shared`], which never mutates,
//! never bumps LRU recency), and the returned [`PreparedQuery`] is
//! evaluated entirely **outside** any lock, as a pure walk over
//! `Arc`-shared state. Only cold keys (first compile of a shape),
//! live-tuple updates, and snapshot loads take the write lock. The
//! cold path is **double-checked**: a reader that missed re-probes
//! under the write lock (inside [`PqeEngine::prepare`]), so N racing
//! readers cost one compile and N−1 hits — exactly the counters a
//! sequential engine running the same requests reports, which is what
//! lets the differential harness assert stats equality.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use intext_engine::{
    EngineError, EngineStats, LoadReport, PqeEngine, PreparedQuery, StoreError, TupleUpdate,
};
use intext_numeric::BigRational;
use intext_query::{HQuery, Query};
use intext_tid::{Database, Tid, TidError, TupleDesc, TupleId};

/// One [`PqeEngine`] behind a read-write lock, shared by every worker
/// and every connection of a server. See the module docs for the
/// locking contract.
pub struct SharedEngine {
    inner: RwLock<PqeEngine>,
    /// Times a lock acquisition recovered from poisoning (a holder
    /// panicked). Recovery used to be silent; counting it is what lets
    /// the panic-injection tests assert the containment actually
    /// happened instead of trusting it.
    poisonings: AtomicU64,
}

impl SharedEngine {
    /// Wraps an engine (typically freshly configured, possibly
    /// warm-started via [`PqeEngine::load_cache`] before wrapping).
    pub fn new(engine: PqeEngine) -> Self {
        SharedEngine {
            inner: RwLock::new(engine),
            poisonings: AtomicU64::new(0),
        }
    }

    /// Prepares `(q, tid)` for lock-free evaluation: read-locked probe
    /// first, write-locked compile only when the key is cold
    /// (double-checked, so concurrent cold probes compile once).
    /// Accepts any [`Query`] — an H-query, or a parsed UCQ routed to
    /// the lifted or grounded-circuit backend.
    pub fn prepare(&self, q: &Query, tid: &Tid) -> Result<PreparedQuery, EngineError> {
        if let Some(prepared) = self.read().prepare_shared(q, tid)? {
            return Ok(prepared);
        }
        self.write().prepare(q, tid)
    }

    /// Write-locked [`PqeEngine::insert_tuple`]: readers drain first,
    /// in-flight [`PreparedQuery`] walks keep their pre-update
    /// `Arc<Artifact>` (immutable, so still sound for their snapshot of
    /// the instance).
    pub fn insert_tuple(
        &self,
        tid: &mut Tid,
        tuple: TupleDesc,
        p: BigRational,
    ) -> Result<TupleId, TidError> {
        self.write().insert_tuple(tid, tuple, p)
    }

    /// Write-locked [`PqeEngine::remove_tuple`].
    pub fn remove_tuple(
        &self,
        tid: &mut Tid,
        id: TupleId,
    ) -> Result<(TupleDesc, BigRational), TidError> {
        self.write().remove_tuple(tid, id)
    }

    /// Write-locked [`PqeEngine::set_probability`].
    pub fn set_probability(
        &self,
        tid: &mut Tid,
        id: TupleId,
        p: BigRational,
    ) -> Result<(), TidError> {
        self.write().set_probability(tid, id, p)
    }

    /// Read-locked [`PqeEngine::save_cache`] — the snapshot endpoint.
    /// Concurrent evaluations proceed; the snapshot sees a consistent
    /// cache (no torn artifacts: entries are immutable `Arc`s).
    pub fn save_cache(&self) -> Vec<u8> {
        self.read().save_cache()
    }

    /// Write-locked [`PqeEngine::load_cache`] — replica warm start.
    pub fn load_cache(&self, bytes: &[u8]) -> Result<LoadReport, StoreError> {
        self.write().load_cache(bytes)
    }

    /// Read-locked [`PqeEngine::export_delta`]: ships one live update
    /// to replicas without blocking evaluation traffic.
    pub fn export_delta(
        &self,
        q: &HQuery,
        db: &Database,
        update: &TupleUpdate,
    ) -> Result<Vec<u8>, StoreError> {
        self.read().export_delta(q, db, update)
    }

    /// Write-locked [`PqeEngine::apply_delta`].
    pub fn apply_delta(&self, bytes: &[u8]) -> Result<LoadReport, StoreError> {
        self.write().apply_delta(bytes)
    }

    /// A clone of the engine's own stats (compiles, evictions,
    /// memo-builds — the write-path counters). The serve layer merges
    /// worker-local evaluation stats on top; see
    /// [`ServeHandle::stats`](crate::ServeHandle::stats).
    pub fn engine_stats(&self) -> EngineStats {
        self.read().stats().clone()
    }

    /// Read-locked [`PqeEngine::cache_len`].
    pub fn cache_len(&self) -> usize {
        self.read().cache_len()
    }

    /// Read-locked [`PqeEngine::cache_gates`] — the stress tests assert
    /// this stays within budget under concurrent update traffic.
    pub fn cache_gates(&self) -> usize {
        self.read().cache_gates()
    }

    /// Read-locked [`PqeEngine::cache_budget`].
    pub fn cache_budget(&self) -> Option<usize> {
        self.read().cache_budget()
    }

    /// Runs `f` under the read lock — an escape hatch for read-only
    /// engine APIs without a dedicated wrapper (e.g. `explain`).
    pub fn with_engine<R>(&self, f: impl FnOnce(&PqeEngine) -> R) -> R {
        f(&self.read())
    }

    /// Runs `f` under the write lock — the mutation escape hatch
    /// (e.g. [`PqeEngine::reset_stats`], durable checkpoints, fault
    /// injection in the crash tests).
    pub fn with_engine_mut<R>(&self, f: impl FnOnce(&mut PqeEngine) -> R) -> R {
        f(&mut self.write())
    }

    /// How many lock acquisitions recovered from poisoning. Surfaced
    /// as [`EngineStats::lock_poisonings_recovered`] in the serve
    /// layer's merged stats; a quiet server reports `0`.
    pub fn lock_poisonings_recovered(&self) -> u64 {
        self.poisonings.load(Ordering::Relaxed)
    }

    fn read(&self) -> RwLockReadGuard<'_, PqeEngine> {
        // Lock poisoning means a worker panicked mid-call. The engine's
        // own structures are exception-safe (cache inserts are single
        // HashMap operations), so the state is usable; recovering here
        // is what turns a contained panic into one failed request
        // instead of a poisoned — hence deadlocked-looking — server.
        self.inner.read().unwrap_or_else(|poisoned| {
            self.poisonings.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    fn write(&self) -> RwLockWriteGuard<'_, PqeEngine> {
        self.inner.write().unwrap_or_else(|poisoned| {
            self.poisonings.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::phi9;
    use intext_tid::{complete_database, uniform_tid};

    fn half() -> BigRational {
        BigRational::from_ratio(1, 2)
    }

    #[test]
    fn racing_cold_probes_compile_once() {
        let shared = SharedEngine::new(PqeEngine::new());
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        let mut stats = EngineStats::default();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = EngineStats::default();
                        let prepared = shared.prepare(&Query::from(&q), &tid).unwrap();
                        let p = prepared.eval_exact(&tid, 0, &mut local);
                        (p, local)
                    })
                })
                .collect();
            let answers: Vec<_> = handles
                .into_iter()
                .map(|h| h.join().expect("no panics"))
                .collect();
            for (p, local) in answers {
                assert_eq!(p, answers_reference(&q, &tid));
                stats.merge(&local);
            }
        });
        assert_eq!(stats.queries, 4);
        // Double-checked locking: exactly one compile no matter the race.
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 3);
        assert_eq!(shared.cache_len(), 1);
    }

    fn answers_reference(q: &HQuery, tid: &Tid) -> BigRational {
        PqeEngine::new().evaluate(q, tid).unwrap()
    }

    #[test]
    fn poisoned_locks_recover_and_are_counted() {
        let shared = SharedEngine::new(PqeEngine::new());
        assert_eq!(shared.lock_poisonings_recovered(), 0);
        // Panic while holding the write lock: the one way to poison an
        // RwLock (reader panics don't poison it).
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.with_engine_mut(|_| panic!("injected panic under the write lock"));
        }));
        assert!(unwound.is_err());
        // Every subsequent acquisition recovers instead of failing, the
        // engine still answers correctly, and the recoveries are
        // counted rather than silent.
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        let mut local = EngineStats::default();
        let prepared = shared.prepare(&Query::from(&q), &tid).unwrap();
        assert_eq!(
            prepared.eval_exact(&tid, 0, &mut local),
            answers_reference(&q, &tid)
        );
        assert!(shared.lock_poisonings_recovered() >= 1);
    }
}
