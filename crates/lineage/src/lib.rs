//! Lineage compilation for degenerate `H`-queries into OBDDs —
//! Proposition 3.7 / Appendix B.1 of Monet (PODS 2020), built from
//! scratch (the paper uses Fink & Olteanu \[16\] as a black box).
//!
//! # The construction
//!
//! Let `ψ` be a Boolean function on `V = {0..k}` that does not depend on
//! some variable `l`. The queries `h_{k,i}` with `i < l` only touch the
//! relations `R, S_1, ..., S_l`, and those with `i > l` only touch
//! `S_{l+1}, ..., S_k, T` — disjoint halves of the vocabulary. Order the
//! tuples of the database as `Π_L · Π_R` where
//!
//! * `Π_L` groups by the *first* attribute: for each domain constant `a`,
//!   first `R(a)`, then `S_1(a,b), ..., S_l(a,b)` for each `b`;
//! * `Π_R` groups by the *second* attribute: for each `b`, first `T(b)`,
//!   then `S_{l+1}(a,b), ..., S_k(a,b)` for each `a`.
//!
//! Under this order every `h_{k,i}` (`i ≠ l`) is recognized by a
//! *streaming automaton* with O(1) state: a "witness found" bit plus a
//! per-group latch (`R(a)` seen; `T(b)` seen; previous `S` of the current
//! pair seen). The product of all k automata has constantly many states
//! *in data complexity* (`<= 2^(k+4)`), and unrolling it over the tuple
//! stream yields a reduced OBDD for `Lin(Q_ψ, D)` of size linear in `|D|`.
//!
//! This is exactly the black box Proposition 4.4 plugs into the holes of
//! the `¬`-`∨`-templates, and what Theorem 6.2's transfer construction
//! uses for the degenerate pair-functions `ψ_i`.

mod automaton;
mod compile;

pub use automaton::{slot_stream, ReadOp, StreamStep};
pub use compile::{
    compile_degenerate_obdd, compile_degenerate_obdd_apply, DegenerateLineage, LineageError,
    SplitCompiler,
};
