//! Unrolling the product automaton into a reduced OBDD.

use std::fmt;

use intext_boolfn::BoolFn;
use intext_circuits::{Circuit, GateId, NodeRef, ObddManager};
use intext_numeric::BigRational;
use intext_tid::{Database, Tid, TupleId};

use crate::automaton::{self, witnesses, StreamStep};

/// Errors from the degenerate-lineage compiler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineageError {
    /// The function depends on all of its variables (Proposition 3.7
    /// needs a variable to split the vocabulary on).
    NotDegenerate,
    /// The database's `k` does not match the function's `k`.
    VocabularyMismatch {
        /// `k` expected by the function.
        expected: u8,
        /// `k` of the database.
        got: u8,
    },
}

impl fmt::Display for LineageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineageError::NotDegenerate => {
                write!(
                    f,
                    "function depends on all variables; Prop 3.7 needs a split variable"
                )
            }
            LineageError::VocabularyMismatch { expected, got } => {
                write!(f, "function is over k={expected} but database has k={got}")
            }
        }
    }
}

impl std::error::Error for LineageError {}

/// A compiled lineage: a reduced OBDD over the tuple variables of the
/// database, in the grouped order `Π_L · Π_R`.
#[derive(Debug)]
pub struct DegenerateLineage {
    /// The OBDD manager holding the lineage (order = `Π_L · Π_R`,
    /// restricted to tuples present in the database).
    pub manager: ObddManager,
    /// Root of the lineage function.
    pub root: NodeRef,
    /// The split variable `l` that was used.
    pub split: u8,
}

impl DegenerateLineage {
    /// OBDD node count.
    pub fn size(&self) -> usize {
        self.manager.size(self.root)
    }

    /// Exact probability of the query under the TID's probabilities.
    pub fn probability_exact(&self, tid: &Tid) -> BigRational {
        self.manager
            .probability_exact(self.root, &|v| tid.prob(TupleId(v)).clone())
    }

    /// Floating-point probability.
    pub fn probability_f64(&self, tid: &Tid) -> f64 {
        self.manager
            .probability_f64(self.root, &|v| tid.prob_f64(TupleId(v)))
    }

    /// Embeds the OBDD as a d-D circuit (for template plugging).
    pub fn to_circuit(&self) -> (Circuit, GateId) {
        self.manager.to_circuit(self.root)
    }
}

/// A reusable compiler for a fixed database and split variable `l`:
/// compiles any function independent of `l` into the **shared** manager
/// (same order `Π_L · Π_R`), so results can be combined with OBDD
/// operations.
pub struct SplitCompiler {
    manager: ObddManager,
    steps: Vec<StreamStep>,
    k: u8,
    l: u8,
}

impl SplitCompiler {
    /// Prepares the slot stream and variable order for split variable `l`.
    ///
    /// # Panics
    /// Panics if `l > db.k()`.
    pub fn new(db: &Database, l: u8) -> Self {
        assert!(l <= db.k(), "split variable {l} out of range");
        let steps = automaton::slot_stream(db, l);
        let order: Vec<u32> = steps
            .iter()
            .filter_map(|s| match s {
                StreamStep::Read { tuple: Some(t), .. } => Some(t.0),
                _ => None,
            })
            .collect();
        SplitCompiler {
            manager: ObddManager::new(order),
            steps,
            k: db.k(),
            l,
        }
    }

    /// The shared manager.
    pub fn manager(&self) -> &ObddManager {
        &self.manager
    }

    /// Consumes the compiler, yielding the manager.
    pub fn into_manager(self) -> ObddManager {
        self.manager
    }

    /// The split variable.
    pub fn split(&self) -> u8 {
        self.l
    }

    /// Unrolls the product automaton for `psi` (which must not depend on
    /// the split variable) into a reduced OBDD; `O(2^k · |D|)`.
    pub fn compile(&mut self, psi: &BoolFn) -> Result<NodeRef, LineageError> {
        if psi.k() != self.k {
            return Err(LineageError::VocabularyMismatch {
                expected: psi.k(),
                got: self.k,
            });
        }
        if psi.depends_on(self.l) {
            return Err(LineageError::NotDegenerate);
        }
        let k = self.k;
        let num_levels = self.manager.order().len();

        // Compact state indexing: witness bits 0..=k, then r/t/prev.
        let nbits = u32::from(k) + 1;
        let total_states = 1usize << (nbits + 3);
        let decode = |idx: usize| -> u32 {
            let idx = idx as u32;
            let mut s = idx & ((1 << nbits) - 1);
            if idx & (1 << nbits) != 0 {
                s |= automaton::R_BIT;
            }
            if idx & (1 << (nbits + 1)) != 0 {
                s |= automaton::T_BIT;
            }
            if idx & (1 << (nbits + 2)) != 0 {
                s |= automaton::PREV_BIT;
            }
            s
        };
        let encode = |s: u32| -> usize {
            let mut idx = witnesses(s);
            if s & automaton::R_BIT != 0 {
                idx |= 1 << nbits;
            }
            if s & automaton::T_BIT != 0 {
                idx |= 1 << (nbits + 1);
            }
            if s & automaton::PREV_BIT != 0 {
                idx |= 1 << (nbits + 2);
            }
            idx as usize
        };

        // Backward pass: `cur[idx]` = OBDD of the residual stream as a
        // function of the remaining tuple variables, per automaton state.
        let mut cur: Vec<NodeRef> = (0..total_states)
            .map(|idx| {
                if psi.eval(witnesses(decode(idx))) {
                    NodeRef::TRUE
                } else {
                    NodeRef::FALSE
                }
            })
            .collect();
        let mut next = vec![NodeRef::FALSE; total_states];
        let mut level = num_levels;

        for &step in self.steps.iter().rev() {
            match step {
                StreamStep::Read { op, tuple: Some(_) } => {
                    level -= 1;
                    for (idx, slot) in next.iter_mut().enumerate() {
                        let s = decode(idx);
                        let lo = cur[encode(automaton::read(s, op, false, k))];
                        let hi = cur[encode(automaton::read(s, op, true, k))];
                        *slot = self.manager.mk(level as u32, lo, hi);
                    }
                }
                StreamStep::Read { op, tuple: None } => {
                    for (idx, slot) in next.iter_mut().enumerate() {
                        let s = decode(idx);
                        *slot = cur[encode(automaton::read(s, op, false, k))];
                    }
                }
                reset_step => {
                    for (idx, slot) in next.iter_mut().enumerate() {
                        let s = decode(idx);
                        *slot = cur[encode(automaton::reset(s, reset_step))];
                    }
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        debug_assert_eq!(level, 0, "every variable level consumed");
        Ok(cur[encode(0)])
    }
}

/// Compiles the lineage `Lin(Q_ψ, D)` of a degenerate `H`-query into a
/// reduced OBDD in time `O(2^k · |D|)` — linear in the database
/// (Proposition 3.7).
///
/// The split variable is any `l ∉ DEP(ψ)`; the automaton state space has
/// `2^(k+4)` states (constant in data complexity), and the backward
/// unrolling touches each stream slot once per state.
pub fn compile_degenerate_obdd(
    psi: &BoolFn,
    db: &Database,
) -> Result<DegenerateLineage, LineageError> {
    let k = psi.k();
    if db.k() != k {
        return Err(LineageError::VocabularyMismatch {
            expected: k,
            got: db.k(),
        });
    }
    let l = psi.independent_var().ok_or(LineageError::NotDegenerate)?;
    let mut compiler = SplitCompiler::new(db, l);
    let root = compiler.compile(psi)?;
    Ok(DegenerateLineage {
        manager: compiler.into_manager(),
        root,
        split: l,
    })
}

/// Ablation baseline for Proposition 3.7: build one OBDD per `h_{k,i}`
/// (`i ≠ l`) with the automaton, then combine them under `ψ` with the
/// textbook multi-way `apply` (product construction) instead of
/// unrolling the product automaton directly. Same output function; the
/// benchmarks compare the two routes.
pub fn compile_degenerate_obdd_apply(
    psi: &BoolFn,
    db: &Database,
) -> Result<DegenerateLineage, LineageError> {
    let k = psi.k();
    if db.k() != k {
        return Err(LineageError::VocabularyMismatch {
            expected: k,
            got: db.k(),
        });
    }
    let l = psi.independent_var().ok_or(LineageError::NotDegenerate)?;
    let mut compiler = SplitCompiler::new(db, l);
    // One OBDD per h-index the function can see.
    let mut indices = Vec::new();
    let mut roots = Vec::new();
    for i in 0..=k {
        if i == l {
            continue;
        }
        indices.push(i);
        let hi = BoolFn::var(k + 1, i);
        roots.push(
            compiler
                .compile(&hi)
                .expect("h_i ignores the split variable"),
        );
    }
    let mut manager = compiler.into_manager();
    let root = manager.combine_many(&roots, &|values: &[bool]| {
        let mut mask = 0u32;
        for (pos, &i) in indices.iter().enumerate() {
            if values[pos] {
                mask |= 1 << i;
            }
        }
        psi.eval(mask)
    });
    Ok(DegenerateLineage {
        manager,
        root,
        split: l,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_query::{pqe_brute_force, HQuery};
    use intext_tid::{complete_database, random_database, random_tid, DbGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Exhaustively compare the OBDD against the query's lineage
    /// semantics on every world.
    fn assert_lineage_correct(psi: &BoolFn, db: &Database) {
        let lin = compile_degenerate_obdd(psi, db).expect("compiles");
        let q = HQuery::new(psi.clone());
        for world in 0..(1u64 << db.len()) {
            let via_obdd = lin.manager.eval(lin.root, &|v| (world >> v) & 1 == 1);
            let via_query = q.lineage_eval(db, world);
            assert_eq!(via_obdd, via_query, "world={world:#b}");
        }
    }

    #[test]
    fn single_h_queries_compile_correctly() {
        // psi = variable i alone: Q = h_{k,i}; degenerate for k >= 1.
        let db = complete_database(2, 1);
        for i in 0..=2u8 {
            let psi = BoolFn::var(3, i);
            assert_lineage_correct(&psi, &db);
        }
    }

    #[test]
    fn boolean_combinations_compile_correctly() {
        let db = complete_database(3, 1);
        // (h0 ∧ ¬h2) ∨ h3 — does not depend on variable 1.
        let h0 = BoolFn::var(4, 0);
        let h2 = BoolFn::var(4, 2);
        let h3 = BoolFn::var(4, 3);
        let psi = &(&h0 & &!&h2) | &h3;
        assert!(psi.is_degenerate());
        assert_lineage_correct(&psi, &db);
    }

    #[test]
    fn pair_functions_compile_correctly() {
        // The fragmentation leaves: SAT(ψ) = {ν, ν ∪ {l}}.
        let db = complete_database(2, 1);
        for l in 0..=2u8 {
            for nu in 0..8u32 {
                let nu = nu & !(1 << l);
                let psi = BoolFn::from_sat(3, [nu, nu | (1 << l)]);
                assert_eq!(psi.independent_var(), Some(l));
                assert_lineage_correct(&psi, &db);
            }
        }
    }

    #[test]
    fn constants_compile() {
        let db = complete_database(2, 2);
        let bot = compile_degenerate_obdd(&BoolFn::bottom(3), &db).unwrap();
        assert_eq!(bot.root, NodeRef::FALSE);
        let top = compile_degenerate_obdd(&BoolFn::top(3), &db).unwrap();
        assert_eq!(top.root, NodeRef::TRUE);
    }

    #[test]
    fn sparse_random_databases() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..10 {
            let db = random_database(
                &DbGenConfig {
                    k: 2,
                    domain_size: 2,
                    density: 0.5,
                    prob_denominator: 10,
                },
                &mut rng,
            );
            if db.len() >= 16 {
                continue;
            }
            let psi = &BoolFn::var(3, 0) ^ &BoolFn::var(3, 2); // skips var 1
            let _ = trial;
            assert_lineage_correct(&psi, &db);
        }
    }

    #[test]
    fn probability_matches_brute_force_exactly() {
        let mut rng = StdRng::seed_from_u64(5);
        let db = random_database(
            &DbGenConfig {
                k: 3,
                domain_size: 2,
                density: 0.7,
                prob_denominator: 10,
            },
            &mut rng,
        );
        let tid = random_tid(db, 10, &mut rng);
        // ¬h0 ∨ (h2 ∧ h3): skips variable 1.
        let psi = &!&BoolFn::var(4, 0) | &(&BoolFn::var(4, 2) & &BoolFn::var(4, 3));
        let lin = compile_degenerate_obdd(&psi, tid.database()).unwrap();
        let q = HQuery::new(psi);
        let expect = pqe_brute_force(&q, &tid).unwrap();
        assert_eq!(lin.probability_exact(&tid), expect);
        assert!((lin.probability_f64(&tid) - expect.to_f64()).abs() < 1e-12);
    }

    #[test]
    fn nondegenerate_rejected() {
        let db = complete_database(3, 2);
        let err = compile_degenerate_obdd(&intext_boolfn::phi9(), &db).unwrap_err();
        assert_eq!(err, LineageError::NotDegenerate);
    }

    #[test]
    fn vocabulary_mismatch_rejected() {
        let db = complete_database(2, 2);
        let psi = BoolFn::var(4, 0); // k = 3 function
        assert_eq!(
            compile_degenerate_obdd(&psi, &db).unwrap_err(),
            LineageError::VocabularyMismatch {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn obdd_size_grows_linearly_with_domain() {
        // Proposition 3.7's point: size is O(|D|). Doubling the domain
        // should roughly quadruple the tuple count (S relations dominate)
        // and the OBDD must follow suit, not explode.
        let psi = &BoolFn::var(3, 0) & &!&BoolFn::var(3, 2);
        let sizes: Vec<usize> = [2u32, 4, 8]
            .iter()
            .map(|&n| {
                let db = complete_database(2, n);
                compile_degenerate_obdd(&psi, &db).unwrap().size()
            })
            .collect();
        // Linear in tuple count: size(n=8)/size(n=4) ≈ tuples(8)/tuples(4) ≈ 4.
        let ratio = sizes[2] as f64 / sizes[1] as f64;
        assert!(
            ratio < 6.0,
            "sizes {sizes:?} grew superlinearly (ratio {ratio})"
        );
        // And strictly growing.
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
    }

    #[test]
    fn apply_route_matches_automaton_route() {
        // The ablation baseline computes the same function — and since
        // both land in managers with the same order, even the same
        // probabilities and sizes on every tested instance.
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..5 {
            let db = random_database(
                &DbGenConfig {
                    k: 3,
                    domain_size: 2,
                    density: 0.7,
                    prob_denominator: 9,
                },
                &mut rng,
            );
            let tid = random_tid(db, 9, &mut rng);
            let psi = &(&BoolFn::var(4, 0) ^ &BoolFn::var(4, 2)) | &BoolFn::var(4, 3);
            let a = compile_degenerate_obdd(&psi, tid.database()).unwrap();
            let b = compile_degenerate_obdd_apply(&psi, tid.database()).unwrap();
            assert_eq!(a.split, b.split, "trial {trial}");
            assert_eq!(
                a.probability_exact(&tid),
                b.probability_exact(&tid),
                "trial {trial}"
            );
            if tid.len() < 18 {
                for world in 0..(1u64 << tid.len()) {
                    assert_eq!(
                        a.manager.eval(a.root, &|v| (world >> v) & 1 == 1),
                        b.manager.eval(b.root, &|v| (world >> v) & 1 == 1),
                        "trial {trial}, world {world:#b}"
                    );
                }
            }
        }
    }

    #[test]
    fn split_compiler_shares_manager_across_functions() {
        let db = complete_database(2, 2);
        let mut compiler = SplitCompiler::new(&db, 1);
        let h0 = compiler.compile(&BoolFn::var(3, 0)).unwrap();
        let h2 = compiler.compile(&BoolFn::var(3, 2)).unwrap();
        assert_ne!(h0, h2);
        // Combining in the shared manager is now a plain apply.
        let mut manager = compiler.into_manager();
        let both = manager.and(h0, h2);
        let direct =
            compile_degenerate_obdd(&(&BoolFn::var(3, 0) & &BoolFn::var(3, 2)), &db).unwrap();
        for world in 0..(1u64 << db.len().min(20)) {
            assert_eq!(
                manager.eval(both, &|v| (world >> v) & 1 == 1),
                direct.manager.eval(direct.root, &|v| (world >> v) & 1 == 1)
            );
        }
    }

    #[test]
    fn split_compiler_rejects_dependent_functions() {
        let db = complete_database(2, 1);
        let mut compiler = SplitCompiler::new(&db, 1);
        assert_eq!(
            compiler.compile(&BoolFn::var(3, 1)).unwrap_err(),
            LineageError::NotDegenerate
        );
    }

    #[test]
    fn to_circuit_round_trip() {
        let db = complete_database(2, 1);
        let psi = BoolFn::from_sat(3, [0b000u32, 0b010]); // skips var 1
        let lin = compile_degenerate_obdd(&psi, &db).unwrap();
        let (c, root) = lin.to_circuit();
        intext_circuits::verify::check_dd(&c, root).expect("valid d-D");
        for world in 0..(1u64 << db.len()) {
            assert_eq!(
                c.eval(root, &|v| (world >> v) & 1 == 1),
                lin.manager.eval(lin.root, &|v| (world >> v) & 1 == 1)
            );
        }
    }
}
