//! Unrolling the product automaton into a reduced OBDD.

use std::fmt;

use intext_boolfn::BoolFn;
use intext_circuits::{Circuit, GateId, NodeRef, ObddManager};
use intext_numeric::BigRational;
use intext_tid::{Database, Tid, TupleId};

use crate::automaton::{self, witnesses, StreamStep};

/// Errors from the degenerate-lineage compiler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineageError {
    /// The function depends on all of its variables (Proposition 3.7
    /// needs a variable to split the vocabulary on).
    NotDegenerate,
    /// The database's `k` does not match the function's `k`.
    VocabularyMismatch {
        /// `k` expected by the function.
        expected: u8,
        /// `k` of the database.
        got: u8,
    },
}

impl fmt::Display for LineageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineageError::NotDegenerate => {
                write!(
                    f,
                    "function depends on all variables; Prop 3.7 needs a split variable"
                )
            }
            LineageError::VocabularyMismatch { expected, got } => {
                write!(f, "function is over k={expected} but database has k={got}")
            }
        }
    }
}

impl std::error::Error for LineageError {}

/// Suffix checkpoints of the backward unrolling, recorded so a later
/// single-slot presence change can resume compilation mid-stream instead
/// of replaying the whole product automaton (incremental maintenance,
/// DESIGN.md §9).
///
/// Entry `(j, v)` means: `v[state]` is the OBDD of the residual stream
/// `steps[j..]` from automaton state `state`, over the variables at
/// levels `≥ #present reads in steps[0..j]`. Checkpoints are kept at
/// every **group** reset (`2·|dom|` of them, so the gap to the next one
/// is one group — `O(k·|dom|)` reads) plus the terminal vector at
/// `steps.len()`, sorted ascending by `j`. Denser checkpoints (every
/// pair reset) would shorten the re-unrolled prefix by less than a
/// group but multiply the transplant volume by `|dom|` — measured, that
/// trade loses badly (E23).
#[derive(Clone, Debug)]
struct UnrollTrace {
    checkpoints: Vec<(u32, Vec<NodeRef>)>,
}

/// A compiled lineage: a reduced OBDD over the tuple variables of the
/// database, in the grouped order `Π_L · Π_R`.
#[derive(Debug)]
pub struct DegenerateLineage {
    /// The OBDD manager holding the lineage (order = `Π_L · Π_R`,
    /// restricted to tuples present in the database).
    pub manager: ObddManager,
    /// Root of the lineage function.
    pub root: NodeRef,
    /// The split variable `l` that was used.
    pub split: u8,
    /// Unroll checkpoints enabling [`patched`](Self::patched); `None`
    /// for lineages rebuilt from serialized bytes (the trace is not part
    /// of the on-disk format) — those fall back to recompilation.
    trace: Option<UnrollTrace>,
}

impl DegenerateLineage {
    /// Assembles a lineage from its parts without an unroll trace — the
    /// deserialization path. The result answers every query identically
    /// to a freshly compiled lineage but [`patched`](Self::patched)
    /// returns `None` (callers recompile on shape changes instead).
    pub fn new(manager: ObddManager, root: NodeRef, split: u8) -> Self {
        DegenerateLineage {
            manager,
            root,
            split,
            trace: None,
        }
    }

    /// Whether [`patched`](Self::patched) can succeed (an unroll trace
    /// was recorded at compile time).
    pub fn is_patchable(&self) -> bool {
        self.trace.is_some()
    }

    /// OBDD node count.
    pub fn size(&self) -> usize {
        self.manager.size(self.root)
    }

    /// Exact probability of the query under the TID's probabilities.
    pub fn probability_exact(&self, tid: &Tid) -> BigRational {
        self.manager
            .probability_exact(self.root, &|v| tid.prob(TupleId(v)).clone())
    }

    /// Floating-point probability.
    pub fn probability_f64(&self, tid: &Tid) -> f64 {
        self.manager
            .probability_f64(self.root, &|v| tid.prob_f64(TupleId(v)))
    }

    /// Embeds the OBDD as a d-D circuit (for template plugging).
    pub fn to_circuit(&self) -> (Circuit, GateId) {
        self.manager.to_circuit(self.root)
    }

    /// Incrementally re-compiles this lineage for `new_db`, given that it
    /// was compiled against `old_db` — the Proposition 3.7 patch path.
    ///
    /// The two databases must differ by at most one slot of the
    /// `Π_L · Π_R` stream (one tuple inserted or removed; same `k` and
    /// domain). Everything *after* the changed slot is transplanted from
    /// the recorded unroll checkpoints via
    /// [`ObddManager::copy_remapped`] — a single slot change shifts the
    /// suffix's variable levels uniformly by `−1`, `0`, or `+1` — and
    /// only the stream *prefix* up to the nearest checkpoint past the
    /// change is re-unrolled. Tuples outside the stream (the skipped
    /// unary relation at `l = 0` / `l = k`) and pure tuple-id renumbering
    /// after a removal take the remap-only fast path.
    ///
    /// Because reduced OBDDs are canonical per order and every
    /// probability walk depends only on the reduced DAG, the returned
    /// lineage answers every query **bit-identically** to a fresh
    /// `compile_degenerate_obdd(psi, new_db)`.
    ///
    /// Returns `None` when no trace was recorded (deserialized
    /// artifacts), when the shapes are incompatible, or when the
    /// databases differ in more than one stream slot — callers fall back
    /// to full recompilation.
    pub fn patched(&self, old_db: &Database, new_db: &Database) -> Option<DegenerateLineage> {
        let trace = self.trace.as_ref()?;
        if old_db.k() != new_db.k() || old_db.domain_size() != new_db.domain_size() {
            return None;
        }
        let k = old_db.k();
        let l = self.split;
        let old_steps = automaton::slot_stream(old_db, l);
        let new_steps = automaton::slot_stream(new_db, l);
        debug_assert_eq!(old_steps.len(), new_steps.len(), "same shape, same stream");
        // Defensive: `old_db` must really be the database this lineage
        // was compiled against (its present reads are the OBDD order).
        let old_order: Vec<u32> = old_steps
            .iter()
            .filter_map(|s| match s {
                StreamStep::Read { tuple: Some(t), .. } => Some(t.0),
                _ => None,
            })
            .collect();
        if old_order != self.manager.order() {
            return None;
        }
        // Locate the (at most one) slot whose presence flipped.
        let mut flipped = None;
        for (j, (o, n)) in old_steps.iter().zip(new_steps.iter()).enumerate() {
            let was = matches!(o, StreamStep::Read { tuple: Some(_), .. });
            let is = matches!(n, StreamStep::Read { tuple: Some(_), .. });
            if was != is {
                if flipped.is_some() {
                    return None; // more than one structural change
                }
                flipped = Some(j);
            }
        }
        // Resume point: the first checkpoint at or after the slot past
        // the change (0 when nothing flipped — remap-only renumbering).
        let resume_from = flipped.map_or(0, |p| p + 1);
        let ck_from = trace
            .checkpoints
            .partition_point(|(j, _)| (*j as usize) < resume_from);
        let c = trace.checkpoints.get(ck_from)?.0 as usize;

        let new_order: Vec<u32> = new_steps
            .iter()
            .filter_map(|s| match s {
                StreamStep::Read { tuple: Some(t), .. } => Some(t.0),
                _ => None,
            })
            .collect();
        let mut manager = ObddManager::new(new_order);
        // One slot flip shifts the rank of every later present read by
        // the same amount, so suffix levels translate uniformly.
        let delta = manager.order().len() as i64 - self.manager.order().len() as i64;
        debug_assert!(delta.abs() <= 1);
        let level_map = |lvl: u32| u32::try_from(i64::from(lvl) + delta).expect("level stays ≥ 0");

        // Transplant all suffix checkpoints in one shared-closure copy.
        let suffix = &trace.checkpoints[ck_from..];
        let states = suffix[0].1.len();
        let flat: Vec<NodeRef> = suffix.iter().flat_map(|(_, v)| v.iter().copied()).collect();
        let mapped = self.manager.copy_remapped(&mut manager, &level_map, &flat);
        let mut checkpoints: Vec<(u32, Vec<NodeRef>)> = suffix
            .iter()
            .zip(mapped.chunks(states))
            .map(|(&(j, _), chunk)| (j, chunk.to_vec()))
            .collect();

        // Re-unroll only the prefix before the resumed checkpoint.
        let start_level = new_steps[..c]
            .iter()
            .filter(|s| matches!(s, StreamStep::Read { tuple: Some(_), .. }))
            .count();
        let mut prefix = Vec::new();
        let cur = unroll_backward(
            &mut manager,
            &new_steps[..c],
            k,
            start_level,
            checkpoints[0].1.clone(),
            Some(&mut prefix),
        );
        let nbits = u32::from(k) + 1;
        let root = cur[encode_state(0, nbits)];
        prefix.reverse();
        prefix.append(&mut checkpoints);
        Some(DegenerateLineage {
            manager,
            root,
            split: l,
            trace: Some(UnrollTrace {
                checkpoints: prefix,
            }),
        })
    }
}

/// Compact state index → automaton state (witness bits, then `r`/`t`/
/// `prev` latches).
fn decode_state(idx: usize, nbits: u32) -> u32 {
    let idx = idx as u32;
    let mut s = idx & ((1 << nbits) - 1);
    if idx & (1 << nbits) != 0 {
        s |= automaton::R_BIT;
    }
    if idx & (1 << (nbits + 1)) != 0 {
        s |= automaton::T_BIT;
    }
    if idx & (1 << (nbits + 2)) != 0 {
        s |= automaton::PREV_BIT;
    }
    s
}

/// Automaton state → compact state index; inverse of [`decode_state`].
fn encode_state(s: u32, nbits: u32) -> usize {
    let mut idx = witnesses(s);
    if s & automaton::R_BIT != 0 {
        idx |= 1 << nbits;
    }
    if s & automaton::T_BIT != 0 {
        idx |= 1 << (nbits + 1);
    }
    if s & automaton::PREV_BIT != 0 {
        idx |= 1 << (nbits + 2);
    }
    idx as usize
}

/// The backward pass shared by full compilation and incremental
/// patching: starting from `cur` = the per-state OBDD vector for the
/// residual stream `steps[len..]` (with `start_level` present reads in
/// `steps`), processes `steps` back-to-front and returns the vector for
/// the whole of `steps`. When `checkpoints` is provided, the vector is
/// snapshotted after every *group* reset step (pushed in descending
/// step order).
fn unroll_backward(
    manager: &mut ObddManager,
    steps: &[StreamStep],
    k: u8,
    start_level: usize,
    mut cur: Vec<NodeRef>,
    mut checkpoints: Option<&mut Vec<(u32, Vec<NodeRef>)>>,
) -> Vec<NodeRef> {
    let nbits = u32::from(k) + 1;
    let total_states = cur.len();
    let mut next = vec![NodeRef::FALSE; total_states];
    let mut level = start_level;
    for (j, &step) in steps.iter().enumerate().rev() {
        match step {
            StreamStep::Read { op, tuple: Some(_) } => {
                level -= 1;
                for (idx, slot) in next.iter_mut().enumerate() {
                    let s = decode_state(idx, nbits);
                    let lo = cur[encode_state(automaton::read(s, op, false, k), nbits)];
                    let hi = cur[encode_state(automaton::read(s, op, true, k), nbits)];
                    *slot = manager.mk(level as u32, lo, hi);
                }
            }
            StreamStep::Read { op, tuple: None } => {
                for (idx, slot) in next.iter_mut().enumerate() {
                    let s = decode_state(idx, nbits);
                    *slot = cur[encode_state(automaton::read(s, op, false, k), nbits)];
                }
            }
            reset_step => {
                for (idx, slot) in next.iter_mut().enumerate() {
                    let s = decode_state(idx, nbits);
                    *slot = cur[encode_state(automaton::reset(s, reset_step), nbits)];
                }
            }
        }
        std::mem::swap(&mut cur, &mut next);
        if let Some(cks) = checkpoints.as_deref_mut() {
            if matches!(
                step,
                StreamStep::ResetLeftGroup | StreamStep::ResetRightGroup
            ) {
                cks.push((j as u32, cur.clone()));
            }
        }
    }
    debug_assert_eq!(level, 0, "every variable level consumed");
    cur
}

/// A reusable compiler for a fixed database and split variable `l`:
/// compiles any function independent of `l` into the **shared** manager
/// (same order `Π_L · Π_R`), so results can be combined with OBDD
/// operations.
pub struct SplitCompiler {
    manager: ObddManager,
    steps: Vec<StreamStep>,
    k: u8,
    l: u8,
}

impl SplitCompiler {
    /// Prepares the slot stream and variable order for split variable `l`.
    ///
    /// # Panics
    /// Panics if `l > db.k()`.
    pub fn new(db: &Database, l: u8) -> Self {
        assert!(l <= db.k(), "split variable {l} out of range");
        let steps = automaton::slot_stream(db, l);
        let order: Vec<u32> = steps
            .iter()
            .filter_map(|s| match s {
                StreamStep::Read { tuple: Some(t), .. } => Some(t.0),
                _ => None,
            })
            .collect();
        SplitCompiler {
            manager: ObddManager::new(order),
            steps,
            k: db.k(),
            l,
        }
    }

    /// The shared manager.
    pub fn manager(&self) -> &ObddManager {
        &self.manager
    }

    /// Consumes the compiler, yielding the manager.
    pub fn into_manager(self) -> ObddManager {
        self.manager
    }

    /// The split variable.
    pub fn split(&self) -> u8 {
        self.l
    }

    /// Unrolls the product automaton for `psi` (which must not depend on
    /// the split variable) into a reduced OBDD; `O(2^k · |D|)`.
    pub fn compile(&mut self, psi: &BoolFn) -> Result<NodeRef, LineageError> {
        Ok(self.compile_inner(psi, None)?[encode_state(0, u32::from(self.k) + 1)])
    }

    /// [`compile`](Self::compile), additionally recording the unroll
    /// checkpoints that make the result patchable under single-tuple
    /// updates.
    fn compile_with_trace(&mut self, psi: &BoolFn) -> Result<(NodeRef, UnrollTrace), LineageError> {
        let mut checkpoints = Vec::new();
        let cur = self.compile_inner(psi, Some(&mut checkpoints))?;
        checkpoints.reverse();
        Ok((
            cur[encode_state(0, u32::from(self.k) + 1)],
            UnrollTrace { checkpoints },
        ))
    }

    fn compile_inner(
        &mut self,
        psi: &BoolFn,
        mut checkpoints: Option<&mut Vec<(u32, Vec<NodeRef>)>>,
    ) -> Result<Vec<NodeRef>, LineageError> {
        if psi.k() != self.k {
            return Err(LineageError::VocabularyMismatch {
                expected: psi.k(),
                got: self.k,
            });
        }
        if psi.depends_on(self.l) {
            return Err(LineageError::NotDegenerate);
        }
        let k = self.k;
        let num_levels = self.manager.order().len();

        // Compact state indexing: witness bits 0..=k, then r/t/prev.
        // `cur[idx]` = OBDD of the residual stream as a function of the
        // remaining tuple variables, per automaton state — seeded with
        // the per-state terminal vector `psi(witnesses)`.
        let nbits = u32::from(k) + 1;
        let total_states = 1usize << (nbits + 3);
        let terminal: Vec<NodeRef> = (0..total_states)
            .map(|idx| {
                if psi.eval(witnesses(decode_state(idx, nbits))) {
                    NodeRef::TRUE
                } else {
                    NodeRef::FALSE
                }
            })
            .collect();
        if let Some(cks) = checkpoints.as_deref_mut() {
            cks.push((self.steps.len() as u32, terminal.clone()));
        }
        Ok(unroll_backward(
            &mut self.manager,
            &self.steps,
            k,
            num_levels,
            terminal,
            checkpoints,
        ))
    }
}

/// Compiles the lineage `Lin(Q_ψ, D)` of a degenerate `H`-query into a
/// reduced OBDD in time `O(2^k · |D|)` — linear in the database
/// (Proposition 3.7).
///
/// The split variable is any `l ∉ DEP(ψ)`; the automaton state space has
/// `2^(k+4)` states (constant in data complexity), and the backward
/// unrolling touches each stream slot once per state.
pub fn compile_degenerate_obdd(
    psi: &BoolFn,
    db: &Database,
) -> Result<DegenerateLineage, LineageError> {
    let k = psi.k();
    if db.k() != k {
        return Err(LineageError::VocabularyMismatch {
            expected: k,
            got: db.k(),
        });
    }
    let l = psi.independent_var().ok_or(LineageError::NotDegenerate)?;
    let mut compiler = SplitCompiler::new(db, l);
    let (root, trace) = compiler.compile_with_trace(psi)?;
    Ok(DegenerateLineage {
        manager: compiler.into_manager(),
        root,
        split: l,
        trace: Some(trace),
    })
}

/// Ablation baseline for Proposition 3.7: build one OBDD per `h_{k,i}`
/// (`i ≠ l`) with the automaton, then combine them under `ψ` with the
/// textbook multi-way `apply` (product construction) instead of
/// unrolling the product automaton directly. Same output function; the
/// benchmarks compare the two routes.
pub fn compile_degenerate_obdd_apply(
    psi: &BoolFn,
    db: &Database,
) -> Result<DegenerateLineage, LineageError> {
    let k = psi.k();
    if db.k() != k {
        return Err(LineageError::VocabularyMismatch {
            expected: k,
            got: db.k(),
        });
    }
    let l = psi.independent_var().ok_or(LineageError::NotDegenerate)?;
    let mut compiler = SplitCompiler::new(db, l);
    // One OBDD per h-index the function can see.
    let mut indices = Vec::new();
    let mut roots = Vec::new();
    for i in 0..=k {
        if i == l {
            continue;
        }
        indices.push(i);
        let hi = BoolFn::var(k + 1, i);
        roots.push(
            compiler
                .compile(&hi)
                .expect("h_i ignores the split variable"),
        );
    }
    let mut manager = compiler.into_manager();
    let root = manager.combine_many(&roots, &|values: &[bool]| {
        let mut mask = 0u32;
        for (pos, &i) in indices.iter().enumerate() {
            if values[pos] {
                mask |= 1 << i;
            }
        }
        psi.eval(mask)
    });
    Ok(DegenerateLineage::new(manager, root, l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_query::{pqe_brute_force, HQuery};
    use intext_tid::{complete_database, random_database, random_tid, DbGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Exhaustively compare the OBDD against the query's lineage
    /// semantics on every world.
    fn assert_lineage_correct(psi: &BoolFn, db: &Database) {
        let lin = compile_degenerate_obdd(psi, db).expect("compiles");
        let q = HQuery::new(psi.clone());
        for world in 0..(1u64 << db.len()) {
            let via_obdd = lin.manager.eval(lin.root, &|v| (world >> v) & 1 == 1);
            let via_query = q.lineage_eval(db, world);
            assert_eq!(via_obdd, via_query, "world={world:#b}");
        }
    }

    #[test]
    fn single_h_queries_compile_correctly() {
        // psi = variable i alone: Q = h_{k,i}; degenerate for k >= 1.
        let db = complete_database(2, 1);
        for i in 0..=2u8 {
            let psi = BoolFn::var(3, i);
            assert_lineage_correct(&psi, &db);
        }
    }

    #[test]
    fn boolean_combinations_compile_correctly() {
        let db = complete_database(3, 1);
        // (h0 ∧ ¬h2) ∨ h3 — does not depend on variable 1.
        let h0 = BoolFn::var(4, 0);
        let h2 = BoolFn::var(4, 2);
        let h3 = BoolFn::var(4, 3);
        let psi = &(&h0 & &!&h2) | &h3;
        assert!(psi.is_degenerate());
        assert_lineage_correct(&psi, &db);
    }

    #[test]
    fn pair_functions_compile_correctly() {
        // The fragmentation leaves: SAT(ψ) = {ν, ν ∪ {l}}.
        let db = complete_database(2, 1);
        for l in 0..=2u8 {
            for nu in 0..8u32 {
                let nu = nu & !(1 << l);
                let psi = BoolFn::from_sat(3, [nu, nu | (1 << l)]);
                assert_eq!(psi.independent_var(), Some(l));
                assert_lineage_correct(&psi, &db);
            }
        }
    }

    #[test]
    fn constants_compile() {
        let db = complete_database(2, 2);
        let bot = compile_degenerate_obdd(&BoolFn::bottom(3), &db).unwrap();
        assert_eq!(bot.root, NodeRef::FALSE);
        let top = compile_degenerate_obdd(&BoolFn::top(3), &db).unwrap();
        assert_eq!(top.root, NodeRef::TRUE);
    }

    #[test]
    fn sparse_random_databases() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..10 {
            let db = random_database(
                &DbGenConfig {
                    k: 2,
                    domain_size: 2,
                    density: 0.5,
                    prob_denominator: 10,
                },
                &mut rng,
            );
            if db.len() >= 16 {
                continue;
            }
            let psi = &BoolFn::var(3, 0) ^ &BoolFn::var(3, 2); // skips var 1
            let _ = trial;
            assert_lineage_correct(&psi, &db);
        }
    }

    #[test]
    fn probability_matches_brute_force_exactly() {
        let mut rng = StdRng::seed_from_u64(5);
        let db = random_database(
            &DbGenConfig {
                k: 3,
                domain_size: 2,
                density: 0.7,
                prob_denominator: 10,
            },
            &mut rng,
        );
        let tid = random_tid(db, 10, &mut rng);
        // ¬h0 ∨ (h2 ∧ h3): skips variable 1.
        let psi = &!&BoolFn::var(4, 0) | &(&BoolFn::var(4, 2) & &BoolFn::var(4, 3));
        let lin = compile_degenerate_obdd(&psi, tid.database()).unwrap();
        let q = HQuery::new(psi);
        let expect = pqe_brute_force(&q, &tid).unwrap();
        assert_eq!(lin.probability_exact(&tid), expect);
        assert!((lin.probability_f64(&tid) - expect.to_f64()).abs() < 1e-12);
    }

    #[test]
    fn nondegenerate_rejected() {
        let db = complete_database(3, 2);
        let err = compile_degenerate_obdd(&intext_boolfn::phi9(), &db).unwrap_err();
        assert_eq!(err, LineageError::NotDegenerate);
    }

    #[test]
    fn vocabulary_mismatch_rejected() {
        let db = complete_database(2, 2);
        let psi = BoolFn::var(4, 0); // k = 3 function
        assert_eq!(
            compile_degenerate_obdd(&psi, &db).unwrap_err(),
            LineageError::VocabularyMismatch {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn obdd_size_grows_linearly_with_domain() {
        // Proposition 3.7's point: size is O(|D|). Doubling the domain
        // should roughly quadruple the tuple count (S relations dominate)
        // and the OBDD must follow suit, not explode.
        let psi = &BoolFn::var(3, 0) & &!&BoolFn::var(3, 2);
        let sizes: Vec<usize> = [2u32, 4, 8]
            .iter()
            .map(|&n| {
                let db = complete_database(2, n);
                compile_degenerate_obdd(&psi, &db).unwrap().size()
            })
            .collect();
        // Linear in tuple count: size(n=8)/size(n=4) ≈ tuples(8)/tuples(4) ≈ 4.
        let ratio = sizes[2] as f64 / sizes[1] as f64;
        assert!(
            ratio < 6.0,
            "sizes {sizes:?} grew superlinearly (ratio {ratio})"
        );
        // And strictly growing.
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
    }

    #[test]
    fn apply_route_matches_automaton_route() {
        // The ablation baseline computes the same function — and since
        // both land in managers with the same order, even the same
        // probabilities and sizes on every tested instance.
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..5 {
            let db = random_database(
                &DbGenConfig {
                    k: 3,
                    domain_size: 2,
                    density: 0.7,
                    prob_denominator: 9,
                },
                &mut rng,
            );
            let tid = random_tid(db, 9, &mut rng);
            let psi = &(&BoolFn::var(4, 0) ^ &BoolFn::var(4, 2)) | &BoolFn::var(4, 3);
            let a = compile_degenerate_obdd(&psi, tid.database()).unwrap();
            let b = compile_degenerate_obdd_apply(&psi, tid.database()).unwrap();
            assert_eq!(a.split, b.split, "trial {trial}");
            assert_eq!(
                a.probability_exact(&tid),
                b.probability_exact(&tid),
                "trial {trial}"
            );
            if tid.len() < 18 {
                for world in 0..(1u64 << tid.len()) {
                    assert_eq!(
                        a.manager.eval(a.root, &|v| (world >> v) & 1 == 1),
                        b.manager.eval(b.root, &|v| (world >> v) & 1 == 1),
                        "trial {trial}, world {world:#b}"
                    );
                }
            }
        }
    }

    #[test]
    fn split_compiler_shares_manager_across_functions() {
        let db = complete_database(2, 2);
        let mut compiler = SplitCompiler::new(&db, 1);
        let h0 = compiler.compile(&BoolFn::var(3, 0)).unwrap();
        let h2 = compiler.compile(&BoolFn::var(3, 2)).unwrap();
        assert_ne!(h0, h2);
        // Combining in the shared manager is now a plain apply.
        let mut manager = compiler.into_manager();
        let both = manager.and(h0, h2);
        let direct =
            compile_degenerate_obdd(&(&BoolFn::var(3, 0) & &BoolFn::var(3, 2)), &db).unwrap();
        for world in 0..(1u64 << db.len().min(20)) {
            assert_eq!(
                manager.eval(both, &|v| (world >> v) & 1 == 1),
                direct.manager.eval(direct.root, &|v| (world >> v) & 1 == 1)
            );
        }
    }

    #[test]
    fn split_compiler_rejects_dependent_functions() {
        let db = complete_database(2, 1);
        let mut compiler = SplitCompiler::new(&db, 1);
        assert_eq!(
            compiler.compile(&BoolFn::var(3, 1)).unwrap_err(),
            LineageError::NotDegenerate
        );
    }

    /// The patched lineage must be **bit-identical** to a fresh compile:
    /// canonicity per order means equal reduced DAGs, and every walk
    /// depends only on the DAG — so exact probabilities are equal and
    /// f64 walks agree to the bit.
    fn assert_patch_matches_fresh(psi: &BoolFn, old_db: &Database, new_db: &Database) {
        let lin = compile_degenerate_obdd(psi, old_db).expect("compiles");
        let patched = lin.patched(old_db, new_db).expect("single-slot patch");
        let fresh = compile_degenerate_obdd(psi, new_db).expect("compiles");
        assert_eq!(patched.split, fresh.split);
        assert_eq!(patched.manager.order(), fresh.manager.order());
        for world in 0..(1u64 << new_db.len()) {
            assert_eq!(
                patched
                    .manager
                    .eval(patched.root, &|v| (world >> v) & 1 == 1),
                fresh.manager.eval(fresh.root, &|v| (world >> v) & 1 == 1),
                "world={world:#b}"
            );
        }
        let p = |v: u32| 0.05 + 0.9 * f64::from(v + 1) / f64::from(new_db.len() as u32 + 1);
        assert_eq!(
            patched.manager.probability_f64(patched.root, &p).to_bits(),
            fresh.manager.probability_f64(fresh.root, &p).to_bits(),
            "bit-identical probability walks"
        );
        assert!(patched.is_patchable(), "patches stay patchable");
    }

    #[test]
    fn patched_insert_matches_fresh_compile_everywhere() {
        // Start from a complete instance minus one tuple, insert it
        // back — for every possible missing tuple and several ψ (so the
        // flipped slot ranges over Π_L, Π_R, and out-of-stream).
        let full = complete_database(2, 2);
        let functions = [
            &BoolFn::var(3, 0) & &!&BoolFn::var(3, 2), // split l = 1
            &BoolFn::var(3, 1) ^ &BoolFn::var(3, 2),   // split l = 0: R out of stream
            &BoolFn::var(3, 0) | &BoolFn::var(3, 1),   // split l = 2: T out of stream
        ];
        for (_, missing) in full.iter() {
            let mut old_db = Database::new(2, 2);
            for (_, desc) in full.iter() {
                if desc != missing {
                    old_db.insert(desc).unwrap();
                }
            }
            let mut new_db = old_db.clone();
            new_db.insert(missing).unwrap();
            for psi in &functions {
                assert_patch_matches_fresh(psi, &old_db, &new_db);
            }
        }
    }

    #[test]
    fn patched_remove_matches_fresh_compile_everywhere() {
        // Removal also renumbers every later tuple id — the remap must
        // track both the level shift and the new order.
        let full = complete_database(2, 2);
        let functions = [
            &BoolFn::var(3, 0) & &!&BoolFn::var(3, 2),
            &BoolFn::var(3, 1) ^ &BoolFn::var(3, 2),
            &BoolFn::var(3, 0) | &BoolFn::var(3, 1),
        ];
        for (id, _) in full.iter() {
            let old_db = full.clone();
            let mut new_db = full.clone();
            new_db.remove(id).unwrap();
            for psi in &functions {
                assert_patch_matches_fresh(psi, &old_db, &new_db);
            }
        }
    }

    #[test]
    fn patched_update_streams_on_sparse_instances() {
        // Random insert/remove walks starting from sparse instances,
        // patching step over step (patch-of-patch composition).
        let mut rng = StdRng::seed_from_u64(41);
        let psi = &BoolFn::var(3, 0) ^ &BoolFn::var(3, 2); // split l = 1
        for _ in 0..5 {
            let mut db = random_database(
                &DbGenConfig {
                    k: 2,
                    domain_size: 2,
                    density: 0.4,
                    prob_denominator: 10,
                },
                &mut rng,
            );
            let mut lin = compile_degenerate_obdd(&psi, &db).unwrap();
            let all = complete_database(2, 2);
            for step in 0..6 {
                let old_db = db.clone();
                // Alternate: insert a missing tuple, then remove some tuple.
                if step % 2 == 0 {
                    let missing = all
                        .iter()
                        .map(|(_, d)| d)
                        .find(|&d| db.tuple_id(d).is_none());
                    match missing {
                        Some(d) => {
                            db.insert(d).unwrap();
                        }
                        None => continue,
                    }
                } else if db.len() > 1 {
                    db.remove(TupleId((step * 7) as u32 % db.len() as u32))
                        .unwrap();
                } else {
                    continue;
                }
                lin = lin.patched(&old_db, &db).expect("one tuple changed");
                let fresh = compile_degenerate_obdd(&psi, &db).unwrap();
                for world in 0..(1u64 << db.len()) {
                    assert_eq!(
                        lin.manager.eval(lin.root, &|v| (world >> v) & 1 == 1),
                        fresh.manager.eval(fresh.root, &|v| (world >> v) & 1 == 1),
                    );
                }
            }
        }
    }

    #[test]
    fn patched_rejects_what_it_cannot_patch() {
        let db = complete_database(2, 2);
        let psi = &BoolFn::var(3, 0) & &!&BoolFn::var(3, 2);
        let lin = compile_degenerate_obdd(&psi, &db).unwrap();
        // Two tuples removed at once: more than one slot flips.
        let mut two_gone = db.clone();
        two_gone.remove(TupleId(0)).unwrap();
        two_gone.remove(TupleId(0)).unwrap();
        assert!(lin.patched(&db, &two_gone).is_none());
        // Mismatched k or domain.
        assert!(lin.patched(&db, &complete_database(3, 2)).is_none());
        assert!(lin.patched(&db, &complete_database(2, 3)).is_none());
        // `old_db` that is not the compile-time database.
        let mut other = db.clone();
        other.remove(TupleId(3)).unwrap();
        assert!(lin.patched(&other, &db).is_none());
        // Trace-less lineages (the deserialization constructor) refuse.
        let bare = DegenerateLineage::new(
            ObddManager::new(lin.manager.order().to_vec()),
            NodeRef::FALSE,
            lin.split,
        );
        assert!(!bare.is_patchable());
        let mut one_gone = db.clone();
        one_gone.remove(TupleId(0)).unwrap();
        assert!(bare.patched(&db, &one_gone).is_none());
        // The apply-route ablation records no trace either.
        let ablation = compile_degenerate_obdd_apply(&psi, &db).unwrap();
        assert!(!ablation.is_patchable());
    }

    #[test]
    fn to_circuit_round_trip() {
        let db = complete_database(2, 1);
        let psi = BoolFn::from_sat(3, [0b000u32, 0b010]); // skips var 1
        let lin = compile_degenerate_obdd(&psi, &db).unwrap();
        let (c, root) = lin.to_circuit();
        intext_circuits::verify::check_dd(&c, root).expect("valid d-D");
        for world in 0..(1u64 << db.len()) {
            assert_eq!(
                c.eval(root, &|v| (world >> v) & 1 == 1),
                lin.manager.eval(lin.root, &|v| (world >> v) & 1 == 1)
            );
        }
    }
}
