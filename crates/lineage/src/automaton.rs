//! The product query automaton and its tuple stream.
//!
//! The automaton state packs, into one `u32`:
//! * bits `0..=k` — "`h_{k,i}` has a witness so far",
//! * bit [`R_BIT`] — `R(a)` present in the current Π_L group,
//! * bit [`T_BIT`] — `T(b)` present in the current Π_R group,
//! * bit [`PREV_BIT`] — the previously-scanned `S` tuple of the current
//!   `(a,b)` pair was present.
//!
//! Transitions are pure functions of `(state, step, present)`; resets are
//! explicit stream steps, which keeps the per-slot logic branch-free with
//! respect to group boundaries.

use intext_tid::{Database, TupleId};

/// State bit: `R(a)` latch.
pub(crate) const R_BIT: u32 = 1 << 28;
/// State bit: `T(b)` latch.
pub(crate) const T_BIT: u32 = 1 << 29;
/// State bit: previous `S` of the current pair present.
pub(crate) const PREV_BIT: u32 = 1 << 30;

/// A relational slot scanned by the automaton.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadOp {
    /// `R(a)` in the left stream.
    R,
    /// `T(b)` in the right stream.
    T,
    /// `S_i(a, b)`; `left` records which half of the order it belongs to.
    S {
        /// The relation index `i`.
        i: u8,
        /// `true` for `Π_L` slots (`i <= l`), `false` for `Π_R` (`i > l`).
        left: bool,
    },
}

/// One step of the unrolled stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamStep {
    /// Entering a new `Π_L` group (clears the `R` latch).
    ResetLeftGroup,
    /// Entering a new `Π_R` group (clears the `T` latch).
    ResetRightGroup,
    /// Entering a new `(a, b)` pair (clears the `prev` latch).
    ResetPair,
    /// Scanning a slot; `tuple` is `None` when the database has no tuple
    /// there (a forced "absent" transition that creates no OBDD node).
    Read {
        /// The slot kind.
        op: ReadOp,
        /// The database tuple occupying the slot, if any.
        tuple: Option<TupleId>,
    },
}

/// Applies a reset step to a state.
pub(crate) fn reset(state: u32, step: StreamStep) -> u32 {
    match step {
        StreamStep::ResetLeftGroup => state & !R_BIT,
        StreamStep::ResetRightGroup => state & !T_BIT,
        StreamStep::ResetPair => state & !PREV_BIT,
        StreamStep::Read { .. } => unreachable!("reset() only handles reset steps"),
    }
}

/// Applies a read transition: the automaton scans slot `op` and observes
/// whether the tuple is `present`.
pub(crate) fn read(state: u32, op: ReadOp, present: bool, k: u8) -> u32 {
    let mut s = state;
    match op {
        ReadOp::R => {
            s = if present { s | R_BIT } else { s & !R_BIT };
        }
        ReadOp::T => {
            s = if present { s | T_BIT } else { s & !T_BIT };
        }
        ReadOp::S { i, left } => {
            if present {
                if left && i == 1 && s & R_BIT != 0 {
                    s |= 1; // h_{k,0} = R ∧ S_1
                }
                if i >= 2 && s & PREV_BIT != 0 {
                    s |= 1 << (i - 1); // h_{k,i-1} = S_{i-1} ∧ S_i
                }
                if !left && i == k && s & T_BIT != 0 {
                    s |= 1 << k; // h_{k,k} = S_k ∧ T
                }
            }
            s = if present { s | PREV_BIT } else { s & !PREV_BIT };
        }
    }
    s
}

/// The witness bitmask of a final state (which `h_{k,i}` hold).
pub(crate) fn witnesses(state: u32) -> u32 {
    state & !(R_BIT | T_BIT | PREV_BIT)
}

/// Builds the full `Π_L · Π_R` stream of a database for split variable
/// `l`: all slots of the left-grouped relations `R, S_1..S_l`, then all
/// slots of the right-grouped `T, S_{l+1}..S_k`.
pub fn slot_stream(db: &Database, l: u8) -> Vec<StreamStep> {
    let k = db.k();
    debug_assert!(l <= k);
    let n = db.domain_size();
    let mut steps = Vec::new();
    // Π_L: group by first attribute.
    if l >= 1 {
        for a in 0..n {
            steps.push(StreamStep::ResetLeftGroup);
            steps.push(StreamStep::Read {
                op: ReadOp::R,
                tuple: db.r_tuple(a),
            });
            for b in 0..n {
                steps.push(StreamStep::ResetPair);
                for i in 1..=l {
                    steps.push(StreamStep::Read {
                        op: ReadOp::S { i, left: true },
                        tuple: db.s_tuple(i, a, b),
                    });
                }
            }
        }
    }
    // Π_R: group by second attribute.
    if l < k {
        for b in 0..n {
            steps.push(StreamStep::ResetRightGroup);
            steps.push(StreamStep::Read {
                op: ReadOp::T,
                tuple: db.t_tuple(b),
            });
            for a in 0..n {
                steps.push(StreamStep::ResetPair);
                for i in (l + 1)..=k {
                    steps.push(StreamStep::Read {
                        op: ReadOp::S { i, left: false },
                        tuple: db.s_tuple(i, a, b),
                    });
                }
            }
        }
    }
    steps
}

/// Runs the automaton over a stream on a *concrete world* (presence
/// bitmask over tuple ids), returning the witness mask. This is the
/// reference semantics the OBDD unrolling is validated against.
#[cfg(test)]
pub(crate) fn run_concrete(steps: &[StreamStep], k: u8, world: u64) -> u32 {
    let mut s = 0u32;
    for &step in steps {
        match step {
            StreamStep::Read { op, tuple } => {
                let present = tuple.is_some_and(|t| (world >> t.0) & 1 == 1);
                s = read(s, op, present, k);
            }
            r => s = reset(s, r),
        }
    }
    witnesses(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_query::h_witnesses;
    use intext_tid::{complete_database, random_database, DbGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Witness mask computed the slow way, directly from `h_witnesses`.
    fn expected_witnesses(db: &Database, world: u64, skip: u8) -> u32 {
        let mut mask = 0u32;
        for i in 0..=db.k() {
            if i == skip {
                continue;
            }
            let holds = h_witnesses(db, i)
                .iter()
                .any(|&(t1, t2)| (world >> t1.0) & 1 == 1 && (world >> t2.0) & 1 == 1);
            if holds {
                mask |= 1 << i;
            }
        }
        mask
    }

    #[test]
    fn automaton_tracks_all_h_queries_on_complete_db() {
        // k = 3, every split l, every world of a tiny complete database.
        let db = complete_database(3, 1); // 2 + 3 = 5 tuples
        for l in 0..=3u8 {
            let steps = slot_stream(&db, l);
            for world in 0..(1u64 << db.len()) {
                let got = run_concrete(&steps, 3, world) & !(1 << l);
                let expect = expected_witnesses(&db, world, l);
                assert_eq!(got, expect, "l={l}, world={world:#07b}");
            }
        }
    }

    #[test]
    fn automaton_on_random_sparse_databases() {
        let mut rng = StdRng::seed_from_u64(11);
        for k in 1..=4u8 {
            for trial in 0..5 {
                let db = random_database(
                    &DbGenConfig {
                        k,
                        domain_size: 2,
                        density: 0.6,
                        prob_denominator: 10,
                    },
                    &mut rng,
                );
                if db.len() >= 20 {
                    continue; // keep worlds enumerable
                }
                for l in 0..=k {
                    let steps = slot_stream(&db, l);
                    for world in 0..(1u64 << db.len()) {
                        let got = run_concrete(&steps, k, world) & !(1 << l);
                        let expect = expected_witnesses(&db, world, l);
                        assert_eq!(got, expect, "k={k} l={l} trial={trial} world={world:b}");
                    }
                }
            }
        }
    }

    #[test]
    fn stream_mentions_each_tuple_at_most_once() {
        let db = complete_database(3, 2);
        for l in 0..=3u8 {
            let steps = slot_stream(&db, l);
            let mut seen = std::collections::HashSet::new();
            for s in &steps {
                if let StreamStep::Read { tuple: Some(t), .. } = s {
                    assert!(seen.insert(*t), "tuple {t:?} twice in stream (l={l})");
                }
            }
            // With 0 < l < k every tuple is covered; at the extremes the
            // irrelevant unary relation is skipped.
            let expected = match l {
                0 => db.len() - db.domain_size() as usize, // no R slots
                _ if l == 3 => db.len() - db.domain_size() as usize, // no T slots
                _ => db.len(),
            };
            assert_eq!(seen.len(), expected, "l={l}");
        }
    }

    #[test]
    fn empty_database_stream_has_no_variables() {
        let db = Database::new(2, 2);
        let steps = slot_stream(&db, 1);
        assert!(steps
            .iter()
            .all(|s| !matches!(s, StreamStep::Read { tuple: Some(_), .. })));
        assert_eq!(run_concrete(&steps, 2, 0), 0);
    }
}
