//! Shared fixtures for the Criterion benchmark harness.
//!
//! One bench target per reproduced experiment (see `EXPERIMENTS.md`):
//!
//! | bench        | experiment | measures |
//! |--------------|------------|----------|
//! | `euler`      | Def 2.2    | Euler characteristic across k |
//! | `mobius`     | E1/E8      | CNF lattice + Möbius values |
//! | `obdd`       | E16        | Prop 3.7 lineage OBDD construction vs domain |
//! | `pipeline`   | E9         | Theorem 5.2 d-D compilation vs domain |
//! | `extensional`| E15        | lifted inference vs domain |
//! | `scaling`    | E15        | brute force vs the polynomial engines |
//! | `transform`  | E11        | `steps_to_bottom` / `steps_between` |
//! | `matching`   | E7         | perfect-matching checks on `G_V[φ]` |
//! | `conjecture` | E7         | exhaustive Conjecture 1 verification per k |
//! | `probability`| §2         | linear-time d-D probability evaluation |
//! | `engine`     | E17        | `PqeEngine` cold compile+eval vs cached re-walk |
//! | `sharding`   | E18/E19    | sharded vs sequential batch; eviction rate vs cache budget |
//! | `store`      | E20        | persistent-store warm start vs cold compile vs cache hit |
//! | `kernel`     | E21        | scalar-per-scenario vs lane-batched batch evaluation |
//! | `sampling`   | E22        | Monte-Carlo samplers: samples/sec and time-to-ε |
//! | `incremental`| E23        | patching a cached artifact vs recompiling it |
//! | `serve`      | E24        | served request throughput vs worker count × queue depth |
//! | `ucq`        | E25        | UCQ routes: lifted vs grounded vs brute across domains |

use intext_tid::{random_database, random_tid, DbGenConfig, Tid};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reproducible random TID for benchmark input.
pub fn bench_tid(k: u8, domain_size: u32, seed: u64) -> Tid {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = random_database(
        &DbGenConfig {
            k,
            domain_size,
            density: 0.8,
            prob_denominator: 10,
        },
        &mut rng,
    );
    random_tid(db, 10, &mut rng)
}

/// The domain sizes swept by the data-complexity benchmarks.
pub const DOMAIN_SWEEP: [u32; 4] = [2, 4, 8, 16];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_reproducible() {
        let a = bench_tid(3, 4, 1);
        let b = bench_tid(3, 4, 1);
        assert_eq!(a.len(), b.len());
    }
}
