//! E21: scalar-per-scenario vs lane-batched batch evaluation.
//!
//! Once an artifact is compiled and cached, the only remaining
//! per-scenario costs are the walk itself and its bookkeeping. The
//! scalar path (`evaluate_f64` in a loop) pays, per scenario: one
//! `O(|D|)` cache-key construction + hash, one values-buffer allocation,
//! and one full gate decode. The lane-batched path
//! (`evaluate_batch_f64`) groups the same-shape run once, then walks the
//! artifact in blocks of `LANES` scenarios: one gate decode and zero
//! steady-state allocations per *block*, with the per-gate arithmetic
//! auto-vectorized across lanes.
//!
//! This is an **allocation + cache-locality win, not a threading win** —
//! both contenders here run on a single core (the sharded variant is
//! E18's story). Like E18, the bench prints `threads=` so every recorded
//! number states its regime. Both artifact kinds are measured at domain
//! 16 with 1000 scenarios: `dd` (φ9's d-D circuit, ~24.5k gates) and
//! `obdd` (the degenerate h₍₃,₀₎ lineage OBDD). Bit-identity between the
//! two paths is asserted before timing; the acceptance bar (≥ 3×
//! lane-batched over scalar, recorded in `EXPERIMENTS.md`) is checked by
//! eye against the printed means.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use intext_bench::bench_tid;
use intext_boolfn::{phi9, BoolFn};
use intext_engine::PqeEngine;
use intext_numeric::BigRational;
use intext_query::HQuery;
use intext_tid::{Tid, TupleId};
use std::hint::black_box;

/// E21's workload: `count` probability scenarios over one database
/// shape, each re-weighting one tuple of the base TID.
fn scenarios(base: &Tid, count: usize) -> Vec<Tid> {
    (0..count)
        .map(|i| {
            let mut tid = base.clone();
            let tuple = TupleId((i % base.len()) as u32);
            tid.set_prob(tuple, BigRational::from_ratio(1, 2 + i as u64))
                .unwrap();
            tid
        })
        .collect()
}

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.sample_size(10);
    eprintln!(
        "  threads={} (irrelevant here: both contenders are single-core)",
        std::thread::available_parallelism().map_or(0, usize::from)
    );
    // Domain 16 per the E21 spec: the walk dwarfs per-scenario plan
    // bookkeeping, so the measured gap is the kernel's, not the planner's.
    let base = bench_tid(3, 16, 17);
    let workload = scenarios(&base, 1000);
    g.throughput(Throughput::Elements(workload.len() as u64));

    // Both artifact kinds: φ9 compiles a d-D circuit, the degenerate
    // h_{3,0} a lineage OBDD — same kernel, different walk topologies.
    let cases = [
        ("dd", HQuery::new(phi9())),
        ("obdd", HQuery::new(BoolFn::var(4, 0))),
    ];
    for (kind, q) in &cases {
        let mut engine = PqeEngine::new();
        engine.evaluate_f64(q, &base).unwrap(); // pre-warm: compile once

        // Bit-identity first: the speedup below is only meaningful if
        // the two paths return the same bits.
        let scalar: Vec<f64> = workload
            .iter()
            .map(|tid| engine.evaluate_f64(q, tid).unwrap())
            .collect();
        let lane = engine.evaluate_batch_f64(q, &workload).unwrap();
        assert_eq!(scalar, lane, "{kind}: lane kernel must be bit-identical");

        g.bench_with_input(BenchmarkId::new("scalar", kind), &workload, |b, w| {
            b.iter(|| {
                let total: f64 = w
                    .iter()
                    .map(|tid| engine.evaluate_f64(q, tid).unwrap())
                    .sum();
                black_box(total)
            });
        });
        g.bench_with_input(BenchmarkId::new("lane-batched", kind), &workload, |b, w| {
            b.iter(|| black_box(engine.evaluate_batch_f64(q, w).unwrap()));
        });
        // The whole point: neither contender recompiled after the warm-up,
        // and only the lane path invoked the kernel.
        assert_eq!(engine.stats().cache_misses, 1, "{kind}: one compile, ever");
        assert!(engine.stats().lane_kernel_calls > 0, "{kind}");
        eprintln!(
            "  kernel/{kind}: {} lane-kernel calls, walk {} ns vs compile {} ns lifetime",
            engine.stats().lane_kernel_calls,
            engine.stats().walk_nanos,
            engine.stats().compile_nanos(),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
