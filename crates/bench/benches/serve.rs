//! E24: what the serve layer costs — and buys — over calling the
//! engine directly.
//!
//! One φ9 d-D circuit, compiled once, served from one [`Server`] to
//! concurrent clients. The sweep crosses worker count {1, 2, 4} with
//! admission-queue depth {8, 64} and measures end-to-end request
//! throughput (submit → queue → worker walk → resolve) for a
//! 64-request f64 workload issued by 4 client threads, against the
//! `direct` baseline of the same 64 evaluations on a bare engine.
//!
//! What to expect: the per-request serve overhead is one queue
//! round-trip (a mutex + condvar each way) plus one read-lock probe —
//! microseconds — so at domain 8, where a cached circuit walk is itself
//! tens of microseconds, the single-worker server should sit within a
//! small factor of `direct`, and worker counts beyond the hardware
//! thread count should change nothing. On a single-thread container
//! (the printed `threads=` line says which regime the numbers are
//! from) *no* worker count can beat `direct`: the bench then measures
//! pure serving overhead, which is the honest number for admission
//! control at zero parallelism. Queue depth should be invisible in an
//! un-saturated sweep — it only matters at overload, which the
//! differential tests (not a throughput bench) pin down.
//!
//! Every response is asserted bit-identical to the baseline as the
//! bench runs, so the numbers can never come from a wrong answer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use intext_bench::bench_tid;
use intext_boolfn::phi9;
use intext_engine::PqeEngine;
use intext_query::HQuery;
use intext_serve::{ServeConfig, Server};
use std::hint::black_box;
use std::thread;

/// Requests per measured iteration (4 clients × 16 requests).
const REQUESTS: usize = 64;
const CLIENTS: usize = 4;

fn bench_serve_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");
    g.sample_size(10);
    g.throughput(Throughput::Elements(REQUESTS as u64));
    eprintln!(
        "  threads={} (a 1-thread container measures serving overhead, not parallel speedup)",
        std::thread::available_parallelism().map_or(0, usize::from)
    );

    let q = HQuery::new(phi9());
    let tid = bench_tid(3, 8, 24);

    // Baseline: the same workload against a bare engine on the calling
    // thread — no queue, no locks, no worker handoff.
    let mut engine = PqeEngine::new();
    let expected = engine.evaluate_f64(&q, &tid).unwrap().to_bits();
    g.bench_with_input(BenchmarkId::new("direct", 0), &tid, |b, tid| {
        b.iter(|| {
            for _ in 0..REQUESTS {
                let p = engine.evaluate_f64(&q, tid).unwrap();
                assert_eq!(p.to_bits(), expected);
                black_box(p);
            }
        });
    });

    for workers in [1usize, 2, 4] {
        for queue_capacity in [8usize, 64] {
            let server = Server::start(ServeConfig {
                workers,
                queue_capacity,
                ..ServeConfig::default()
            })
            .expect("default engine config is valid");
            let handle = server.handle();
            // Pre-warm: compile once, so iterations measure serving.
            handle.evaluate_f64(&q, &tid).unwrap();
            let id = BenchmarkId::new(format!("workers/{workers}"), queue_capacity);
            g.bench_with_input(id, &tid, |b, tid| {
                b.iter(|| {
                    thread::scope(|scope| {
                        for _ in 0..CLIENTS {
                            let handle = handle.clone();
                            let q = &q;
                            scope.spawn(move || {
                                for _ in 0..REQUESTS / CLIENTS {
                                    let p = handle.evaluate_f64(q, tid).unwrap();
                                    assert_eq!(p.to_bits(), expected, "served bits diverged");
                                    black_box(p);
                                }
                            });
                        }
                    });
                });
            });
            let stats = server.shutdown();
            assert_eq!(
                stats.cache_misses, 1,
                "iterations must re-walk, not recompile"
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
