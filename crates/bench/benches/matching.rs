//! E7: perfect-matching checks on `G_V[φ]` — the per-function cost of
//! the Conjecture 1 verification (`u64` fast path vs the generic
//! Hopcroft–Karp path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intext_boolfn::{max_euler_fn, phi9, phi_no_pm, small, BoolFn};
use intext_matching::{induced_has_perfect_matching, sat_has_pm};
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching");
    g.sample_size(20);
    for (name, phi) in [
        ("phi9", phi9()),
        ("phi_no_pm", phi_no_pm()),
        ("max_euler_5", max_euler_fn(6)),
    ] {
        g.bench_with_input(BenchmarkId::new("table_pm", name), &phi, |b, phi| {
            b.iter(|| black_box(sat_has_pm(phi)));
        });
    }
    // Generic graph path on the full hypercube induced subgraph.
    for n in [4u8, 5, 6] {
        let t = 0xF0F0_A5A5_C3C3_9696u64 & small::full_mask(n);
        let phi = BoolFn::from_table_u64(n, t);
        let nodes = phi.sat_vec();
        g.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &nodes, |b, nodes| {
            b.iter(|| black_box(induced_has_perfect_matching(n, nodes)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
