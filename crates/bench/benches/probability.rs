//! Section 2's tractability claim: probability computation on a d-D is
//! one linear bottom-up pass — measured on compiled `φ9` lineages of
//! growing size, in both `f64` and exact-rational arithmetic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use intext_bench::{bench_tid, DOMAIN_SWEEP};
use intext_boolfn::phi9;
use intext_core::compile_dd;
use std::hint::black_box;

fn bench_probability(c: &mut Criterion) {
    let mut g = c.benchmark_group("dd_probability");
    g.sample_size(20);
    for domain in DOMAIN_SWEEP {
        let tid = bench_tid(3, domain, 47);
        let dd = compile_dd(&phi9(), tid.database()).unwrap();
        g.throughput(Throughput::Elements(dd.stats().gates as u64));
        g.bench_with_input(BenchmarkId::new("f64", domain), &tid, |b, tid| {
            b.iter(|| black_box(dd.probability_f64(tid)));
        });
        g.bench_with_input(
            BenchmarkId::new("exact_rational", domain),
            &tid,
            |b, tid| {
                b.iter(|| black_box(dd.probability_exact(tid)));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_probability);
criterion_main!(benches);
