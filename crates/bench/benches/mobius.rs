//! CNF-lattice construction and Möbius computation (Definition 3.4,
//! Figure 2) for the paper's functions and threshold families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intext_boolfn::{phi9, threshold_fn};
use intext_lattice::{cnf_lattice, mobius_euler};
use std::hint::black_box;

fn bench_mobius(c: &mut Criterion) {
    let mut g = c.benchmark_group("mobius");
    g.sample_size(20);
    g.bench_function("phi9_cnf_lattice", |b| {
        let phi = phi9();
        b.iter(|| black_box(cnf_lattice(&phi).mobius_bottom_top()));
    });
    g.bench_function("phi9_all_three_quantities", |b| {
        let phi = phi9();
        b.iter(|| black_box(mobius_euler(&phi)));
    });
    for n in [4u8, 5, 6] {
        let phi = threshold_fn(n, u32::from(n) / 2);
        g.bench_with_input(BenchmarkId::new("threshold_lattice", n), &phi, |b, phi| {
            b.iter(|| black_box(cnf_lattice(phi).mobius_bottom_top()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mobius);
criterion_main!(benches);
