//! E23: incremental artifact maintenance — what patching buys when one
//! tuple changes under a live cached query. Four strategies around a
//! single-tuple remove/insert round trip, across domain sizes and both
//! artifact kinds — `obdd` is a degenerate ψ (`h_{3,0}` alone, a pure
//! Prop 3.7 OBDD), `dd` is φ9 (the full Thm 5.2 d-D, whose circuit
//! re-materialization is shared by patch and recompile alike):
//!
//! * `patch_update_eval` — the live-update API: every cached artifact
//!   is patched across the structural change, evaluations stay pure
//!   circuit walks, zero recompiles ever.
//! * `recompile_update_eval` — the pre-incremental discipline: the same
//!   updates applied to the instance, the cache cleared, the circuit
//!   recompiled from scratch before each evaluation.
//! * `cold_miss_eval` — the cache-miss floor: a fresh engine's first
//!   touch (classify + compile + insert + walk), for scale.
//! * `reweight_eval` — a probability-only update: no structural work at
//!   all, the walk reads the new weights (the cache key excludes
//!   probabilities).
//!
//! The issue's acceptance bar: at domain 16, `patch_update_eval` beats
//! `recompile_update_eval` by ≥ 5× for single-tuple updates (met on the
//! `obdd` artifact, where patching avoids the whole unrolling). See
//! `EXPERIMENTS.md` (E23) for measured numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intext_bench::bench_tid;
use intext_boolfn::{phi9, BoolFn};
use intext_engine::PqeEngine;
use intext_numeric::BigRational;
use intext_query::HQuery;
use intext_tid::{Tid, TupleDesc, TupleId};
use std::hint::black_box;

/// The id `R(0)` currently has (removal renumbers ids, so look it up).
fn r0(tid: &Tid) -> TupleId {
    tid.database()
        .iter()
        .find(|&(_, desc)| desc == TupleDesc::R(0))
        .expect("R(0) is part of every bench instance")
        .0
}

fn bench_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("incremental");
    g.sample_size(10);
    let queries = [
        ("obdd", HQuery::new(BoolFn::var(4, 0))),
        ("dd", HQuery::new(phi9())),
    ];

    for (kind, q) in &queries {
        for domain in [4u32, 8, 16] {
            let base = bench_tid(3, domain, 23);

            // Patch: remove R(0), evaluate, insert it back, evaluate —
            // the only compile the engine ever does is the warm-up.
            g.bench_with_input(
                BenchmarkId::new(format!("patch_update_eval_{kind}"), domain),
                &base,
                |b, base| {
                    let mut tid = base.clone();
                    let mut engine = PqeEngine::new();
                    engine.evaluate_f64(q, &tid).unwrap();
                    b.iter(|| {
                        let id = r0(&tid);
                        let (desc, p) = engine.remove_tuple(&mut tid, id).unwrap();
                        let removed = engine.evaluate_f64(q, &tid).unwrap();
                        engine.insert_tuple(&mut tid, desc, p).unwrap();
                        let restored = engine.evaluate_f64(q, &tid).unwrap();
                        black_box((removed, restored))
                    });
                    assert_eq!(
                        engine.stats().cache_misses,
                        1,
                        "the patched engine never recompiles past its warm-up"
                    );
                    // Correctness gate: the endlessly-patched artifact
                    // still answers bit-identically to a fresh compile.
                    let mut fresh = PqeEngine::new();
                    assert_eq!(
                        engine.evaluate_f64(q, &tid).unwrap().to_bits(),
                        fresh.evaluate_f64(q, &tid).unwrap().to_bits(),
                        "patched vs fresh compile, {kind} at domain {domain}"
                    );
                    let stats = engine.stats();
                    println!(
                        "incremental/{kind}: domain {domain}, {} patches in {} ns total ({} ns/patch), {} recompiles avoided",
                        stats.patches_applied,
                        stats.patch_nanos,
                        stats.patch_nanos / stats.patches_applied.max(1),
                        stats.full_recompiles_avoided,
                    );
                },
            );

            // Recompile: identical update stream, but the artifact is
            // discarded and rebuilt from scratch after every change.
            g.bench_with_input(
                BenchmarkId::new(format!("recompile_update_eval_{kind}"), domain),
                &base,
                |b, base| {
                    let mut tid = base.clone();
                    let mut engine = PqeEngine::new();
                    engine.evaluate_f64(q, &tid).unwrap();
                    b.iter(|| {
                        let id = r0(&tid);
                        let (desc, p) = tid.remove(id).unwrap();
                        engine.clear_cache();
                        let removed = engine.evaluate_f64(q, &tid).unwrap();
                        tid.insert(desc, p).unwrap();
                        engine.clear_cache();
                        let restored = engine.evaluate_f64(q, &tid).unwrap();
                        black_box((removed, restored))
                    });
                },
            );

            // Cold miss: first-touch cost of an empty cache, for scale.
            g.bench_with_input(
                BenchmarkId::new(format!("cold_miss_eval_{kind}"), domain),
                &base,
                |b, tid| {
                    b.iter(|| {
                        let mut engine = PqeEngine::new();
                        black_box(engine.evaluate_f64(q, tid).unwrap())
                    });
                },
            );

            // Reweight: a probability-only update touches no structure;
            // the cached circuit is walked under the new weights.
            g.bench_with_input(
                BenchmarkId::new(format!("reweight_eval_{kind}"), domain),
                &base,
                |b, base| {
                    let mut tid = base.clone();
                    let mut engine = PqeEngine::new();
                    engine.evaluate_f64(q, &tid).unwrap();
                    let mut flip = false;
                    b.iter(|| {
                        flip = !flip;
                        let p = BigRational::from_ratio(if flip { 1 } else { 2 }, 3);
                        engine.set_probability(&mut tid, TupleId(0), p).unwrap();
                        black_box(engine.evaluate_f64(q, &tid).unwrap())
                    });
                    assert_eq!(
                        engine.stats().patches_applied,
                        0,
                        "reweighting must not touch artifact structure"
                    );
                },
            );
        }
    }

    g.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
