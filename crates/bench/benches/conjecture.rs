//! E7: exhaustive Conjecture 1 verification per `k` (the paper's
//! Section 7 experiment; `k = 5`'s 7.8M functions run in the
//! `conjecture1` example rather than under Criterion's repetitions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intext_boolfn::enumerate;
use intext_matching::verify_conjecture1_monotone;
use std::hint::black_box;

fn bench_conjecture(c: &mut Criterion) {
    let mut g = c.benchmark_group("conjecture1");
    g.sample_size(10);
    for n in [3u8, 4, 5] {
        g.bench_with_input(
            BenchmarkId::new("verify_all_monotone_k", n - 1),
            &n,
            |b, &n| {
                b.iter(|| {
                    let rep = verify_conjecture1_monotone(n);
                    assert!(rep.holds());
                    black_box(rep.euler_zero)
                });
            },
        );
    }
    g.bench_function("enumerate_monotone_n5", |b| {
        b.iter(|| black_box(enumerate::monotone_tables(5).len()));
    });
    g.finish();
}

criterion_group!(benches, bench_conjecture);
criterion_main!(benches);
