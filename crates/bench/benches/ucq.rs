//! E25: the UCQ front door's three exact routes — Dalvi–Suciu lifted
//! inference, grounded-lineage OBDD compilation, and possible-worlds
//! brute force — on one safe and one unsafe query across the domain
//! sweep.
//!
//! The sweep itself is the measurement: lifted inference is polynomial
//! and covers every domain size; the grounded circuit is exponential in
//! the domain under the raw ascending tuple order (the R section must
//! be remembered across the S section), so the unsafe query's grounding
//! is swept only to domain 8 — at domain 16 a single compilation runs
//! for minutes; and brute force enumerates `2^|D|` worlds, so it only
//! appears where the instance stays under `BRUTE_MAX_TUPLES`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use intext_bench::{bench_tid, DOMAIN_SWEEP};
use intext_query::{
    ground_circuit_probability_f64, is_safe_ucq, lifted_probability_f64, parse_query,
    ucq_brute_force_f64,
};
use intext_tid::Vocabulary;
use std::hint::black_box;

/// Hierarchical, hence Dalvi–Suciu safe: all three routes apply.
const SAFE: &str = "R(x), S1(x,y)";
/// The paper's canonical unsafe join: lifted inference refuses it, so
/// grounding (within budget) and brute force (within budget) are the
/// only exact routes.
const UNSAFE: &str = "R(x), S1(x,y), T(y)";

/// `2^14` worlds keeps the brute-force baseline around a millisecond;
/// past that it stops being a baseline and becomes the experiment.
const BRUTE_MAX_TUPLES: usize = 14;

/// Grounding the unsafe join past this domain crosses the exponential
/// wall (OBDD width `~2^|R|`): one compile at domain 16 takes minutes.
const UNSAFE_GROUND_MAX_DOMAIN: u32 = 8;

fn bench_ucq(c: &mut Criterion) {
    let voc = Vocabulary::h(1);
    let safe = parse_query(SAFE, &voc).expect("SAFE parses");
    let safe_ucq = safe.to_ucq().expect("SAFE is a UCQ").normalize();
    assert!(is_safe_ucq(&safe_ucq), "SAFE must take the lifted route");
    let unsafe_q = parse_query(UNSAFE, &voc).expect("UNSAFE parses");
    let unsafe_ucq = unsafe_q.to_ucq().expect("UNSAFE is a UCQ").normalize();
    assert!(!is_safe_ucq(&unsafe_ucq), "UNSAFE must be refused");

    let mut g = c.benchmark_group("ucq");
    g.sample_size(10);
    for domain in DOMAIN_SWEEP {
        let tid = bench_tid(1, domain, 42);
        g.throughput(Throughput::Elements(tid.len() as u64));

        // The routes must agree before any of them is timed.
        let lifted = lifted_probability_f64(&safe_ucq, &tid).expect("safe query lifts");
        let grounded = ground_circuit_probability_f64(&safe, &tid);
        assert!(
            (lifted - grounded).abs() < 1e-9,
            "lifted {lifted} vs grounded {grounded} at domain {domain}"
        );
        assert!(
            lifted_probability_f64(&unsafe_ucq, &tid).is_none(),
            "unsafe query must not lift"
        );

        g.bench_with_input(BenchmarkId::new("safe_lifted", domain), &tid, |b, tid| {
            b.iter(|| black_box(lifted_probability_f64(&safe_ucq, tid).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("safe_grounded", domain), &tid, |b, tid| {
            b.iter(|| black_box(ground_circuit_probability_f64(&safe, tid)));
        });
        if tid.len() <= BRUTE_MAX_TUPLES {
            let brute = ucq_brute_force_f64(&safe, &tid).expect("within the world budget");
            assert!((lifted - brute).abs() < 1e-9);
            g.bench_with_input(BenchmarkId::new("safe_brute", domain), &tid, |b, tid| {
                b.iter(|| black_box(ucq_brute_force_f64(&safe, tid).unwrap()));
            });
        }
        if domain <= UNSAFE_GROUND_MAX_DOMAIN {
            let p = ground_circuit_probability_f64(&unsafe_q, &tid);
            if tid.len() <= BRUTE_MAX_TUPLES {
                let brute = ucq_brute_force_f64(&unsafe_q, &tid).expect("within the world budget");
                assert!((p - brute).abs() < 1e-9);
                g.bench_with_input(BenchmarkId::new("unsafe_brute", domain), &tid, |b, tid| {
                    b.iter(|| black_box(ucq_brute_force_f64(&unsafe_q, tid).unwrap()));
                });
            }
            g.bench_with_input(
                BenchmarkId::new("unsafe_grounded", domain),
                &tid,
                |b, tid| {
                    b.iter(|| black_box(ground_circuit_probability_f64(&unsafe_q, tid)));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_ucq);
criterion_main!(benches);
