//! E20: what warm-starting from the persistent store buys — a cold
//! evaluation (classify + compile + walk) against load-from-disk
//! (read + decode + revalidate + walk) against an in-memory cache hit
//! (pure walk), for φ9's d-D at domain 16. The gap between the last two
//! is the price of deserialization + structural revalidation; the gap
//! between the first two is what a replica *saves* by importing instead
//! of compiling. See `EXPERIMENTS.md` (E20) for measured numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intext_bench::bench_tid;
use intext_boolfn::phi9;
use intext_engine::PqeEngine;
use intext_query::HQuery;
use std::hint::black_box;

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("store");
    g.sample_size(10);
    let q = HQuery::new(phi9());
    let domain = 16;
    let tid = bench_tid(3, domain, 17);

    // Compile once, export once; the blob doubles as the on-disk file.
    let mut warm = PqeEngine::new();
    warm.evaluate_f64(&q, &tid).unwrap();
    let blob = warm.export_artifact(&q, tid.database()).unwrap();
    let dir = std::env::temp_dir().join("intext-bench-store");
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    let path = dir.join(format!("e20-domain{domain}.intx"));
    std::fs::write(&path, &blob).expect("blob is writable");
    println!(
        "store: domain {domain}, {} gates, {} bytes on disk",
        warm.cache_gates(),
        blob.len()
    );

    // Cold: a fresh engine per iteration pays the full compilation.
    g.bench_with_input(
        BenchmarkId::new("cold_compile_eval", domain),
        &tid,
        |b, tid| {
            b.iter(|| {
                let mut engine = PqeEngine::new();
                black_box(engine.evaluate_f64(&q, tid).unwrap())
            });
        },
    );

    // Load: a fresh engine per iteration reads the file, decodes and
    // revalidates the artifact, then walks it — zero compiles.
    g.bench_with_input(
        BenchmarkId::new("load_from_disk_eval", domain),
        &tid,
        |b, tid| {
            b.iter(|| {
                let bytes = std::fs::read(&path).expect("blob persisted above");
                let mut engine = PqeEngine::new();
                let report = engine.import_artifact(&bytes).unwrap();
                debug_assert_eq!(report.artifacts, 1);
                let p = engine.evaluate_f64(&q, tid).unwrap();
                debug_assert_eq!(engine.stats().cache_misses, 0);
                black_box(p)
            });
        },
    );

    // Hit: the warmed engine's steady state — one linear circuit walk.
    g.bench_with_input(
        BenchmarkId::new("cache_hit_eval", domain),
        &tid,
        |b, tid| {
            b.iter(|| black_box(warm.evaluate_f64(&q, tid).unwrap()));
        },
    );
    assert_eq!(warm.stats().cache_misses, 1, "warm engine never recompiles");

    g.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
