//! E26: durability costs — what the crash-safety contract charges per
//! update, and what recovery saves over a cold start (DESIGN.md §12).
//!
//! Two questions, four strategies around the same live-update workload
//! (a remove/insert round trip of `R(0)` under the cached pure-OBDD
//! query `h_{3,0}`, as in E23):
//!
//! * **WAL append overhead** — `patch_update` is E23's in-memory
//!   incremental floor (no durability); `patch_update_wal` adds the
//!   full durability contract per structural update: serialize the
//!   delta (`export_delta`), append + fsync it to a real write-ahead
//!   log *before* applying. The gap is the price of crash safety per
//!   update — dominated by the two fsyncs, not the codec.
//! * **Recovery vs cold compile** — `recover_N_records` rebuilds an
//!   engine from a snapshot plus an N-record WAL replay (in-memory
//!   backend: the number is decode + replay cost, no disk noise);
//!   `cold_compile` is the alternative a crash forces without
//!   durability: recompile from nothing. The acceptance shape: at
//!   domain 16, recovery (even with a replay tail) beats the cold
//!   compile it makes unnecessary.
//!
//! Every recovered engine is gated bit-identical to a fresh compile
//! before its numbers count. See `EXPERIMENTS.md` (E26).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intext_bench::bench_tid;
use intext_boolfn::BoolFn;
use intext_engine::fsio::{MemFs, StorageIo};
use intext_engine::{DurableDir, EngineConfig, PqeEngine, TupleUpdate};
use intext_query::HQuery;
use intext_tid::{Tid, TupleDesc, TupleId};
use std::hint::black_box;
use std::sync::Arc;

/// The id `R(0)` currently has (removal renumbers ids, so look it up).
fn r0(tid: &Tid) -> TupleId {
    tid.database()
        .iter()
        .find(|&(_, desc)| desc == TupleDesc::R(0))
        .expect("R(0) is part of every bench instance")
        .0
}

/// One durable structural round trip: WAL-log the remove delta, apply
/// it, WAL-log the insert delta, apply it.
fn durable_round_trip(engine: &mut PqeEngine, tid: &mut Tid, q: &HQuery, dir: &DurableDir) {
    let id = r0(tid);
    let remove = TupleUpdate::Remove { id: id.0 };
    let delta = engine.export_delta(q, tid.database(), &remove).unwrap();
    dir.log_delta(&delta).unwrap();
    let (desc, p) = engine.remove_tuple(tid, id).unwrap();
    let insert = TupleUpdate::Insert { desc };
    let delta = engine.export_delta(q, tid.database(), &insert).unwrap();
    dir.log_delta(&delta).unwrap();
    engine.insert_tuple(tid, desc, p).unwrap();
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    g.sample_size(10);
    let q = HQuery::new(BoolFn::var(4, 0));

    for domain in [4u32, 8, 16] {
        let base = bench_tid(3, domain, 23);

        // In-memory patch floor: E23's live-update discipline, nothing
        // made durable.
        g.bench_with_input(
            BenchmarkId::new("patch_update", domain),
            &base,
            |b, base| {
                let mut tid = base.clone();
                let mut engine = PqeEngine::new();
                engine.evaluate_f64(&q, &tid).unwrap();
                b.iter(|| {
                    let id = r0(&tid);
                    let (desc, p) = engine.remove_tuple(&mut tid, id).unwrap();
                    engine.insert_tuple(&mut tid, desc, p).unwrap();
                    black_box(engine.cache_len())
                });
            },
        );

        // The same patches under the durability contract, against a
        // real on-disk WAL: every structural update is serialized,
        // appended, and fsynced before it is applied.
        g.bench_with_input(
            BenchmarkId::new("patch_update_wal", domain),
            &base,
            |b, base| {
                let path = std::env::temp_dir().join(format!(
                    "intext-recovery-bench-{}-{domain}",
                    std::process::id()
                ));
                let dir = DurableDir::open(&path).unwrap();
                let mut tid = base.clone();
                let mut engine = PqeEngine::new();
                engine.evaluate_f64(&q, &tid).unwrap();
                dir.checkpoint(&engine).unwrap();
                b.iter(|| {
                    durable_round_trip(&mut engine, &mut tid, &q, &dir);
                    black_box(engine.cache_len())
                });
                std::fs::remove_dir_all(&path).unwrap();
            },
        );

        // Recovery: snapshot load + N-record WAL replay, over an
        // in-memory backend so the number is pure decode + replay cost.
        for records in [0u64, 32] {
            let mem = Arc::new(MemFs::new());
            let dir =
                DurableDir::open_with("bench", Arc::clone(&mem) as Arc<dyn StorageIo>).unwrap();
            let mut tid = base.clone();
            let mut engine = PqeEngine::new();
            engine.evaluate_f64(&q, &tid).unwrap();
            dir.checkpoint(&engine).unwrap();
            for _ in 0..records / 2 {
                durable_round_trip(&mut engine, &mut tid, &q, &dir);
            }
            // Correctness gate: the recovered engine answers
            // bit-identically to a fresh compile before it is timed.
            let (mut recovered, report) =
                PqeEngine::recover_with(EngineConfig::default(), &dir).unwrap();
            assert_eq!(report.wal_records_applied, records, "clean replay");
            assert!(report.clean(), "the bench directory is uncorrupted");
            let mut fresh = PqeEngine::new();
            assert_eq!(
                recovered.evaluate_f64(&q, &tid).unwrap().to_bits(),
                fresh.evaluate_f64(&q, &tid).unwrap().to_bits(),
                "recovered vs fresh compile at domain {domain}"
            );
            g.bench_with_input(
                BenchmarkId::new(format!("recover_{records}_records"), domain),
                &dir,
                |b, dir| {
                    b.iter(|| {
                        let (engine, report) =
                            PqeEngine::recover_with(EngineConfig::default(), dir).unwrap();
                        black_box((engine.cache_len(), report.wal_records_applied))
                    });
                },
            );
        }

        // The alternative recovery makes unnecessary: compiling the
        // artifact from nothing.
        g.bench_with_input(BenchmarkId::new("cold_compile", domain), &base, |b, tid| {
            b.iter(|| {
                let mut engine = PqeEngine::new();
                black_box(engine.evaluate_f64(&q, tid).unwrap())
            });
        });
    }

    g.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
