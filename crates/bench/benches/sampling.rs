//! E22: Monte-Carlo sampling throughput and time-to-ε in the hard
//! region.
//!
//! Past the brute-force budget the engine's hard-region story is the
//! `(ε, δ)` sampler, so the numbers that matter are (a) raw sampling
//! throughput — how many Monte-Carlo samples per second each sampler
//! draws — and (b) **time-to-ε**: the wall time one `estimate()` call
//! needs to honor a given additive-error target, which by the Hoeffding
//! bound scales as `1/ε²`. Both samplers are measured at domain 16 on
//! the same complete-database shape E17/E21 use: Karp–Luby over the
//! grounded DNF for a monotone hard `φ`, and naive world sampling
//! through the lane kernel for a non-monotone hard `φ` (which has no
//! DNF).
//!
//! The two samplers get different ε sweeps on purpose. Karp–Luby's
//! Hoeffding sample count carries the clause-mass factor `M²` (the
//! estimator's range is `[0, M]`, and `M ≈ 20` at domain 16), so its
//! per-call cost at a given ε is ~400× the naive sampler's — tight ε
//! targets would blow the CI smoke budget without changing the story.
//! The `1/ε²` law is visible at any three points of the curve.
//!
//! Determinism is asserted before timing — same seed, same bits — so
//! the measured work is identical across iterations. Criterion's
//! `Throughput::Elements` is set to the per-call sample count, so the
//! reported `elem/s` *is* samples per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use intext_bench::bench_tid;
use intext_boolfn::BoolFn;
use intext_engine::{EngineConfig, Plan, PqeEngine, SamplerKind, SamplingConfig};
use intext_query::HQuery;
use std::hint::black_box;

/// A sampling engine whose brute-force budget nothing here fits in.
fn engine(eps: f64) -> PqeEngine {
    PqeEngine::with_config(EngineConfig {
        max_brute_force_tuples: 4,
        sampling: Some(SamplingConfig {
            eps,
            delta: 1e-3,
            seed: 22,
            ..SamplingConfig::default()
        }),
        ..EngineConfig::default()
    })
}

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampling");
    g.sample_size(10);
    // Domain 16 per the E22 spec: 544 tuples, far beyond any sane
    // brute-force budget — exactly the regime sampling exists for.
    let base = bench_tid(2, 16, 22);
    let cases = [
        // Monotone hard ⟹ Karp–Luby over the grounded DNF. Looser ε
        // sweep: the M² factor in its sample count (module doc above).
        (
            SamplerKind::KarpLuby,
            "karp-luby",
            HQuery::new(BoolFn::from_fn(3, |v| v != 0)),
            [0.8, 0.6, 0.4],
        ),
        // Non-monotone hard ⟹ naive world sampling via the lane kernel.
        (
            SamplerKind::NaiveWorlds,
            "naive-worlds",
            HQuery::new(BoolFn::from_sat(3, [0b001, 0b010, 0b000])),
            [0.4, 0.2, 0.1],
        ),
    ];

    for (kind, name, q, eps_sweep) in &cases {
        // The tightest swept ε doubles as the throughput point: the
        // longest run amortizes per-call setup best.
        let tput_eps = eps_sweep[2];

        // Routing + determinism preconditions, before anything is timed.
        let mut probe = engine(tput_eps);
        assert_eq!(probe.plan(q, &base), Ok(Plan::Sample(*kind)), "{name}");
        let first = probe.estimate(q, &base).unwrap();
        let again = engine(tput_eps).estimate(q, &base).unwrap();
        assert_eq!(
            first.value.to_bits(),
            again.value.to_bits(),
            "{name}: same seed must mean same bits"
        );
        assert!(first.samples > 0, "{name}");

        // (a) Samples per second: Criterion's elem/s is the sampler's
        // throughput, since every iteration draws `samples`.
        g.throughput(Throughput::Elements(first.samples));
        g.bench_with_input(BenchmarkId::new("samples-per-sec", name), q, |b, q| {
            let mut e = engine(tput_eps);
            b.iter(|| black_box(e.estimate(q, &base).unwrap().value));
        });

        // (b) Time-to-ε: tightening the target quadruples the work per
        // halving — the printed means should show the 1/ε² law.
        for eps in *eps_sweep {
            let samples = engine(eps).estimate(q, &base).unwrap().samples;
            g.throughput(Throughput::Elements(samples));
            g.bench_with_input(
                BenchmarkId::new(format!("time-to-eps/{name}"), eps),
                q,
                |b, q| {
                    let mut e = engine(eps);
                    b.iter(|| black_box(e.estimate(q, &base).unwrap().value));
                },
            );
        }

        eprintln!(
            "  sampling/{name}: {} samples/call at ε={tput_eps}, {} ns sampler \
             time, {} lane-kernel calls",
            probe.stats().samples_drawn,
            probe.stats().sample_nanos,
            probe.stats().lane_kernel_calls,
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
