//! E15 (extensional side): lifted inference for `φ9` across domain
//! sizes — Möbius inversion plus run-factorized closed forms, PTIME.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use intext_bench::{bench_tid, DOMAIN_SWEEP};
use intext_boolfn::phi9;
use intext_extensional::{neg_h_probability, pqe_extensional};
use intext_query::HQuery;
use std::hint::black_box;

fn bench_extensional(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensional");
    g.sample_size(20);
    for domain in DOMAIN_SWEEP {
        let tid = bench_tid(3, domain, 23);
        let q = HQuery::new(phi9());
        g.throughput(Throughput::Elements(tid.len() as u64));
        g.bench_with_input(BenchmarkId::new("pqe_phi9", domain), &tid, |b, tid| {
            b.iter(|| black_box(pqe_extensional(&q, tid).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("neg_h_term", domain), &tid, |b, tid| {
            // One inclusion–exclusion term: N({0,1}) with an R-anchored run.
            b.iter(|| black_box(neg_h_probability(tid, 0b0011)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_extensional);
criterion_main!(benches);
