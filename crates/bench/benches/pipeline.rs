//! E9: the full Theorem 5.2 pipeline — fragmentation + leaf OBDDs +
//! template assembly — on `φ9`, swept over the domain size (should be
//! polynomial, the paper's headline claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use intext_bench::{bench_tid, DOMAIN_SWEEP};
use intext_boolfn::phi9;
use intext_core::{compile_dd, Fragmentation};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("dd_pipeline");
    g.sample_size(20);
    for domain in DOMAIN_SWEEP {
        let tid = bench_tid(3, domain, 11);
        g.throughput(Throughput::Elements(tid.len() as u64));
        g.bench_with_input(BenchmarkId::new("compile_phi9", domain), &tid, |b, tid| {
            b.iter(|| black_box(compile_dd(&phi9(), tid.database()).unwrap()));
        });
    }
    // Fragmentation alone (data-independent, fixed cost per φ).
    g.bench_function("fragment_phi9", |b| {
        b.iter(|| black_box(Fragmentation::of(&phi9()).unwrap()));
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
