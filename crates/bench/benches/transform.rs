//! E11: the transformation engine — `steps_to_bottom` (Proposition 5.9)
//! and `steps_between` (Proposition 6.1) across arities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intext_boolfn::{max_euler_fn, phi9, BoolFn};
use intext_core::{steps_between, steps_to_bottom, Fragmentation};
use std::hint::black_box;

fn dense_zero_euler(n: u8) -> BoolFn {
    // Half the even and half the odd valuations: a worst-ish case for
    // the number of chainkills.
    BoolFn::from_fn(n, |v| v % 4 < 2)
}

fn bench_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("transform");
    g.sample_size(20);
    g.bench_function("steps_to_bottom_phi9", |b| {
        let phi = phi9();
        b.iter(|| black_box(steps_to_bottom(&phi).unwrap()));
    });
    for n in [4u8, 5, 6] {
        let phi = dense_zero_euler(n);
        assert_eq!(phi.euler_characteristic(), 0);
        g.bench_with_input(
            BenchmarkId::new("steps_to_bottom_dense", n),
            &phi,
            |b, phi| {
                b.iter(|| black_box(steps_to_bottom(phi).unwrap()));
            },
        );
    }
    g.bench_function("steps_between_high_euler_pair", |b| {
        // Two distinct e = 6 functions (first six / last six of the eight
        // even-size valuations on four variables), connected through the
        // canonical form. (e = 2^k = 8 admits a *unique* function, so the
        // largest non-trivial class at k = 3 is e = 6.)
        let f = BoolFn::from_sat(4, [0b0000u32, 0b0011, 0b0101, 0b0110, 0b1001, 0b1010]);
        let g2 = BoolFn::from_sat(4, [0b0101u32, 0b0110, 0b1001, 0b1010, 0b1100, 0b1111]);
        assert_eq!(f.euler_characteristic(), 6);
        assert_eq!(g2.euler_characteristic(), 6);
        b.iter(|| black_box(steps_between(&f, &g2).unwrap()));
    });
    // The unique-maximum sanity fact stays checked outside the hot loop.
    assert_eq!(max_euler_fn(4).euler_characteristic(), 8);
    g.bench_function("fragmentation_phi9", |b| {
        b.iter(|| black_box(Fragmentation::of(&phi9()).unwrap()));
    });
    g.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
