//! E16: Proposition 3.7 — lineage OBDD construction for degenerate
//! `H`-queries should be linear in the database. Sweeps the domain size
//! and reports construction time (throughput = tuples).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use intext_bench::{bench_tid, DOMAIN_SWEEP};
use intext_boolfn::BoolFn;
use intext_lineage::{compile_degenerate_obdd, compile_degenerate_obdd_apply};
use std::hint::black_box;

fn bench_obdd(c: &mut Criterion) {
    let mut g = c.benchmark_group("obdd_lineage");
    g.sample_size(20);
    // ψ = (h0 ∧ ¬h2) ∨ h3, degenerate (independent of variable 1).
    let psi = {
        let h0 = BoolFn::var(4, 0);
        let h2 = BoolFn::var(4, 2);
        let h3 = BoolFn::var(4, 3);
        &(&h0 & &!&h2) | &h3
    };
    for domain in DOMAIN_SWEEP {
        let tid = bench_tid(3, domain, 7);
        g.throughput(Throughput::Elements(tid.len() as u64));
        g.bench_with_input(BenchmarkId::new("construct", domain), &tid, |b, tid| {
            b.iter(|| black_box(compile_degenerate_obdd(&psi, tid.database()).unwrap()));
        });
        // Ablation: textbook per-h OBDDs + multi-way apply instead of the
        // product-automaton unrolling (same output function).
        g.bench_with_input(
            BenchmarkId::new("construct_apply_ablation", domain),
            &tid,
            |b, tid| {
                b.iter(|| black_box(compile_degenerate_obdd_apply(&psi, tid.database()).unwrap()));
            },
        );
        let lin = compile_degenerate_obdd(&psi, tid.database()).unwrap();
        g.bench_with_input(
            BenchmarkId::new("probability_f64", domain),
            &tid,
            |b, tid| {
                b.iter(|| black_box(lin.probability_f64(tid)));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_obdd);
criterion_main!(benches);
