//! E15: the dichotomy shape — brute force (exponential in tuples)
//! against the two polynomial engines on the same inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intext_bench::bench_tid;
use intext_boolfn::phi9;
use intext_core::compile_dd;
use intext_extensional::pqe_extensional_f64;
use intext_query::{pqe_brute_force_f64, HQuery};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("dichotomy_shape");
    g.sample_size(10);
    // Brute force only fits the smallest instances.
    for domain in [1u32, 2] {
        let tid = bench_tid(3, domain, 31);
        if tid.len() > 22 {
            continue;
        }
        let q = HQuery::new(phi9());
        g.bench_with_input(BenchmarkId::new("brute_force", domain), &tid, |b, tid| {
            b.iter(|| black_box(pqe_brute_force_f64(&q, tid).unwrap()));
        });
    }
    for domain in [1u32, 2, 4, 8] {
        let tid = bench_tid(3, domain, 31);
        let q = HQuery::new(phi9());
        g.bench_with_input(BenchmarkId::new("extensional", domain), &tid, |b, tid| {
            b.iter(|| black_box(pqe_extensional_f64(&q, tid).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("intensional", domain), &tid, |b, tid| {
            b.iter(|| {
                let dd = compile_dd(&phi9(), tid.database()).unwrap();
                black_box(dd.probability_f64(tid))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
