//! Euler characteristic computation (Definition 2.2) across arities,
//! for both the bitset `BoolFn` path and the `u64` fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intext_boolfn::{small, BoolFn};
use std::hint::black_box;

fn bench_euler(c: &mut Criterion) {
    let mut g = c.benchmark_group("euler");
    g.sample_size(20);
    for n in [4u8, 6, 10, 16, 20] {
        let f = BoolFn::from_fn(n, |v| v.wrapping_mul(0x9e37_79b9) & 0b101 == 0b100);
        g.bench_with_input(BenchmarkId::new("boolfn", n), &f, |b, f| {
            b.iter(|| black_box(f.euler_characteristic()));
        });
    }
    for n in [4u8, 5, 6] {
        let t = 0x9e37_79b9_7f4a_7c15u64 & small::full_mask(n);
        g.bench_with_input(BenchmarkId::new("u64_table", n), &t, |b, &t| {
            b.iter(|| black_box(small::euler(n, t)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_euler);
criterion_main!(benches);
