//! E17: the engine's caching payoff — a cold evaluation (classify +
//! compile + walk) against a cached one (pure linear circuit walk under
//! fresh probabilities) across domain sizes, plus the amortized cost of
//! a batched re-weighting workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use intext_bench::{bench_tid, DOMAIN_SWEEP};
use intext_boolfn::phi9;
use intext_engine::PqeEngine;
use intext_query::HQuery;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    let q = HQuery::new(phi9());
    for domain in DOMAIN_SWEEP {
        let tid = bench_tid(3, domain, 17);
        g.throughput(Throughput::Elements(tid.len() as u64));
        // Cold: a fresh engine per iteration — every call pays the
        // d-D compilation before the walk.
        g.bench_with_input(BenchmarkId::new("cold", domain), &tid, |b, tid| {
            b.iter(|| {
                let mut engine = PqeEngine::new();
                black_box(engine.evaluate_f64(&q, tid).unwrap())
            });
        });
        // Cached: one engine, pre-warmed — every call is a cache hit
        // and a linear circuit walk.
        let mut warm = PqeEngine::new();
        warm.evaluate_f64(&q, &tid).unwrap();
        g.bench_with_input(BenchmarkId::new("cached_f64", domain), &tid, |b, tid| {
            b.iter(|| black_box(warm.evaluate_f64(&q, tid).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("cached_exact", domain), &tid, |b, tid| {
            b.iter(|| black_box(warm.evaluate(&q, tid).unwrap()));
        });
        assert_eq!(warm.stats().cache_misses, 1, "warm engine never recompiles");
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
