//! E18 + E19: what sharding and the bounded cache buy (and cost).
//!
//! **E18 — sharded vs sequential batch speedup.** One φ9 d-D circuit is
//! compiled once for a domain-16 database (≥ 650 tuples), then a
//! 1000-scenario re-weighting workload is evaluated sequentially
//! (`evaluate_batch`-style loop) and sharded across 1/2/4/8 workers
//! (`evaluate_batch_sharded_f64`). Every scenario is a pure linear walk
//! of the *same* `Arc`-shared circuit, so with ≥ 4 hardware threads the
//! 4-shard run is expected ≥ 2× below sequential, approaching the core
//! count as walks dominate; on fewer cores the sharded curves collapse
//! onto sequential plus a small `thread::scope` spawn overhead (≈ tens
//! of µs per batch) — the printed `threads=` line says which regime the
//! numbers were measured in.
//!
//! **E19 — eviction rate vs cache budget.** The same engine evaluates a
//! round-robin workload over four database shapes (domains 2/4/6/8)
//! under shrinking gate budgets: unbounded (every shape stays cached,
//! zero evictions), all-four-fit, two-fit, and one-fits. As the budget
//! tightens the LRU thrashes and every hit turns into a
//! recompile — the measured time per batch rises accordingly, and the
//! asserted reconciliation `cache_misses = distinct shapes +
//! post-eviction recompiles` pins the eviction counters to the compile
//! counts while `cache_gates() ≤ budget` holds throughout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use intext_bench::bench_tid;
use intext_boolfn::phi9;
use intext_engine::{EngineConfig, PqeEngine};
use intext_numeric::BigRational;
use intext_query::HQuery;
use intext_tid::{Tid, TupleId};
use std::hint::black_box;

/// E18's workload: `count` probability scenarios over one database
/// shape, each re-weighting one tuple of the base TID.
fn scenarios(base: &Tid, count: usize) -> Vec<Tid> {
    (0..count)
        .map(|i| {
            let mut tid = base.clone();
            let tuple = TupleId((i % base.len()) as u32);
            tid.set_prob(tuple, BigRational::from_ratio(1, 2 + i as u64))
                .unwrap();
            tid
        })
        .collect()
}

fn bench_sharded_speedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharding");
    g.sample_size(10);
    let q = HQuery::new(phi9());
    // Domain ≥ 16 per E18: large enough that the per-scenario circuit
    // walk dwarfs the per-scenario plan/key bookkeeping.
    let base = bench_tid(3, 16, 17);
    let workload = scenarios(&base, 1000);
    g.throughput(Throughput::Elements(workload.len() as u64));
    eprintln!(
        "  threads={} (speedup is bounded by hardware parallelism)",
        std::thread::available_parallelism().map_or(0, usize::from)
    );

    // Sequential baseline: the pre-sharding `evaluate_batch` path (one
    // compile, then one cached walk per scenario on the calling thread).
    let mut engine = PqeEngine::new();
    engine.evaluate_f64(&q, &base).unwrap(); // pre-warm: compile once
    g.bench_with_input(BenchmarkId::new("sequential", 0), &workload, |b, w| {
        b.iter(|| {
            let total: f64 = w
                .iter()
                .map(|tid| engine.evaluate_f64(&q, tid).unwrap())
                .sum();
            black_box(total)
        });
    });
    for shards in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("sharded", shards), &workload, |b, w| {
            b.iter(|| black_box(engine.evaluate_batch_sharded_f64(&q, w, shards).unwrap()));
        });
    }
    // The whole point: the batch never recompiled after the warm-up.
    assert_eq!(engine.stats().cache_misses, 1, "one compile, ever");
    g.finish();
}

fn bench_eviction_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("eviction");
    g.sample_size(10);
    let q = HQuery::new(phi9());
    // Four distinct database shapes, visited round-robin: the adversary
    // workload for an LRU (the victim is always the next shape needed).
    let shapes: Vec<Tid> = [2u32, 4, 6, 8]
        .iter()
        .map(|&d| bench_tid(3, d, 23))
        .collect();
    let workload: Vec<Tid> = (0..32).map(|i| shapes[i % shapes.len()].clone()).collect();

    // Probe per-shape artifact sizes with an unbounded engine.
    let mut probe = PqeEngine::new();
    let mut sizes = Vec::new();
    for shape in &shapes {
        let before = probe.cache_gates();
        probe.evaluate_f64(&q, shape).unwrap();
        sizes.push(probe.cache_gates() - before);
    }
    let all: usize = sizes.iter().sum();
    let two_largest: usize = sizes[sizes.len() - 2] + sizes[sizes.len() - 1];
    let largest: usize = *sizes.last().unwrap();

    for (label, budget) in [
        ("unbounded", None),
        ("all-fit", Some(all)),
        ("two-fit", Some(two_largest)),
        ("one-fits", Some(largest)),
    ] {
        let mut engine = PqeEngine::with_config(EngineConfig {
            cache_gate_budget: budget,
            ..EngineConfig::default()
        });
        g.bench_with_input(
            BenchmarkId::new(label, budget.unwrap_or(0)),
            &workload,
            |b, w| {
                b.iter(|| black_box(engine.evaluate_batch_sharded_f64(&q, w, 2).unwrap()));
            },
        );
        let stats = engine.stats().clone();
        if let Some(budget) = budget {
            assert!(engine.cache_gates() <= budget, "{label}: budget is hard");
        } else {
            assert_eq!(stats.cache_evictions, 0, "unbounded never evicts");
        }
        // Eviction counters reconcile with compile counts: every miss
        // beyond the four distinct shapes' first compiles is a
        // post-eviction recompile, and a recompile needs a prior
        // eviction of that key.
        let recompiles = stats.cache_misses - shapes.len() as u64;
        assert!(
            recompiles <= stats.cache_evictions || stats.cache_evictions == 0 && recompiles == 0,
            "{label}: {recompiles} recompiles need {} evictions",
            stats.cache_evictions
        );
        eprintln!(
            "  eviction/{label:<10} {} misses, {} evictions over {} queries",
            stats.cache_misses, stats.cache_evictions, stats.queries
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sharded_speedup, bench_eviction_rate);
criterion_main!(benches);
