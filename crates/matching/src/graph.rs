//! Bipartite graphs and maximum matching (Hopcroft–Karp).

/// A bipartite graph with `left` and `right` node sets, adjacency stored
/// from the left side.
#[derive(Clone, Debug)]
pub struct BipartiteGraph {
    left: usize,
    right: usize,
    adj: Vec<Vec<u32>>,
}

/// A maximum matching: partner of each left node (and its size).
#[derive(Clone, Debug)]
pub struct Matching {
    /// `pair_left[u] = Some(v)` iff left `u` is matched to right `v`.
    pub pair_left: Vec<Option<u32>>,
    /// Number of matched pairs.
    pub size: usize,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph with the given side sizes.
    pub fn new(left: usize, right: usize) -> Self {
        BipartiteGraph {
            left,
            right,
            adj: vec![Vec::new(); left],
        }
    }

    /// Adds an edge between left node `u` and right node `v`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.left, "left node {u} out of range");
        assert!(v < self.right, "right node {v} out of range");
        self.adj[u].push(v as u32);
    }

    /// Number of left nodes.
    pub fn left_count(&self) -> usize {
        self.left
    }

    /// Number of right nodes.
    pub fn right_count(&self) -> usize {
        self.right
    }

    /// Neighbors of a left node.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.adj[u]
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Does the graph admit a perfect matching (all nodes on *both* sides
    /// matched)?
    pub fn has_perfect_matching(&self) -> bool {
        self.left == self.right && hopcroft_karp(self).size == self.left
    }
}

const NIL: u32 = u32::MAX;

/// Maximum bipartite matching via Hopcroft–Karp: repeated BFS phases
/// building layered graphs, then DFS along shortest augmenting paths;
/// `O(E sqrt(V))`.
pub fn hopcroft_karp(g: &BipartiteGraph) -> Matching {
    let (n_left, n_right) = (g.left, g.right);
    let mut pair_u = vec![NIL; n_left];
    let mut pair_v = vec![NIL; n_right];
    let mut dist = vec![u32::MAX; n_left];
    let mut queue = std::collections::VecDeque::new();
    let mut size = 0usize;

    loop {
        // BFS phase: layer the free left nodes.
        queue.clear();
        for u in 0..n_left {
            if pair_u[u] == NIL {
                dist[u] = 0;
                queue.push_back(u as u32);
            } else {
                dist[u] = u32::MAX;
            }
        }
        let mut found_augmenting = false;
        while let Some(u) = queue.pop_front() {
            for &v in &g.adj[u as usize] {
                let w = pair_v[v as usize];
                if w == NIL {
                    found_augmenting = true;
                } else if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[u as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase along the layered graph.
        fn dfs(
            u: u32,
            g: &BipartiteGraph,
            pair_u: &mut [u32],
            pair_v: &mut [u32],
            dist: &mut [u32],
        ) -> bool {
            for i in 0..g.adj[u as usize].len() {
                let v = g.adj[u as usize][i];
                let w = pair_v[v as usize];
                let ok = if w == NIL {
                    true
                } else if dist[w as usize] == dist[u as usize] + 1 {
                    dfs(w, g, pair_u, pair_v, dist)
                } else {
                    false
                };
                if ok {
                    pair_u[u as usize] = v;
                    pair_v[v as usize] = u;
                    return true;
                }
            }
            dist[u as usize] = u32::MAX;
            false
        }
        for u in 0..n_left {
            if pair_u[u] == NIL && dfs(u as u32, g, &mut pair_u, &mut pair_v, &mut dist) {
                size += 1;
            }
        }
    }

    Matching {
        pair_left: pair_u
            .into_iter()
            .map(|v| if v == NIL { None } else { Some(v) })
            .collect(),
        size,
    }
}

/// Simple `O(V * E)` augmenting-path matcher, used as the correctness
/// oracle for Hopcroft–Karp in property tests.
pub fn max_matching_naive(g: &BipartiteGraph) -> usize {
    let mut pair_v = vec![NIL; g.right];
    fn try_augment(u: usize, g: &BipartiteGraph, pair_v: &mut [u32], visited: &mut [bool]) -> bool {
        for &v in &g.adj[u] {
            let v = v as usize;
            if visited[v] {
                continue;
            }
            visited[v] = true;
            if pair_v[v] == NIL || try_augment(pair_v[v] as usize, g, pair_v, visited) {
                pair_v[v] = u as u32;
                return true;
            }
        }
        false
    }
    let mut size = 0;
    for u in 0..g.left {
        let mut visited = vec![false; g.right];
        if try_augment(u, g, &mut pair_v, &mut visited) {
            size += 1;
        }
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_matches_nothing() {
        let g = BipartiteGraph::new(3, 3);
        assert_eq!(hopcroft_karp(&g).size, 0);
        assert!(!g.has_perfect_matching());
    }

    #[test]
    fn complete_bipartite_has_perfect_matching() {
        let mut g = BipartiteGraph::new(4, 4);
        for u in 0..4 {
            for v in 0..4 {
                g.add_edge(u, v);
            }
        }
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 4);
        assert!(g.has_perfect_matching());
        // The matching must be a bijection.
        let mut seen = std::collections::HashSet::new();
        for p in m.pair_left.iter().flatten() {
            assert!(seen.insert(*p));
        }
    }

    #[test]
    fn path_graph_matching() {
        // Path L0 - R0 - L1 - R1: maximum matching 2.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        assert_eq!(hopcroft_karp(&g).size, 2);
    }

    #[test]
    fn hall_violation_detected() {
        // Two left nodes share one right neighbor.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        assert_eq!(hopcroft_karp(&g).size, 1);
        assert!(!g.has_perfect_matching());
    }

    #[test]
    fn unbalanced_sides_never_perfect() {
        let mut g = BipartiteGraph::new(2, 3);
        for u in 0..2 {
            for v in 0..3 {
                g.add_edge(u, v);
            }
        }
        assert_eq!(hopcroft_karp(&g).size, 2);
        assert!(!g.has_perfect_matching());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_bounds_checked() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 1);
    }

    #[test]
    fn agrees_with_naive_on_random_graphs() {
        // Deterministic xorshift so the test is reproducible.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..50 {
            let left = (next() % 8 + 1) as usize;
            let right = (next() % 8 + 1) as usize;
            let mut g = BipartiteGraph::new(left, right);
            for u in 0..left {
                for v in 0..right {
                    if next() % 3 == 0 {
                        g.add_edge(u, v);
                    }
                }
            }
            assert_eq!(
                hopcroft_karp(&g).size,
                max_matching_naive(&g),
                "trial {trial}"
            );
        }
    }
}
