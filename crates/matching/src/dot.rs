//! Graphviz/DOT export of the colored valuation graph `G_V[φ]` — the
//! machine-readable counterpart of the paper's Figures 3, 5, and 7.

use intext_boolfn::{BoolFn, Valuation};

/// Renders `G_V[φ]` in DOT format: satisfying valuations filled, layers
/// ranked by valuation size (matching the paper's vertical layout).
pub fn to_dot(phi: &BoolFn) -> String {
    use std::fmt::Write as _;

    let n = phi.num_vars();
    let mut out = String::from("graph g_v_phi {\n  rankdir=BT;\n  node [shape=ellipse];\n");
    for size in 0..=u32::from(n) {
        let layer: Vec<u32> = (0..(1u32 << n))
            .filter(|v| v.count_ones() == size)
            .collect();
        write!(out, "  {{ rank=same;").expect("write to String");
        for &v in &layer {
            let style = if phi.eval(v) {
                "style=filled, fillcolor=gray70"
            } else {
                "style=solid"
            };
            write!(out, " \"{}\" [{style}];", Valuation(v)).expect("write to String");
        }
        out.push_str(" }\n");
    }
    for v in 0..(1u32 << n) {
        for l in 0..n {
            let w = v | (1 << l);
            if w != v {
                writeln!(out, "  \"{}\" -- \"{}\";", Valuation(v), Valuation(w))
                    .expect("write to String");
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::phi9;

    #[test]
    fn dot_output_is_well_formed() {
        let dot = to_dot(&phi9());
        assert!(dot.starts_with("graph g_v_phi {"));
        assert!(dot.ends_with("}\n"));
        // 16 nodes, each declared once.
        assert_eq!(dot.matches("style=").count(), 16);
        // Hypercube Q4 has 4 * 2^3 = 32 edges.
        assert_eq!(dot.matches(" -- ").count(), 32);
        // Colored count matches SAT count.
        assert_eq!(dot.matches("fillcolor=gray70").count(), 8);
    }

    #[test]
    fn dot_respects_coloring() {
        let f = BoolFn::from_sat(2, [0b00u32]);
        let dot = to_dot(&f);
        assert!(dot.contains("\"{}\" [style=filled, fillcolor=gray70]"));
        assert!(dot.contains("\"{0}\" [style=solid]"));
    }
}
