//! Conjecture 1 of the paper (Section 7): for monotone `φ` with zero
//! Euler characteristic, the colored or the non-colored side of `G_V[φ]`
//! has a perfect matching.
//!
//! The paper reports checking this with the Glucose SAT solver for all
//! monotone functions with `k <= 5` (about 20 million candidates counted
//! with isomorphic copies removed). We re-run the same verification with
//! Hopcroft–Karp-style matching directly — the conjecture literally *is* a
//! matching property — over the Dedekind enumeration of monotone
//! functions, in parallel for `k = 5` (`M(6) = 7,828,354` functions).

use intext_boolfn::{enumerate, small, BoolFn};

use crate::valuation_graph::table_pm;

/// Matching outcome for one function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conjecture1Outcome {
    /// Perfect matching on the satisfying (colored) valuations.
    pub colored_pm: bool,
    /// Perfect matching on the non-satisfying (non-colored) valuations.
    pub uncolored_pm: bool,
}

impl Conjecture1Outcome {
    /// Does the function satisfy the disjunction claimed by Conjecture 1?
    pub fn holds(&self) -> bool {
        self.colored_pm || self.uncolored_pm
    }
}

/// Checks both sides for an arbitrary function.
pub fn check_conjecture1(phi: &BoolFn) -> Conjecture1Outcome {
    Conjecture1Outcome {
        colored_pm: crate::sat_has_pm(phi),
        uncolored_pm: crate::unsat_has_pm(phi),
    }
}

fn check_table(n: u8, t: u64) -> Conjecture1Outcome {
    Conjecture1Outcome {
        colored_pm: table_pm(n, t),
        uncolored_pm: table_pm(n, !t & small::full_mask(n)),
    }
}

/// Aggregate result of an exhaustive verification run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Conjecture1Report {
    /// Monotone functions enumerated.
    pub monotone_total: u64,
    /// ... of which had zero Euler characteristic (the conjecture's scope).
    pub euler_zero: u64,
    /// Both sides had a perfect matching.
    pub both_sides: u64,
    /// Only the colored side matched.
    pub colored_only: u64,
    /// Only the non-colored side matched.
    pub uncolored_only: u64,
    /// Counterexamples to the conjecture (neither side matched).
    pub counterexamples: Vec<u64>,
}

impl Conjecture1Report {
    /// Did the conjecture survive the run?
    pub fn holds(&self) -> bool {
        self.counterexamples.is_empty()
    }
}

/// Verifies Conjecture 1 for **all** monotone functions on
/// `V = {0, ..., k}` (so `n = k + 1 <= 6` variables), in parallel across
/// the available cores for the seven-million-function `k = 5` case.
pub fn verify_conjecture1_monotone(n: u8) -> Conjecture1Report {
    let tables = enumerate::monotone_tables(n);
    let monotone_total = tables.len() as u64;
    let threads = std::thread::available_parallelism()
        .map_or(1, |c| c.get())
        .min(16);
    let chunk = tables.len().div_ceil(threads);
    let partials: Vec<Conjecture1Report> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in tables.chunks(chunk.max(1)) {
            handles.push(scope.spawn(move || {
                let mut rep = Conjecture1Report::default();
                for &t in part {
                    if small::euler(n, t) != 0 {
                        continue;
                    }
                    rep.euler_zero += 1;
                    let out = check_table(n, t);
                    match (out.colored_pm, out.uncolored_pm) {
                        (true, true) => rep.both_sides += 1,
                        (true, false) => rep.colored_only += 1,
                        (false, true) => rep.uncolored_only += 1,
                        (false, false) => rep.counterexamples.push(t),
                    }
                }
                rep
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut total = Conjecture1Report {
        monotone_total,
        ..Default::default()
    };
    for p in partials {
        total.euler_zero += p.euler_zero;
        total.both_sides += p.both_sides;
        total.colored_only += p.colored_only;
        total.uncolored_only += p.uncolored_only;
        total.counterexamples.extend(p.counterexamples);
    }
    total
}

/// Searches for the minimal monotone function (fewest satisfying
/// valuations, then smallest table) with zero Euler characteristic whose
/// **colored** side has no perfect matching — the paper's `φ_one-neg`
/// (Figure 7; the function witnessing that the "or" in Conjecture 1 is
/// necessary). Returns `None` when no such function exists on `n`
/// variables; the paper states the smallest lives at `k = 5` (`n = 6`).
pub fn find_minimal_one_neg(n: u8) -> Option<BoolFn> {
    let tables = enumerate::monotone_tables(n);
    let threads = std::thread::available_parallelism()
        .map_or(1, |c| c.get())
        .min(16);
    let chunk = tables.len().div_ceil(threads);
    let best: Option<u64> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in tables.chunks(chunk.max(1)) {
            handles.push(scope.spawn(move || {
                let mut best: Option<u64> = None;
                for &t in part {
                    if small::euler(n, t) != 0 || table_pm(n, t) {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some(b) => (t.count_ones(), t) < (b.count_ones(), b),
                    };
                    if better {
                        best = Some(t);
                    }
                }
                best
            }));
        }
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("worker panicked"))
            .min_by_key(|&t| (t.count_ones(), t))
    });
    best.map(|t| BoolFn::from_table_u64(n, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjecture_holds_exhaustively_up_to_k4() {
        // Paper Section 7: verified for k <= 5; here the fast k <= 4 part
        // (n <= 5, M(5) = 7581 functions). k = 5 runs in the
        // `conjecture1` example and the ignored test below.
        for n in 1..=5u8 {
            let rep = verify_conjecture1_monotone(n);
            assert!(
                rep.holds(),
                "counterexamples at n={n}: {:?}",
                rep.counterexamples
            );
            assert!(rep.euler_zero > 0);
        }
    }

    #[test]
    fn no_one_neg_witness_below_k5() {
        // Figure 7's function is claimed minimal at k = 5: below that,
        // every monotone e=0 function has a colored-side matching.
        for n in 1..=5u8 {
            assert!(
                find_minimal_one_neg(n).is_none(),
                "unexpected witness at n={n}"
            );
        }
    }

    #[test]
    #[ignore = "k = 5 exhaustive run (~7.8M functions); run with --release -- --ignored"]
    fn conjecture_holds_exhaustively_at_k5() {
        let rep = verify_conjecture1_monotone(6);
        assert_eq!(rep.monotone_total, enumerate::DEDEKIND[5]);
        assert!(rep.holds(), "counterexamples: {:?}", rep.counterexamples);
    }

    #[test]
    #[ignore = "k = 5 exhaustive search (~7.8M functions); run with --release -- --ignored"]
    fn one_neg_witness_exists_at_k5() {
        let f = find_minimal_one_neg(6).expect("paper: φ_one-neg exists at k = 5");
        assert!(f.is_monotone());
        assert_eq!(f.euler_characteristic(), 0);
        assert!(!crate::sat_has_pm(&f));
        assert!(
            crate::unsat_has_pm(&f),
            "Conjecture 1's other side must hold"
        );
    }

    #[test]
    fn report_accounting_adds_up() {
        let rep = verify_conjecture1_monotone(4);
        assert_eq!(
            rep.euler_zero,
            rep.both_sides
                + rep.colored_only
                + rep.uncolored_only
                + rep.counterexamples.len() as u64
        );
        assert_eq!(rep.monotone_total, enumerate::DEDEKIND[3]);
    }
}
