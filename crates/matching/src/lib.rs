//! Bipartite matching over the valuation graph `G_V[φ]`.
//!
//! Section 7 of Monet (PODS 2020) reformulates the "fewer negations"
//! question as a perfect-matching property: `φ ∼▷⁻* ⊥` iff the subgraph of
//! `G_V[φ]` induced by the *colored* (satisfying) valuations has a perfect
//! matching, and `φ ∼▷⁺* ⊤` iff the one induced by the *non-colored*
//! valuations does. Conjecture 1 asserts that for monotone `φ` with zero
//! Euler characteristic at least one of the two always holds; the paper
//! verified this with a SAT solver for `k <= 5`. The hypercube graph `G_V`
//! is bipartite (valuations split by parity of size), so we check the same
//! property with an actual matching algorithm: Hopcroft–Karp on the general
//! [`BipartiteGraph`] type, plus a compact `u64`-table fast path used by
//! the multi-million-function enumeration.

mod conjecture;
mod dot;
mod graph;
mod valuation_graph;

pub use conjecture::{
    check_conjecture1, find_minimal_one_neg, verify_conjecture1_monotone, Conjecture1Outcome,
    Conjecture1Report,
};
pub use dot::to_dot;
pub use graph::{hopcroft_karp, max_matching_naive, BipartiteGraph, Matching};
pub use valuation_graph::{
    induced_has_perfect_matching, induced_subgraph, induced_subgraph_labeled, render_colored_graph,
    sat_has_pm, unsat_has_pm,
};

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::{max_euler_fn, phi9, phi_no_pm, BoolFn};

    #[test]
    fn phi9_colored_nodes_have_a_perfect_matching() {
        // phi9 is monotone with e = 0; Conjecture 1 says one side matches.
        let out = check_conjecture1(&phi9());
        assert!(out.colored_pm || out.uncolored_pm);
        // In fact both sides match for phi9 (8 colored / 8 uncolored nodes).
        assert!(out.colored_pm);
        assert!(out.uncolored_pm);
    }

    #[test]
    fn phi_no_pm_fails_on_both_sides() {
        // Figure 5: the non-monotone witness breaks both matchings even
        // though e = 0 — justifying the two-sided transformation.
        let f = phi_no_pm();
        assert_eq!(f.euler_characteristic(), 0);
        assert!(!sat_has_pm(&f));
        assert!(!unsat_has_pm(&f));
    }

    #[test]
    fn max_euler_function_cannot_match() {
        // All-even-valuations: colored side has no odd partners at all.
        let f = max_euler_fn(4);
        assert!(!sat_has_pm(&f));
    }

    #[test]
    fn bottom_and_top_are_trivially_matched() {
        // ⊥ has an empty colored side (vacuous PM) and the full hypercube
        // as uncolored side (which has a PM); dually for ⊤.
        let bot = BoolFn::bottom(3);
        assert!(sat_has_pm(&bot));
        assert!(unsat_has_pm(&bot));
        let top = BoolFn::top(3);
        assert!(unsat_has_pm(&top));
        assert!(sat_has_pm(&top));
    }
}
