//! The valuation graph `G_V[φ]` (Definition 5.6) and induced matchings.
//!
//! `G_V` is the hypercube on all valuations of `V`, with edges between
//! valuations differing in exactly one variable; `G_V[φ]` colors the
//! satisfying valuations. The hypercube is bipartite (even-size vs
//! odd-size valuations), so induced perfect matchings reduce to bipartite
//! matching.

use intext_boolfn::{small, BoolFn, Valuation};

use crate::BipartiteGraph;

/// Builds the subgraph of `G_V` (hypercube on `n` variables) induced by
/// the given valuation set, as a bipartite graph: left = even-size
/// valuations, right = odd-size ones. Also returns the valuation labels
/// of the left and right node indices (deterministic: input order).
pub fn induced_subgraph_labeled(n: u8, nodes: &[u32]) -> (BipartiteGraph, Vec<u32>, Vec<u32>) {
    let mut left_labels = Vec::new();
    let mut right_labels = Vec::new();
    let mut right_index = std::collections::HashMap::new();
    for &v in nodes {
        if v.count_ones() % 2 == 0 {
            left_labels.push(v);
        } else {
            right_index.insert(v, right_labels.len());
            right_labels.push(v);
        }
    }
    let mut g = BipartiteGraph::new(left_labels.len(), right_labels.len());
    for (u_idx, &v) in left_labels.iter().enumerate() {
        for l in 0..n {
            let w = v ^ (1u32 << l);
            if let Some(&v_idx) = right_index.get(&w) {
                g.add_edge(u_idx, v_idx);
            }
        }
    }
    (g, left_labels, right_labels)
}

/// Unlabeled variant of [`induced_subgraph_labeled`].
pub fn induced_subgraph(n: u8, nodes: &[u32]) -> BipartiteGraph {
    induced_subgraph_labeled(n, nodes).0
}

/// Does the subgraph of `G_V` induced by `nodes` have a perfect matching?
pub fn induced_has_perfect_matching(n: u8, nodes: &[u32]) -> bool {
    let g = induced_subgraph(n, nodes);
    g.has_perfect_matching()
}

/// Does the subgraph induced by the *colored* (satisfying) valuations of
/// `phi` have a perfect matching? This is the paper's criterion for
/// `φ ∼▷⁻* ⊥` (Section 7).
pub fn sat_has_pm(phi: &BoolFn) -> bool {
    if phi.num_vars() <= 6 {
        return table_pm(phi.num_vars(), phi.table_u64());
    }
    induced_has_perfect_matching(phi.num_vars(), &phi.sat_vec())
}

/// Does the subgraph induced by the *non-colored* valuations have a
/// perfect matching? This is the criterion for `φ ∼▷⁺* ⊤`.
pub fn unsat_has_pm(phi: &BoolFn) -> bool {
    sat_has_pm(&!phi)
}

/// Fast path for `n <= 6`: perfect matching on the sub-hypercube induced
/// by the set bits of `table`, with a stack-allocated matcher.
///
/// Used raw by the enumeration experiments; exposed for benchmarks.
pub fn table_pm(n: u8, table: u64) -> bool {
    let even = table & small::EVEN_PARITY_MASK;
    let odd = table & !small::EVEN_PARITY_MASK;
    if even.count_ones() != odd.count_ones() {
        return false;
    }
    if table == 0 {
        return true;
    }
    // Augmenting-path matching; nodes are valuations 0..2^n (<= 64).
    const NONE: u8 = u8::MAX;
    let mut match_of = [NONE; 64]; // partner of each odd node
    fn augment(u: u32, n: u8, table: u64, visited: &mut u64, match_of: &mut [u8; 64]) -> bool {
        for l in 0..n {
            let v = u ^ (1u32 << l);
            if (table >> v) & 1 == 0 || (*visited >> v) & 1 == 1 {
                continue;
            }
            *visited |= 1u64 << v;
            let cur = match_of[v as usize];
            if cur == NONE || augment(u32::from(cur), n, table, visited, match_of) {
                match_of[v as usize] = u as u8;
                return true;
            }
        }
        false
    }
    let mut matched = 0u32;
    for u in 0..(1u32 << n) {
        if (even >> u) & 1 == 1 {
            let mut visited = 0u64;
            if augment(u, n, table, &mut visited, &mut match_of) {
                matched += 1;
            } else {
                return false; // an even node cannot be saturated
            }
        }
    }
    matched == even.count_ones()
}

/// Renders `G_V[φ]` layer by layer, marking satisfying valuations with
/// `●` and non-satisfying ones with `○` — the textual analogue of the
/// paper's Figures 3, 5 and 7.
pub fn render_colored_graph(phi: &BoolFn) -> String {
    use std::fmt::Write as _;

    let n = phi.num_vars();
    let mut out = String::new();
    for size in 0..=u32::from(n) {
        let row: Vec<String> = (0..(1u32 << n))
            .filter(|v| v.count_ones() == size)
            .map(|v| {
                let mark = if phi.eval(v) { "●" } else { "○" };
                format!("{mark}{}", Valuation(v))
            })
            .collect();
        writeln!(out, "|ν|={size}: {}", row.join(" ")).expect("write to String");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::phi9;

    #[test]
    fn induced_subgraph_of_full_cube() {
        let nodes: Vec<u32> = (0..8).collect();
        let g = induced_subgraph(3, &nodes);
        assert_eq!(g.left_count(), 4);
        assert_eq!(g.right_count(), 4);
        assert_eq!(g.edge_count(), 12); // hypercube Q3 edges
        assert!(g.has_perfect_matching());
    }

    #[test]
    fn table_pm_agrees_with_graph_path() {
        // Exhaustive for n = 3 (256 node sets), plus a spot check on n = 5.
        for t in 0..256u64 {
            let nodes: Vec<u32> = (0..8u32).filter(|&v| (t >> v) & 1 == 1).collect();
            assert_eq!(
                table_pm(3, t),
                induced_has_perfect_matching(3, &nodes),
                "t={t:#010b}"
            );
        }
        let t = phi9().table_u64();
        let nodes = phi9().sat_vec();
        assert_eq!(table_pm(4, t), induced_has_perfect_matching(4, &nodes));
    }

    #[test]
    fn odd_sized_sets_never_match() {
        assert!(!table_pm(3, 0b0000_0111)); // {∅, {0}, {1}}: 1 even, 2 odd
    }

    #[test]
    fn two_adjacent_nodes_match() {
        // {∅, {0}} is a single edge.
        assert!(table_pm(3, 0b0000_0011));
        // {∅, {0,1}}: same parity — no edge, no PM.
        assert!(!table_pm(3, 0b0000_1001));
    }

    #[test]
    fn render_marks_all_valuations() {
        let s = render_colored_graph(&phi9());
        assert_eq!(s.matches('●').count(), 8);
        assert_eq!(s.matches('○').count(), 8);
        assert!(s.contains("|ν|=0"));
        assert!(s.contains("|ν|=4"));
    }
}
