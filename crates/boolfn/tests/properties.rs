//! Property-based tests for the Boolean-function substrate.

use intext_boolfn::{small, BoolFn, Valuation};
use proptest::prelude::*;

/// Strategy: an arbitrary function on `n` variables as a masked u64 table.
fn table(n: u8) -> impl Strategy<Value = u64> {
    any::<u64>().prop_map(move |t| t & small::full_mask(n))
}

proptest! {
    #[test]
    fn euler_of_negation_is_opposite(t in table(5)) {
        let f = BoolFn::from_table_u64(5, t);
        prop_assert_eq!(
            (!&f).euler_characteristic(),
            -f.euler_characteristic()
        );
    }

    #[test]
    fn euler_additive_on_disjoint(t in table(5), u in table(5)) {
        let f = BoolFn::from_table_u64(5, t & !u);
        let g = BoolFn::from_table_u64(5, u & !t);
        prop_assert!(f.is_disjoint(&g));
        prop_assert_eq!(
            (&f | &g).euler_characteristic(),
            f.euler_characteristic() + g.euler_characteristic()
        );
    }

    #[test]
    fn euler_inclusion_exclusion(t in table(5), u in table(5)) {
        // e(f ∨ g) = e(f) + e(g) - e(f ∧ g) for arbitrary f, g.
        let f = BoolFn::from_table_u64(5, t);
        let g = BoolFn::from_table_u64(5, u);
        prop_assert_eq!(
            (&f | &g).euler_characteristic() + (&f & &g).euler_characteristic(),
            f.euler_characteristic() + g.euler_characteristic()
        );
    }

    #[test]
    fn euler_invariant_under_permutation(t in table(5), seed in any::<u64>()) {
        let perms = small::permutations(5);
        let perm = &perms[(seed as usize) % perms.len()];
        prop_assert_eq!(small::euler(5, t), small::euler(5, small::permute(5, t, perm)));
    }

    #[test]
    fn small_predicates_match_boolfn(t in table(6)) {
        let f = BoolFn::from_table_u64(6, t);
        prop_assert_eq!(i64::from(small::euler(6, t)), f.euler_characteristic());
        prop_assert_eq!(small::is_monotone(6, t), f.is_monotone());
        prop_assert_eq!(small::is_degenerate(6, t), f.is_degenerate());
        prop_assert_eq!(small::support(6, t), f.support());
        prop_assert_eq!(u64::from(small::sat_count(t)), f.sat_count());
    }

    #[test]
    fn cofactors_shannon_expand(t in table(4), l in 0u8..4) {
        // f = (x_l ∧ f[l:=1]) ∨ (¬x_l ∧ f[l:=0]).
        let f = BoolFn::from_table_u64(4, t);
        let x = BoolFn::var(4, l);
        let hi = &x & &f.cofactor(l, true);
        let lo = &(!&x) & &f.cofactor(l, false);
        prop_assert_eq!(&hi | &lo, f);
    }

    #[test]
    fn monotone_dnf_cnf_agree(seed in any::<u64>()) {
        // Pick a pseudo-random monotone function by upward-closing a set.
        let raw = seed & small::full_mask(4);
        let mut f = BoolFn::bottom(4);
        for v in 0..16u32 {
            if (raw >> v) & 1 == 1 {
                for sup in 0..16u32 {
                    if sup & v == v {
                        f.set(sup, true);
                    }
                }
            }
        }
        prop_assert!(f.is_monotone());
        let dnf = f.monotone_dnf();
        let cnf = f.monotone_cnf();
        for v in 0..16u32 {
            #[allow(clippy::manual_contains)] // mask inclusion, not membership
            let by_dnf = dnf.iter().any(|&c| v & c == c);
            let by_cnf = cnf.iter().all(|&c| v & c != 0);
            prop_assert_eq!(f.eval(v), by_dnf);
            prop_assert_eq!(f.eval(v), by_cnf);
        }
    }

    #[test]
    fn valuation_flip_walks_one_step(v in 0u32..32, l in 0u8..5) {
        let val = Valuation(v);
        let flipped = val.flip(l);
        prop_assert_eq!(val.distance(flipped), 1);
        prop_assert_ne!(val.sign(), flipped.sign());
    }
}
