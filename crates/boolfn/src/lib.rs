//! Boolean functions on small variable sets.
//!
//! The `H`-queries of Monet (PODS 2020) are parameterized by a Boolean
//! function `phi` on the fixed variable set `V = {0, ..., k}`; everything
//! the paper does to queries is first done to these functions: the Euler
//! characteristic (Definition 2.2), dependency and degeneracy
//! (Definition 2.1), monotonicity and minimized DNF/CNF representations
//! (Section 2), and the valuation graph underlying the transformation of
//! Section 5.
//!
//! The central type is [`BoolFn`], a complete truth table stored as a
//! bitset (one bit per valuation, valuations encoded as integer bitmasks).
//! For the exhaustive-enumeration experiments (footnote 6, Conjecture 1,
//! Theorem C.2) the companion module [`small`] offers allocation-free
//! `u64`-table versions of the hot predicates for functions on at most six
//! variables, and [`enumerate`] generates all (monotone) functions.
//!
//! Variables are numbered `0..n`. A *valuation* is a subset of variables,
//! encoded as the `u32` bitmask of its members ([`Valuation`]).

mod named;
mod valuation;

pub mod enumerate;
pub mod small;

pub use named::{
    max_euler_fn, monotone_euler_range, monotone_with_euler, phi9, phi_no_pm, threshold_fn,
};
pub use valuation::Valuation;

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A Boolean function on `n` variables, represented by its full truth
/// table (bit `v` of the table is the value on valuation `v`).
///
/// Supports up to 26 variables (a 64 MiB table); the paper's functions
/// live on `k + 1 <= 6` variables, where the table is a single word.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BoolFn {
    n: u8,
    /// `ceil(2^n / 64)` words, little-endian bit order; bits at positions
    /// `>= 2^n` (only possible in the last word when `n < 6`) are zero.
    words: Vec<u64>,
}

/// Largest supported variable count.
pub const MAX_VARS: u8 = 26;

impl BoolFn {
    /// Number of `u64` table words an `n`-variable function stores:
    /// `ceil(2^n / 64)`. Public so deserializers reading a
    /// [`words`](Self::words)-encoded table know how many words to
    /// consume without re-deriving the layout.
    pub fn word_count(n: u8) -> usize {
        if n < 6 {
            1
        } else {
            1usize << (n - 6)
        }
    }

    /// Mask selecting the valid table bits of the last word.
    fn tail_mask(n: u8) -> u64 {
        if n < 6 {
            (1u64 << (1u32 << n)) - 1
        } else {
            u64::MAX
        }
    }

    fn assert_vars(n: u8) {
        assert!(
            (1..=MAX_VARS).contains(&n),
            "variable count {n} out of range 1..={MAX_VARS}"
        );
    }

    /// The constant-false function `⊥` on `n` variables.
    pub fn bottom(n: u8) -> Self {
        Self::assert_vars(n);
        BoolFn {
            n,
            words: vec![0; Self::word_count(n)],
        }
    }

    /// The constant-true function `⊤` on `n` variables.
    pub fn top(n: u8) -> Self {
        Self::assert_vars(n);
        let mut words = vec![u64::MAX; Self::word_count(n)];
        *words.last_mut().expect("at least one word") = Self::tail_mask(n);
        BoolFn { n, words }
    }

    /// The projection function of variable `var` on `n` variables.
    pub fn var(n: u8, var: u8) -> Self {
        Self::assert_vars(n);
        assert!(
            var < n,
            "variable {var} out of range for {n}-variable function"
        );
        Self::from_fn(n, |v| v & (1 << var) != 0)
    }

    /// Builds from a predicate on valuation bitmasks.
    pub fn from_fn(n: u8, pred: impl Fn(u32) -> bool) -> Self {
        Self::assert_vars(n);
        let mut f = Self::bottom(n);
        for v in 0..(1u32 << n) {
            if pred(v) {
                f.set(v, true);
            }
        }
        f
    }

    /// Builds from an explicit set of satisfying valuations.
    pub fn from_sat<I: IntoIterator<Item = u32>>(n: u8, sat: I) -> Self {
        let mut f = Self::bottom(n);
        for v in sat {
            f.set(v, true);
        }
        f
    }

    /// Builds an `n <= 6` variable function directly from a `u64` table.
    ///
    /// # Panics
    /// Panics if `n > 6` or the table has bits beyond position `2^n`.
    pub fn from_table_u64(n: u8, table: u64) -> Self {
        Self::assert_vars(n);
        assert!(n <= 6, "from_table_u64 requires n <= 6");
        assert!(
            table & !Self::tail_mask(n) == 0,
            "table has bits beyond the 2^{n} valuations"
        );
        BoolFn {
            n,
            words: vec![table],
        }
    }

    /// The `u64` truth table of an `n <= 6` variable function.
    ///
    /// # Panics
    /// Panics if `n > 6`.
    pub fn table_u64(&self) -> u64 {
        assert!(self.n <= 6, "table_u64 requires n <= 6");
        self.words[0]
    }

    /// The raw table words (`ceil(2^n / 64)` little-endian `u64`s; unused
    /// high bits of the last word are zero). This *is* the canonical
    /// representation, so it doubles as the stable serialization of a
    /// function: `from_words(f.num_vars(), f.words().to_vec())`
    /// reconstructs `f` exactly.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a function from its [`words`](Self::words) — the
    /// non-panicking dual used by deserializers. Returns `None` when the
    /// input cannot be a valid table: `n` outside `1..=MAX_VARS`, the
    /// wrong word count, or set bits beyond the `2^n` valuations.
    pub fn from_words(n: u8, words: Vec<u64>) -> Option<Self> {
        if !(1..=MAX_VARS).contains(&n) || words.len() != Self::word_count(n) {
            return None;
        }
        if words.last().expect("word count >= 1") & !Self::tail_mask(n) != 0 {
            return None;
        }
        Some(BoolFn { n, words })
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u8 {
        self.n
    }

    /// The paper's `k` (variables are `V = {0, ..., k}`, so `k = n - 1`).
    pub fn k(&self) -> u8 {
        self.n - 1
    }

    /// Value on the valuation `v`.
    pub fn eval(&self, v: u32) -> bool {
        debug_assert!(v < (1u32 << self.n));
        (self.words[(v >> 6) as usize] >> (v & 63)) & 1 == 1
    }

    /// Sets the value on valuation `v`.
    pub fn set(&mut self, v: u32, value: bool) {
        assert!(v < (1u32 << self.n), "valuation {v:#b} out of range");
        let w = &mut self.words[(v >> 6) as usize];
        if value {
            *w |= 1u64 << (v & 63);
        } else {
            *w &= !(1u64 << (v & 63));
        }
    }

    /// Number of satisfying valuations (`#phi`).
    pub fn sat_count(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Returns `true` iff the function is `⊥`.
    pub fn is_bottom(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` iff the function is `⊤`.
    pub fn is_top(&self) -> bool {
        self.sat_count() == 1u64 << self.n
    }

    /// Iterates over the satisfying valuations in increasing bitmask order.
    pub fn sat_iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..(1u32 << self.n)).filter(move |&v| self.eval(v))
    }

    /// Collects the satisfying valuations.
    pub fn sat_vec(&self) -> Vec<u32> {
        self.sat_iter().collect()
    }

    /// The Euler characteristic `e(phi) = sum_{v |= phi} (-1)^{|v|}`
    /// (Definition 2.2).
    pub fn euler_characteristic(&self) -> i64 {
        let mut even: i64 = 0;
        let mut odd: i64 = 0;
        for (i, &w) in self.words.iter().enumerate() {
            // Parity of |v| splits as parity(word index) xor parity(bit index).
            let (e_bits, o_bits) = (w & small::EVEN_PARITY_MASK, w & !small::EVEN_PARITY_MASK);
            if (i as u32).count_ones().is_multiple_of(2) {
                even += i64::from(e_bits.count_ones());
                odd += i64::from(o_bits.count_ones());
            } else {
                even += i64::from(o_bits.count_ones());
                odd += i64::from(e_bits.count_ones());
            }
        }
        even - odd
    }

    /// Does the function depend on variable `l` (Definition 2.1)?
    pub fn depends_on(&self, l: u8) -> bool {
        assert!(l < self.n, "variable {l} out of range");
        let bit = 1u32 << l;
        for v in 0..(1u32 << self.n) {
            if v & bit == 0 && self.eval(v) != self.eval(v | bit) {
                return true;
            }
        }
        false
    }

    /// The dependency set `DEP(phi)` as a variable bitmask.
    pub fn support(&self) -> u32 {
        (0..self.n)
            .filter(|&l| self.depends_on(l))
            .map(|l| 1u32 << l)
            .sum()
    }

    /// Returns `true` iff `DEP(phi)` is a proper subset of the variables
    /// (Definition 2.1). Degenerate functions are exactly the `H`-queries
    /// in `OBDD(PTIME)` (Proposition 3.7).
    pub fn is_degenerate(&self) -> bool {
        self.support() != (1u32 << self.n) - 1
    }

    /// Returns some variable the function does not depend on, if any.
    pub fn independent_var(&self) -> Option<u8> {
        (0..self.n).find(|&l| !self.depends_on(l))
    }

    /// Is the function monotone (`v ⊆ v'` implies `phi(v) <= phi(v')`)?
    pub fn is_monotone(&self) -> bool {
        for l in 0..self.n {
            let bit = 1u32 << l;
            for v in 0..(1u32 << self.n) {
                if v & bit == 0 && self.eval(v) && !self.eval(v | bit) {
                    return false;
                }
            }
        }
        true
    }

    /// Are `self` and `other` disjoint (`phi ∧ phi' = ⊥`)?
    pub fn is_disjoint(&self, other: &BoolFn) -> bool {
        assert_eq!(self.n, other.n, "variable count mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// The cofactor `phi[l := value]`, still on `n` variables (the result
    /// no longer depends on `l`).
    pub fn cofactor(&self, l: u8, value: bool) -> BoolFn {
        assert!(l < self.n, "variable {l} out of range");
        let bit = 1u32 << l;
        Self::from_fn(self.n, |v| {
            self.eval(if value { v | bit } else { v & !bit })
        })
    }

    /// Renames variables: variable `i` of the result plays the role of
    /// variable `perm[i]` of `self`.
    pub fn permute_vars(&self, perm: &[u8]) -> BoolFn {
        assert_eq!(
            perm.len(),
            usize::from(self.n),
            "permutation length mismatch"
        );
        Self::from_fn(self.n, |v| {
            let mut mapped = 0u32;
            for (i, &p) in perm.iter().enumerate() {
                if v & (1 << i) != 0 {
                    mapped |= 1 << p;
                }
            }
            self.eval(mapped)
        })
    }

    /// The minimized DNF of a monotone function, as clauses = variable
    /// bitmasks (each clause is the conjunction of its variables); these
    /// are exactly the minimal satisfying valuations.
    ///
    /// # Panics
    /// Panics if the function is not monotone.
    pub fn monotone_dnf(&self) -> Vec<u32> {
        assert!(self.is_monotone(), "monotone_dnf on non-monotone function");
        let mut out: Vec<u32> = self
            .sat_iter()
            .filter(|&v| {
                // Minimal satisfying valuation: dropping any one element
                // falsifies (sufficient under monotonicity).
                (0..self.n).all(|l| v & (1 << l) == 0 || !self.eval(v & !(1 << l)))
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// The minimized CNF of a monotone function, as clauses = variable
    /// bitmasks (each clause is the disjunction of its variables).
    ///
    /// A maximal non-satisfying valuation `v` yields the clause `V \ v`.
    ///
    /// # Panics
    /// Panics if the function is not monotone.
    pub fn monotone_cnf(&self) -> Vec<u32> {
        assert!(self.is_monotone(), "monotone_cnf on non-monotone function");
        let full = (1u32 << self.n) - 1;
        let mut out: Vec<u32> = (0..=full)
            .filter(|&v| {
                !self.eval(v) && (0..self.n).all(|l| v & (1 << l) != 0 || self.eval(v | (1 << l)))
            })
            .map(|v| full & !v)
            .collect();
        out.sort_unstable();
        out
    }
}

impl Not for &BoolFn {
    type Output = BoolFn;

    fn not(self) -> BoolFn {
        let mut words: Vec<u64> = self.words.iter().map(|w| !w).collect();
        *words.last_mut().expect("nonempty") &= BoolFn::tail_mask(self.n);
        BoolFn { n: self.n, words }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &BoolFn {
            type Output = BoolFn;

            fn $method(self, rhs: &BoolFn) -> BoolFn {
                assert_eq!(self.n, rhs.n, "variable count mismatch");
                let words = self
                    .words
                    .iter()
                    .zip(&rhs.words)
                    .map(|(a, b)| a $op b)
                    .collect();
                BoolFn { n: self.n, words }
            }
        }
    };
}

impl_binop!(BitAnd, bitand, &);
impl_binop!(BitOr, bitor, |);
impl_binop!(BitXor, bitxor, ^);

impl fmt::Debug for BoolFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BoolFn(n={}, SAT={{", self.n)?;
        for (i, v) in self.sat_iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", Valuation(v))?;
        }
        write!(f, "}})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        let bot = BoolFn::bottom(3);
        let top = BoolFn::top(3);
        assert!(bot.is_bottom() && !bot.is_top());
        assert!(top.is_top() && !top.is_bottom());
        assert_eq!(bot.sat_count(), 0);
        assert_eq!(top.sat_count(), 8);
    }

    #[test]
    fn words_round_trip_and_reject_invalid() {
        // Small function (one word) and a 7-variable one (two words).
        for f in [phi9(), BoolFn::from_fn(7, |v| v.count_ones() % 3 == 0)] {
            let back = BoolFn::from_words(f.num_vars(), f.words().to_vec()).unwrap();
            assert_eq!(back, f);
        }
        // Wrong variable count, wrong word count, tail bits set: all None.
        assert!(BoolFn::from_words(0, vec![0]).is_none());
        assert!(BoolFn::from_words(MAX_VARS + 1, vec![0]).is_none());
        assert!(BoolFn::from_words(3, vec![0, 0]).is_none());
        assert!(BoolFn::from_words(7, vec![0]).is_none());
        assert!(
            BoolFn::from_words(3, vec![1 << 8]).is_none(),
            "bit past 2^3"
        );
        assert!(BoolFn::from_words(3, vec![0xff]).is_some());
    }

    #[test]
    fn var_projection() {
        let x1 = BoolFn::var(3, 1);
        assert!(x1.eval(0b010));
        assert!(x1.eval(0b111));
        assert!(!x1.eval(0b101));
        assert_eq!(x1.sat_count(), 4);
    }

    #[test]
    fn algebra_de_morgan() {
        let a = BoolFn::var(4, 0);
        let b = BoolFn::var(4, 2);
        let lhs = !&(&a & &b);
        let rhs = &(!&a) | &(!&b);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn tail_mask_keeps_small_tables_clean() {
        let f = BoolFn::top(2);
        assert_eq!(f.table_u64(), 0b1111);
        let g = !&f;
        assert!(g.is_bottom());
    }

    #[test]
    fn euler_characteristic_basics() {
        // e(⊤) on n vars = sum over all subsets of (-1)^|v| = 0.
        assert_eq!(BoolFn::top(4).euler_characteristic(), 0);
        assert_eq!(BoolFn::bottom(4).euler_characteristic(), 0);
        // Singleton on the empty valuation: e = +1.
        assert_eq!(BoolFn::from_sat(3, [0u32]).euler_characteristic(), 1);
        // Singleton on a size-1 valuation: e = -1.
        assert_eq!(BoolFn::from_sat(3, [0b100u32]).euler_characteristic(), -1);
    }

    #[test]
    fn euler_negation_and_disjoint_union_laws() {
        // e(¬phi) = -e(phi) (since e(⊤) = 0), and additivity on disjoint
        // functions (used by Proposition 4.6).
        let phi = phi9();
        assert_eq!((!&phi).euler_characteristic(), -phi.euler_characteristic());
        let a = BoolFn::from_sat(3, [0u32, 0b11]);
        let b = BoolFn::from_sat(3, [0b1u32, 0b111]);
        assert!(a.is_disjoint(&b));
        assert_eq!(
            (&a | &b).euler_characteristic(),
            a.euler_characteristic() + b.euler_characteristic()
        );
    }

    #[test]
    fn euler_matches_naive_on_words_boundary() {
        // Cross the 64-bit word boundary (n = 7) to exercise the word-index
        // parity logic.
        let f = BoolFn::from_fn(7, |v| v % 3 == 0);
        let naive: i64 = f
            .sat_iter()
            .map(|v| if v.count_ones() % 2 == 0 { 1 } else { -1 })
            .sum();
        assert_eq!(f.euler_characteristic(), naive);
    }

    #[test]
    fn dependency_and_degeneracy() {
        let f = BoolFn::var(4, 2);
        assert!(f.depends_on(2));
        assert!(!f.depends_on(0));
        assert_eq!(f.support(), 0b0100);
        assert!(f.is_degenerate());
        assert!(BoolFn::bottom(3).is_degenerate());
        assert_eq!(f.independent_var(), Some(0));
        assert!(!phi9().is_degenerate());
        assert_eq!(phi9().independent_var(), None);
    }

    #[test]
    fn monotonicity() {
        assert!(BoolFn::top(3).is_monotone());
        assert!(BoolFn::bottom(3).is_monotone());
        assert!(BoolFn::var(3, 1).is_monotone());
        assert!(phi9().is_monotone());
        assert!(!(!&BoolFn::var(3, 1)).is_monotone());
    }

    #[test]
    fn cofactor_removes_dependency() {
        let f = phi9();
        let g = f.cofactor(3, true);
        assert!(!g.depends_on(3));
        // phi9 with 3 := true satisfies every clause containing 3; the CNF
        // reduces to (0 ∨ 1 ∨ 2).
        for v in 0..16u32 {
            assert_eq!(g.eval(v), v & 0b0111 != 0, "v={v:#b}");
        }
    }

    #[test]
    fn permute_vars_round_trip() {
        let f = phi9();
        let perm = [2u8, 0, 3, 1];
        let mut inv = [0u8; 4];
        for (i, &p) in perm.iter().enumerate() {
            inv[usize::from(p)] = i as u8;
        }
        assert_eq!(f.permute_vars(&perm).permute_vars(&inv), f);
    }

    #[test]
    fn phi9_normal_forms_match_paper() {
        // Example 3.3: phi9 = (2∨3) ∧ (0∨3) ∧ (1∨3) ∧ (0∨1∨2).
        let cnf = phi9().monotone_cnf();
        assert_eq!(cnf, vec![0b0111, 0b1001, 0b1010, 0b1100]);
        // The minimized DNF of phi9 happens to use the same clause sets.
        let dnf = phi9().monotone_dnf();
        assert_eq!(dnf, vec![0b0111, 0b1001, 0b1010, 0b1100]);
    }

    #[test]
    fn dnf_cnf_evaluate_back_to_function() {
        for f in [phi9(), BoolFn::var(4, 1), threshold_fn(4, 2)] {
            let dnf = f.monotone_dnf();
            #[allow(clippy::manual_contains)] // mask inclusion, not membership
            let from_dnf = BoolFn::from_fn(4, |v| dnf.iter().any(|&c| v & c == c));
            assert_eq!(from_dnf, f, "DNF round trip");
            let cnf = f.monotone_cnf();
            let from_cnf = BoolFn::from_fn(4, |v| cnf.iter().all(|&c| v & c != 0));
            assert_eq!(from_cnf, f, "CNF round trip");
        }
    }

    #[test]
    fn phi9_sat_set_matches_example_4_3() {
        // Example 4.3 lists SAT(phi9) via the four disjoint pieces
        // 0∧¬2∧3, ¬1∧2∧3, ¬0∧1∧3, 0∧1∧2.
        let mut expect: Vec<u32> = vec![
            0b1001, 0b1011, // 0∧¬2∧3 : {0,3}, {0,1,3}
            0b1100, 0b1101, // ¬1∧2∧3 : {2,3}, {0,2,3}
            0b1010, 0b1110, // ¬0∧1∧3 : {1,3}, {1,2,3}
            0b0111, 0b1111, // 0∧1∧2  : {0,1,2}, {0,1,2,3}
        ];
        expect.sort_unstable();
        assert_eq!(phi9().sat_vec(), expect);
        assert_eq!(phi9().euler_characteristic(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_vars_rejected() {
        let _ = BoolFn::bottom(27);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mixed_arity_ops_rejected() {
        let _ = &BoolFn::top(3) & &BoolFn::top(4);
    }
}
