//! Allocation-free predicates on Boolean functions of at most 6 variables.
//!
//! The exhaustive experiments (footnote 6 count, Conjecture 1 for `k <= 5`,
//! Theorem C.2) iterate over millions of functions; building a [`BoolFn`]
//! per candidate would dominate the running time. A function on `n <= 6`
//! variables is a single `u64` truth table (bit `v` = value on valuation
//! `v`), and all the hot predicates are bit-parallel.
//!
//! [`BoolFn`]: crate::BoolFn

/// Bit `p` is set iff `popcount(p)` is even; splits a truth-table word
/// into even-size and odd-size valuations.
pub const EVEN_PARITY_MASK: u64 = {
    let mut m = 0u64;
    let mut p = 0u32;
    while p < 64 {
        if p.count_ones().is_multiple_of(2) {
            m |= 1u64 << p;
        }
        p += 1;
    }
    m
};

/// `LOW_MASK[l]`: bit `p` set iff valuation `p` does not contain
/// variable `l` (the classic "magic masks").
const LOW_MASK: [u64; 6] = [
    0x5555_5555_5555_5555,
    0x3333_3333_3333_3333,
    0x0f0f_0f0f_0f0f_0f0f,
    0x00ff_00ff_00ff_00ff,
    0x0000_ffff_0000_ffff,
    0x0000_0000_ffff_ffff,
];

fn assert_small(n: u8) {
    assert!(
        (1..=6).contains(&n),
        "small-table helpers require 1 <= n <= 6, got {n}"
    );
}

/// Mask of the `2^n` valid table bits.
pub fn full_mask(n: u8) -> u64 {
    assert_small(n);
    if n == 6 {
        u64::MAX
    } else {
        (1u64 << (1u32 << n)) - 1
    }
}

/// Number of satisfying valuations.
pub fn sat_count(table: u64) -> u32 {
    table.count_ones()
}

/// Euler characteristic `e(phi)` of the table (Definition 2.2).
pub fn euler(n: u8, table: u64) -> i32 {
    debug_assert!(table & !full_mask(n) == 0);
    let even = (table & EVEN_PARITY_MASK).count_ones() as i32;
    let odd = (table & !EVEN_PARITY_MASK).count_ones() as i32;
    even - odd
}

/// Does the function depend on variable `l` (Definition 2.1)?
pub fn depends_on(n: u8, table: u64, l: u8) -> bool {
    assert_small(n);
    assert!(l < n);
    let shift = 1u32 << l;
    let m = LOW_MASK[usize::from(l)] & full_mask(n);
    (table & m) != ((table >> shift) & m)
}

/// Is the function degenerate (independent of some variable)?
pub fn is_degenerate(n: u8, table: u64) -> bool {
    (0..n).any(|l| !depends_on(n, table, l))
}

/// The dependency set `DEP(phi)` as a variable bitmask.
pub fn support(n: u8, table: u64) -> u32 {
    (0..n)
        .filter(|&l| depends_on(n, table, l))
        .map(|l| 1u32 << l)
        .sum()
}

/// Is the function monotone?
pub fn is_monotone(n: u8, table: u64) -> bool {
    assert_small(n);
    for l in 0..n {
        let shift = 1u32 << l;
        let m = LOW_MASK[usize::from(l)] & full_mask(n);
        // A satisfying valuation without l whose l-extension falsifies.
        if table & m & !(table >> shift) != 0 {
            return false;
        }
    }
    true
}

/// Applies a variable permutation to the table: variable `i` of the result
/// plays the role of variable `perm[i]` of the input.
pub fn permute(n: u8, table: u64, perm: &[u8]) -> u64 {
    assert_small(n);
    assert_eq!(perm.len(), usize::from(n));
    let mut out = 0u64;
    for v in 0..(1u32 << n) {
        let mut mapped = 0u32;
        for (i, &p) in perm.iter().enumerate() {
            if v & (1 << i) != 0 {
                mapped |= 1 << p;
            }
        }
        if (table >> mapped) & 1 == 1 {
            out |= 1u64 << v;
        }
    }
    out
}

/// All permutations of `0..n` (Heap's algorithm).
pub fn permutations(n: u8) -> Vec<Vec<u8>> {
    fn heap(k: usize, arr: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
        if k <= 1 {
            out.push(arr.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, arr, out);
            if k.is_multiple_of(2) {
                arr.swap(i, k - 1);
            } else {
                arr.swap(0, k - 1);
            }
        }
    }
    let mut arr: Vec<u8> = (0..n).collect();
    let mut out = Vec::new();
    heap(usize::from(n), &mut arr, &mut out);
    out
}

/// Canonical representative of the function's isomorphism class under
/// variable permutation: the minimal table over all `n!` renamings.
pub fn canonical(n: u8, table: u64, perms: &[Vec<u8>]) -> u64 {
    perms
        .iter()
        .map(|p| permute(n, table, p))
        .min()
        .unwrap_or(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoolFn;

    #[test]
    fn even_parity_mask_spot_checks() {
        // popcount(0)=0 even, popcount(1)=1 odd, popcount(3)=2 even.
        assert_eq!(EVEN_PARITY_MASK & 1, 1);
        assert_eq!((EVEN_PARITY_MASK >> 1) & 1, 0);
        assert_eq!((EVEN_PARITY_MASK >> 3) & 1, 1);
        assert_eq!(EVEN_PARITY_MASK.count_ones(), 32);
    }

    #[test]
    fn predicates_agree_with_boolfn() {
        // Exhaustive on n = 3 (256 functions), sampled on n = 5.
        for t in 0..256u64 {
            let f = BoolFn::from_table_u64(3, t);
            assert_eq!(euler(3, t) as i64, f.euler_characteristic(), "euler {t}");
            assert_eq!(is_monotone(3, t), f.is_monotone(), "mono {t}");
            assert_eq!(is_degenerate(3, t), f.is_degenerate(), "degen {t}");
            assert_eq!(support(3, t), f.support(), "support {t}");
        }
        let samples = [0u64, u64::MAX >> 32, 0x0123_4567_89ab_cdef & 0xffff_ffff];
        for &t in &samples {
            let t = t & full_mask(5);
            let f = BoolFn::from_table_u64(5, t);
            assert_eq!(euler(5, t) as i64, f.euler_characteristic());
            assert_eq!(is_monotone(5, t), f.is_monotone());
            assert_eq!(support(5, t), f.support());
        }
    }

    #[test]
    fn permute_matches_boolfn() {
        let t = crate::phi9().table_u64();
        for perm in permutations(4) {
            let via_small = permute(4, t, &perm);
            let via_boolfn = crate::phi9().permute_vars(&perm).table_u64();
            assert_eq!(via_small, via_boolfn, "perm {perm:?}");
        }
    }

    #[test]
    fn permutations_count_and_distinctness() {
        let perms = permutations(4);
        assert_eq!(perms.len(), 24);
        let set: std::collections::HashSet<_> = perms.iter().collect();
        assert_eq!(set.len(), 24);
    }

    #[test]
    fn canonical_is_invariant_under_renaming() {
        let perms = permutations(4);
        let t = crate::phi9().table_u64();
        let c = canonical(4, t, &perms);
        for p in &perms {
            assert_eq!(canonical(4, permute(4, t, p), &perms), c);
        }
    }

    #[test]
    fn full_mask_values() {
        assert_eq!(full_mask(1), 0b11);
        assert_eq!(full_mask(2), 0xf);
        assert_eq!(full_mask(5), u64::from(u32::MAX));
        assert_eq!(full_mask(6), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "1 <= n <= 6")]
    fn oversized_n_rejected() {
        let _ = full_mask(7);
    }
}
