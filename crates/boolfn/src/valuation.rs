//! Valuations: subsets of the variable set, encoded as bitmasks.

use std::fmt;

/// A Boolean valuation of a variable set `V = {0, ..., n-1}`: the subset
/// of variables assigned `true`, encoded as a bitmask.
///
/// Displayed in the paper's set notation: `{0, 2, 3}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Valuation(pub u32);

impl Valuation {
    /// The empty valuation.
    pub const EMPTY: Valuation = Valuation(0);

    /// Number of variables assigned `true` (the paper's `|ν|`).
    pub fn size(self) -> u32 {
        self.0.count_ones()
    }

    /// `(-1)^{|ν|}` as `+1` / `-1`.
    pub fn sign(self) -> i64 {
        if self.size().is_multiple_of(2) {
            1
        } else {
            -1
        }
    }

    /// `true` iff `|ν|` is even.
    pub fn is_even(self) -> bool {
        self.size().is_multiple_of(2)
    }

    /// The paper's `ν^(l)`: membership of variable `l` flipped.
    pub fn flip(self, l: u8) -> Valuation {
        Valuation(self.0 ^ (1 << l))
    }

    /// Does the valuation contain variable `l`?
    pub fn contains(self, l: u8) -> bool {
        self.0 & (1 << l) != 0
    }

    /// Is `self` a subset of `other`?
    pub fn is_subset_of(self, other: Valuation) -> bool {
        self.0 & !other.0 == 0
    }

    /// Hamming distance (the graph distance in `G_V`).
    pub fn distance(self, other: Valuation) -> u32 {
        (self.0 ^ other.0).count_ones()
    }

    /// Are the two valuations adjacent in `G_V` (differ in one variable)?
    pub fn is_adjacent(self, other: Valuation) -> bool {
        self.distance(other) == 1
    }

    /// Iterates over member variables in increasing order.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0..32u8).filter(move |&l| self.contains(l))
    }
}

impl fmt::Display for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<u32> for Valuation {
    fn from(mask: u32) -> Self {
        Valuation(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sign_parity() {
        assert_eq!(Valuation(0b1011).size(), 3);
        assert_eq!(Valuation(0b1011).sign(), -1);
        assert_eq!(Valuation(0b0011).sign(), 1);
        assert!(Valuation::EMPTY.is_even());
    }

    #[test]
    fn flip_is_involutive_and_adjacent() {
        let v = Valuation(0b0101);
        let w = v.flip(1);
        assert_eq!(w.0, 0b0111);
        assert_eq!(w.flip(1), v);
        assert!(v.is_adjacent(w));
        assert!(!v.is_adjacent(v));
    }

    #[test]
    fn subset_and_distance() {
        assert!(Valuation(0b001).is_subset_of(Valuation(0b011)));
        assert!(!Valuation(0b100).is_subset_of(Valuation(0b011)));
        assert_eq!(Valuation(0b110).distance(Valuation(0b011)), 2);
    }

    #[test]
    fn display_set_notation() {
        assert_eq!(Valuation(0b1101).to_string(), "{0,2,3}");
        assert_eq!(Valuation::EMPTY.to_string(), "{}");
    }

    #[test]
    fn iter_members() {
        let v: Vec<u8> = Valuation(0b10101).iter().collect();
        assert_eq!(v, vec![0, 2, 4]);
    }
}
