//! The named Boolean functions of the paper, and the constructive pieces
//! of Appendix C (Lemma C.1, Theorem C.2).

use crate::BoolFn;

/// The function `φ9` of Example 3.3 (Dalvi and Suciu's query `q9`):
/// `(2∨3) ∧ (0∨3) ∧ (1∨3) ∧ (0∨1∨2)` on `V = {0,1,2,3}`.
///
/// The simplest safe `H⁺`-query for which the extensional algorithm needs
/// the Möbius inversion formula — and the flagship example of the paper.
pub fn phi9() -> BoolFn {
    let clauses: [u32; 4] = [0b1100, 0b1001, 0b1010, 0b0111];
    BoolFn::from_fn(4, move |v| clauses.iter().all(|&c| v & c != 0))
}

/// A function with the properties of `φ_no-PM` from Figure 5 (`k = 4`):
/// zero Euler characteristic, yet *neither* the subgraph of `G_V[φ]`
/// induced by the satisfying valuations *nor* the one induced by the
/// non-satisfying valuations has a perfect matching.
///
/// The paper specifies `φ_no-PM` only through a colored figure (the
/// coloring is not recoverable from the text), so we construct a witness
/// with exactly the stated properties: the satisfying valuation `{3,4}` is
/// isolated among satisfying valuations, and the non-satisfying valuation
/// `{0,3,4}` is isolated among non-satisfying ones — each isolation makes
/// the respective perfect matching impossible. All properties are verified
/// by tests (see also `intext-matching`).
pub fn phi_no_pm() -> BoolFn {
    let even_sat: [u32; 5] = [
        0b11000, // {3,4} — isolated among satisfying valuations
        0b01001, // {0,3}
        0b10001, // {0,4}
        0b11011, // {0,1,3,4}
        0b11101, // {0,2,3,4}
    ];
    let odd_sat: [u32; 5] = [
        0b00001, // {0}
        0b00010, // {1}
        0b00100, // {2}
        0b00111, // {0,1,2}
        0b10011, // {0,1,4}
    ];
    BoolFn::from_sat(5, even_sat.into_iter().chain(odd_sat))
}

/// The function `φ_max-Euler` (Section 6.1): satisfied exactly by the
/// valuations of even size; its Euler characteristic `2^k` exceeds what
/// any monotone function can reach.
pub fn max_euler_fn(n: u8) -> BoolFn {
    BoolFn::from_fn(n, |v| v.count_ones() % 2 == 0)
}

/// The threshold function `|ν| >= t` on `n` variables; always monotone.
/// Theorem C.2 shows the monotone functions of extremal Euler
/// characteristic are exactly (certain) thresholds.
pub fn threshold_fn(n: u8, t: u32) -> BoolFn {
    BoolFn::from_fn(n, move |v| v.count_ones() >= t)
}

/// The range `[min, max]` of the Euler characteristic over all *monotone*
/// Boolean functions on `V = {0, ..., k}` (i.e. `k+1` variables).
///
/// By Theorem C.2 the extrema are attained by threshold functions, whose
/// Euler characteristic has the closed form
/// `e(τ_t) = (-1)^t C(k, t-1)` for `t >= 1` (partial alternating binomial
/// sums), so we simply scan the thresholds.
pub fn monotone_euler_range(k: u8) -> (i64, i64) {
    let n = k + 1;
    let mut min = 0i64;
    let mut max = 0i64;
    for t in 0..=u32::from(n) + 1 {
        let e = threshold_fn(n, t).euler_characteristic();
        min = min.min(e);
        max = max.max(e);
    }
    (min, max)
}

/// Constructs a *monotone* function on `V = {0, ..., k}` with the given
/// Euler characteristic, if one exists (Lemma C.1's constructive walk).
///
/// Starting from the extremal threshold function on the correct side, we
/// repeatedly remove one subset-minimal satisfying valuation — which
/// preserves monotonicity (satisfying sets are *upward* closed, so the
/// safe removals are at the bottom) and changes `e` by exactly `±1` —
/// until the walk (which ends at `⊥` with `e = 0`) hits the target.
/// (Lemma C.1's proof phrases the walk in simplicial-complex terms, where
/// complexes are downward closed and the removable faces are the maximal
/// ones; minimal satisfying valuations are their mirror image.)
pub fn monotone_with_euler(k: u8, target: i64) -> Option<BoolFn> {
    let n = k + 1;
    if target == 0 {
        return Some(BoolFn::bottom(n));
    }
    let (min, max) = monotone_euler_range(k);
    if target < min || target > max {
        return None;
    }
    // Pick the extremal threshold on the target's side.
    let mut best: Option<(i64, BoolFn)> = None;
    for t in 0..=u32::from(n) + 1 {
        let f = threshold_fn(n, t);
        let e = f.euler_characteristic();
        let dominates = if target > 0 { e >= target } else { e <= target };
        if dominates && best.as_ref().is_none_or(|(be, _)| e.abs() < be.abs()) {
            best = Some((e, f));
        }
    }
    let (mut e, mut f) = best.expect("range check guarantees a starting threshold");
    while e != target {
        // Remove one satisfying valuation of minimal size (hence
        // subset-minimal, so upward closure survives).
        let v = f
            .sat_iter()
            .min_by_key(|v| v.count_ones())
            .expect("e != 0 implies a satisfying valuation exists");
        f.set(v, false);
        e -= if v.count_ones() % 2 == 0 { 1 } else { -1 };
        debug_assert!(f.is_monotone());
    }
    Some(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::small;

    #[test]
    fn phi9_is_the_paper_function() {
        let f = phi9();
        assert_eq!(f.num_vars(), 4);
        assert!(f.is_monotone());
        assert!(!f.is_degenerate());
        assert_eq!(f.sat_count(), 8);
        assert_eq!(f.euler_characteristic(), 0);
    }

    #[test]
    fn phi_no_pm_has_the_stated_properties() {
        let f = phi_no_pm();
        assert_eq!(f.num_vars(), 5);
        assert_eq!(f.euler_characteristic(), 0, "zero Euler characteristic");
        assert!(!f.is_monotone(), "Figure 5 witnesses need non-monotonicity");
        // {3,4} is satisfying and isolated among satisfying valuations.
        let v34: u32 = 0b11000;
        assert!(f.eval(v34));
        for l in 0..5u8 {
            assert!(!f.eval(v34 ^ (1 << l)), "neighbor of {{3,4}} flipping {l}");
        }
        // {0,3,4} is non-satisfying and isolated among non-satisfying ones.
        let v034: u32 = 0b11001;
        assert!(!f.eval(v034));
        for l in 0..5u8 {
            assert!(
                f.eval(v034 ^ (1 << l)),
                "neighbor of {{0,3,4}} flipping {l}"
            );
        }
    }

    #[test]
    fn max_euler_value_is_two_to_the_k() {
        for k in 1..=5u8 {
            let f = max_euler_fn(k + 1);
            assert_eq!(f.euler_characteristic(), 1i64 << k, "k={k}");
        }
    }

    #[test]
    fn threshold_euler_closed_form() {
        // e(τ_t) = (-1)^t C(k, t-1) for t >= 1 (and 0 for t = 0).
        fn c(n: u64, r: u64) -> i64 {
            i64::try_from(
                intext_numeric::binomial(n, r)
                    .to_u64()
                    .expect("small binomial"),
            )
            .expect("fits")
        }
        for k in 1..=5u8 {
            let n = k + 1;
            assert_eq!(threshold_fn(n, 0).euler_characteristic(), 0, "t=0");
            for t in 1..=u32::from(n) {
                let e = threshold_fn(n, t).euler_characteristic();
                let sign = if t % 2 == 0 { 1 } else { -1 };
                assert_eq!(e, sign * c(u64::from(k), u64::from(t) - 1), "k={k}, t={t}");
            }
        }
    }

    #[test]
    fn monotone_range_is_exhaustively_tight_for_small_k() {
        // Verify Theorem C.2's consequence against brute force: no monotone
        // function on k+1 <= 5 variables beats the threshold extrema.
        for k in 1..=3u8 {
            let n = k + 1;
            let (min, max) = monotone_euler_range(k);
            let mut seen_min = i64::MAX;
            let mut seen_max = i64::MIN;
            for t in crate::enumerate::monotone_tables(n) {
                let e = i64::from(small::euler(n, t));
                seen_min = seen_min.min(e);
                seen_max = seen_max.max(e);
            }
            assert_eq!((seen_min, seen_max), (min, max), "k={k}");
        }
    }

    #[test]
    fn monotone_with_euler_hits_every_value_in_range() {
        for k in 1..=4u8 {
            let (min, max) = monotone_euler_range(k);
            for target in min..=max {
                let f = monotone_with_euler(k, target)
                    .unwrap_or_else(|| panic!("k={k}, target={target} should be reachable"));
                assert!(f.is_monotone(), "k={k}, target={target}");
                assert_eq!(f.euler_characteristic(), target, "k={k}, target={target}");
            }
            assert!(monotone_with_euler(k, max + 1).is_none());
            assert!(monotone_with_euler(k, min - 1).is_none());
        }
    }

    #[test]
    fn max_euler_fn_is_out_of_monotone_reach() {
        // Section 6.1: e(φ_max-Euler) = 2^k is not attainable monotonically.
        for k in 2..=5u8 {
            let (_, max) = monotone_euler_range(k);
            assert!(max < (1i64 << k), "k={k}: monotone max {max} < 2^{k}");
        }
    }
}
