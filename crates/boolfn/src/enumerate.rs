//! Enumeration of Boolean functions for the exhaustive experiments.
//!
//! * [`monotone_tables`] generates every monotone function on `n <= 6`
//!   variables (the Dedekind numbers M(1)=3 ... M(6)=7,828,354), used for
//!   the Conjecture 1 verification the paper ran with a SAT solver.
//! * [`all_tables`] iterates all `2^(2^n)` functions for `n <= 4`,
//!   used for the footnote-6 census and the Figure 1 region map.
//! * [`non_isomorphic_count`] reduces a table set modulo variable
//!   permutation, matching the paper's "non-isomorphic" counts.

use crate::small;

/// All monotone Boolean functions on `n` variables, as `u64` truth tables.
///
/// Built recursively: a function on `n` variables is monotone iff its two
/// cofactors `f0 = f[x_{n-1}:=0]` and `f1 = f[x_{n-1}:=1]` are monotone
/// and `f0 <= f1` pointwise; the table is `f0 | (f1 << 2^(n-1))`.
///
/// # Panics
/// Panics unless `1 <= n <= 6`.
pub fn monotone_tables(n: u8) -> Vec<u64> {
    assert!(
        (1..=6).contains(&n),
        "monotone_tables supports 1 <= n <= 6, got {n}"
    );
    // Base: the three monotone functions on one variable.
    let mut cur: Vec<u64> = vec![0b00, 0b10, 0b11];
    for m in 2..=n {
        let half = 1u32 << (m - 1);
        let mut next = Vec::with_capacity(cur.len() * 3); // loose lower-bound guess
        for &f1 in &cur {
            for &f0 in &cur {
                // f0 <= f1 pointwise.
                if f0 & !f1 == 0 {
                    next.push(f0 | (f1 << half));
                }
            }
        }
        cur = next;
    }
    cur
}

/// The Dedekind numbers `M(n)` for `1 <= n <= 6` (count of monotone
/// functions), used to validate [`monotone_tables`].
pub const DEDEKIND: [u64; 6] = [3, 6, 20, 168, 7581, 7_828_354];

/// Iterates over all `2^(2^n)` truth tables on `n` variables.
///
/// # Panics
/// Panics unless `1 <= n <= 4` (beyond that the space is unenumerable).
pub fn all_tables(n: u8) -> impl Iterator<Item = u64> {
    assert!(
        (1..=4).contains(&n),
        "all_tables supports 1 <= n <= 4, got {n}"
    );
    let count: u64 = 1u64 << (1u32 << n);
    0..count
}

/// Counts the functions among `tables` that are pairwise non-isomorphic
/// under variable permutation.
pub fn non_isomorphic_count(n: u8, tables: impl IntoIterator<Item = u64>) -> usize {
    let perms = small::permutations(n);
    let mut canon = std::collections::HashSet::new();
    for t in tables {
        canon.insert(small::canonical(n, t, &perms));
    }
    canon.len()
}

/// Counts the functions on `n` variables with zero Euler characteristic by
/// exhaustive enumeration (`n <= 4`); footnote 6 of the paper gives the
/// closed form `sum_j C(2^k, j)^2 = C(2^(k+1), 2^k)` with `n = k + 1`.
pub fn count_euler_zero(n: u8) -> u64 {
    all_tables(n).filter(|&t| small::euler(n, t) == 0).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::small;

    #[test]
    fn monotone_counts_match_dedekind() {
        // n = 6 takes ~57M subset checks; keep tests at n <= 5 (the n = 6
        // path is exercised by the conjecture1 example in release mode).
        for n in 1..=5u8 {
            let tables = monotone_tables(n);
            assert_eq!(tables.len() as u64, DEDEKIND[usize::from(n) - 1], "M({n})");
        }
    }

    #[test]
    fn monotone_tables_are_monotone_and_distinct() {
        let tables = monotone_tables(4);
        let set: std::collections::HashSet<_> = tables.iter().collect();
        assert_eq!(set.len(), tables.len(), "no duplicates");
        for &t in &tables {
            assert!(small::is_monotone(4, t), "table {t:#x}");
            assert!(t & !small::full_mask(4) == 0, "no stray bits");
        }
    }

    #[test]
    fn all_tables_covers_the_space() {
        assert_eq!(all_tables(2).count(), 16);
        assert_eq!(all_tables(3).count(), 256);
    }

    #[test]
    fn euler_zero_census_matches_footnote_6() {
        // #{phi on k+1 vars : e(phi) = 0} = C(2^(k+1), 2^k).
        for n in 1..=3u8 {
            let k = n - 1;
            let expect = intext_numeric::binomial(1 << n, 1 << k)
                .to_u64()
                .expect("small enough");
            assert_eq!(count_euler_zero(n), expect, "n={n}");
        }
    }

    #[test]
    fn non_isomorphic_reduction() {
        // On 2 variables: 16 functions fall into 12 classes (the two
        // projections x0/x1 merge, as do their negations, x0∧¬x1 pairs,
        // and ¬x0∧x1 pairs).
        assert_eq!(non_isomorphic_count(2, all_tables(2)), 12);
        // Non-isomorphic monotone functions on 3 variables: 10 classes.
        assert_eq!(non_isomorphic_count(3, monotone_tables(3)), 10);
    }
}
