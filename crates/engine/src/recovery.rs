//! Crash-safe snapshots and recovery: the durability protocol over a
//! [`DurableDir`].
//!
//! A durable engine directory holds at most four kinds of file:
//!
//! | file | meaning |
//! |------|---------|
//! | `snapshot.bin` | the current committed cache snapshot (a [`store`](crate::store) bundle) |
//! | `snapshot.prev.bin` | the previous generation, retained until the next checkpoint |
//! | `snapshot.tmp` | an in-flight checkpoint that never committed (deleted on recovery) |
//! | `wal.log` | the write-ahead delta log ([`crate::wal`]) |
//!
//! plus quarantined corpses (`*.quarantined-N`) that recovery has
//! renamed aside rather than deleted — corruption is evidence, not
//! garbage.
//!
//! ## Checkpoint (atomic snapshot rotation)
//!
//! [`DurableDir::checkpoint`] commits the engine's whole artifact cache:
//! write the bundle to `snapshot.tmp`, `fsync` it, rotate
//! `snapshot.bin → snapshot.prev.bin`, rename the temp into place,
//! `fsync` the directory, and only then truncate the WAL. Every step is
//! either atomic (rename) or happens strictly before the step that
//! depends on it, so a crash between any two steps recovers to either
//! the old committed state (plus its WAL) or the new one — never a
//! half-written snapshot mistaken for a good one. The crash-point state
//! machine is tabulated in `DESIGN.md` §12 and enumerated exhaustively
//! by `tests/engine_recovery.rs` via [`FaultIo`](crate::fsio::FaultIo).
//!
//! ## Recovery
//!
//! [`PqeEngine::recover`] rebuilds an engine from the directory alone:
//! load the newest snapshot generation that decodes (quarantining any
//! that don't), delete an orphaned temp, then replay the WAL through
//! [`PqeEngine::apply_delta`] — stopping at the first record that is
//! corrupt at the frame layer *or* fails to apply, quarantining the
//! original log and truncating it to the applied prefix. The result is
//! always a working engine plus a [`RecoveryReport`] saying exactly
//! what was kept, replayed, and quarantined; a directory of pure
//! garbage degrades to a cold start, never a panic or a refusal to
//! serve.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::engine::{EngineConfig, PqeEngine};
use crate::fsio::{RealFs, StorageIo};
use crate::wal::Wal;

/// File name of the current committed snapshot.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// File name of the retained previous snapshot generation.
pub const SNAPSHOT_PREV_FILE: &str = "snapshot.prev.bin";
/// File name of an in-flight (uncommitted) checkpoint.
pub const SNAPSHOT_TMP_FILE: &str = "snapshot.tmp";
/// File name of the write-ahead delta log.
pub const WAL_FILE: &str = "wal.log";

/// A directory holding one engine's durable state, bound to a storage
/// backend (the real filesystem by default, or any
/// [`StorageIo`] — the fault harness injects its own).
pub struct DurableDir {
    dir: PathBuf,
    io: Arc<dyn StorageIo>,
}

impl DurableDir {
    /// Opens (creating if needed) a durable directory on the real
    /// filesystem.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with(dir, Arc::new(RealFs))
    }

    /// Opens a durable directory over an injected backend.
    pub fn open_with(dir: impl Into<PathBuf>, io: Arc<dyn StorageIo>) -> io::Result<Self> {
        let dir = dir.into();
        io.create_dir_all(&dir)?;
        Ok(DurableDir { dir, io })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// The write-ahead log inside this directory.
    pub fn wal(&self) -> Wal {
        Wal::with_io(self.dir.join(WAL_FILE), Arc::clone(&self.io))
    }

    fn file(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Appends one exported delta blob to the WAL and makes it durable.
    /// Call *before* applying the update in memory: `Ok` here is the
    /// durability promise.
    pub fn log_delta(&self, delta: &[u8]) -> io::Result<()> {
        self.wal().append(delta)
    }

    /// Commits `engine`'s artifact cache as the new current snapshot
    /// via atomic rotation (temp + fsync + rename, previous generation
    /// retained), then truncates the WAL — every logged delta is inside
    /// the snapshot now.
    pub fn checkpoint(&self, engine: &PqeEngine) -> io::Result<()> {
        let bytes = engine.save_cache();
        let tmp = self.file(SNAPSHOT_TMP_FILE);
        let current = self.file(SNAPSHOT_FILE);
        let prev = self.file(SNAPSHOT_PREV_FILE);
        self.io.write(&tmp, &bytes)?;
        self.io.sync(&tmp)?;
        if self.io.exists(&current) {
            self.io.rename(&current, &prev)?;
        }
        self.io.rename(&tmp, &current)?;
        self.io.sync_dir(&self.dir)?;
        self.wal().reset()
    }

    /// Renames `path` aside to the first free `*.quarantined-N` name
    /// and returns the new path.
    fn quarantine(&self, path: &Path) -> io::Result<PathBuf> {
        for n in 1u32.. {
            let candidate = PathBuf::from(format!("{}.quarantined-{n}", path.display()));
            if !self.io.exists(&candidate) {
                self.io.rename(path, &candidate)?;
                return Ok(candidate);
            }
        }
        unreachable!("u32 quarantine namespace exhausted")
    }
}

/// Which snapshot generation recovery started the engine from.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum SnapshotSource {
    /// No decodable snapshot: the engine cold-started empty.
    #[default]
    Cold,
    /// The current generation (`snapshot.bin`) loaded cleanly.
    Current {
        /// Artifacts admitted from the snapshot.
        artifacts: u64,
    },
    /// The current generation was corrupt (and quarantined); the
    /// retained previous generation loaded instead.
    Previous {
        /// Artifacts admitted from the previous generation.
        artifacts: u64,
    },
}

/// One file recovery renamed aside instead of trusting or deleting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Quarantine {
    /// The file's original path.
    pub original: PathBuf,
    /// Where it lives now (`<original>.quarantined-N`).
    pub moved_to: PathBuf,
    /// The typed failure that condemned it, rendered.
    pub reason: String,
}

/// What [`PqeEngine::recover`] did: the full, typed account of a
/// recovery — which snapshot generation survived, how much of the WAL
/// replayed, and everything that had to be quarantined.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Which snapshot generation the engine started from.
    pub snapshot: SnapshotSource,
    /// WAL records successfully re-applied through
    /// [`PqeEngine::apply_delta`].
    pub wal_records_applied: u64,
    /// Intact WAL records dropped because an earlier record failed to
    /// apply (the log is a strict order: applying past a failure could
    /// interleave updates).
    pub wal_records_dropped: u64,
    /// Why the WAL was cut short, when it was: a frame-layer
    /// [`WalCorruption`](crate::wal::WalCorruption) or an
    /// [`apply_delta`](PqeEngine::apply_delta) error, rendered.
    pub wal_cut: Option<String>,
    /// Every file renamed aside during this recovery.
    pub quarantined: Vec<Quarantine>,
}

impl RecoveryReport {
    /// `true` iff recovery found nothing wrong: the committed state
    /// loaded and the whole WAL replayed.
    pub fn clean(&self) -> bool {
        self.wal_cut.is_none()
            && self.quarantined.is_empty()
            && !matches!(self.snapshot, SnapshotSource::Previous { .. })
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.snapshot {
            SnapshotSource::Cold => write!(f, "cold start")?,
            SnapshotSource::Current { artifacts } => {
                write!(f, "snapshot loaded ({artifacts} artifact(s))")?
            }
            SnapshotSource::Previous { artifacts } => write!(
                f,
                "previous-generation snapshot loaded ({artifacts} artifact(s))"
            )?,
        }
        write!(
            f,
            "; {} WAL record(s) replayed, {} dropped",
            self.wal_records_applied, self.wal_records_dropped
        )?;
        if let Some(cut) = &self.wal_cut {
            write!(f, "; WAL cut: {cut}")?;
        }
        for q in &self.quarantined {
            write!(
                f,
                "; quarantined {} → {} ({})",
                q.original.display(),
                q.moved_to.display(),
                q.reason
            )?;
        }
        Ok(())
    }
}

impl PqeEngine {
    /// Rebuilds an engine from a durable directory on the real
    /// filesystem: newest decodable snapshot generation + WAL replay,
    /// with graceful degradation — corrupt files are quarantined
    /// (renamed aside, reported, counted in
    /// [`EngineStats::recovery_quarantines`](crate::EngineStats::recovery_quarantines))
    /// and the engine cold-starts through whatever is left rather than
    /// refusing to serve. `Err` is reserved for genuine I/O failure
    /// (permissions, a vanished directory), never for corruption.
    pub fn recover(
        config: EngineConfig,
        dir: impl Into<PathBuf>,
    ) -> io::Result<(PqeEngine, RecoveryReport)> {
        let dir = DurableDir::open(dir)?;
        Self::recover_with(config, &dir)
    }

    /// [`recover`](Self::recover) over an explicit [`DurableDir`]
    /// (and thereby any storage backend — the fault-injection tests
    /// recover through [`MemFs`](crate::fsio::MemFs)).
    pub fn recover_with(
        config: EngineConfig,
        dir: &DurableDir,
    ) -> io::Result<(PqeEngine, RecoveryReport)> {
        let mut engine = PqeEngine::with_config(config);
        let mut report = RecoveryReport::default();

        // Newest snapshot generation that decodes wins; corrupt ones
        // are quarantined and the next generation gets its chance.
        for (name, current) in [(SNAPSHOT_FILE, true), (SNAPSHOT_PREV_FILE, false)] {
            let path = dir.file(name);
            if !dir.io.exists(&path) {
                continue;
            }
            let bytes = dir.io.read(&path)?;
            match engine.load_cache(&bytes) {
                Ok(load) => {
                    report.snapshot = if current {
                        SnapshotSource::Current {
                            artifacts: load.artifacts as u64,
                        }
                    } else {
                        SnapshotSource::Previous {
                            artifacts: load.artifacts as u64,
                        }
                    };
                    break;
                }
                Err(e) => {
                    let moved_to = dir.quarantine(&path)?;
                    engine.stats_mut().recovery_quarantines += 1;
                    report.quarantined.push(Quarantine {
                        original: path,
                        moved_to,
                        reason: e.to_string(),
                    });
                }
            }
        }

        // An orphaned temp snapshot is an uncommitted checkpoint: the
        // rename never happened, so it was never the truth. Delete it.
        let tmp = dir.file(SNAPSHOT_TMP_FILE);
        if dir.io.exists(&tmp) {
            dir.io.remove(&tmp)?;
        }

        // WAL replay: apply intact records in order, stop at the first
        // frame corruption or apply failure.
        let wal = dir.wal();
        let replay = wal.replay()?;
        let mut cut_at: Option<usize> = replay.corruption.as_ref().map(|c| c.valid_len());
        report.wal_cut = replay.corruption.as_ref().map(|c| c.to_string());
        for (i, record) in replay.records.iter().enumerate() {
            match engine.apply_delta(&record.payload) {
                Ok(_) => report.wal_records_applied += 1,
                Err(e) => {
                    report.wal_records_dropped = (replay.records.len() - i) as u64;
                    report.wal_cut = Some(format!(
                        "record {i} failed to apply: {e} \
                         (log truncated to the applied prefix)"
                    ));
                    cut_at = Some(record.offset);
                    break;
                }
            }
        }
        engine.stats_mut().wal_records_applied += report.wal_records_applied;

        // A cut log is quarantined whole, then truncated to the prefix
        // that actually applied — the corrupt tail stays inspectable,
        // the live log goes back to a trustworthy state.
        if let Some(valid_len) = cut_at {
            let path = wal.path().to_path_buf();
            let bytes = dir.io.read(&path).unwrap_or_default();
            let moved_to = dir.quarantine(&path)?;
            engine.stats_mut().recovery_quarantines += 1;
            report.quarantined.push(Quarantine {
                original: path.clone(),
                moved_to,
                reason: report
                    .wal_cut
                    .clone()
                    .unwrap_or_else(|| "corrupt tail".to_string()),
            });
            dir.io.write(&path, &bytes[..valid_len.min(bytes.len())])?;
            dir.io.sync(&path)?;
        }

        Ok((engine, report))
    }
}
