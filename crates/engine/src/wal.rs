//! The write-ahead delta log: crash-safe ordering for live updates.
//!
//! A [`Wal`] is an append-only file of framed records, each carrying
//! one [`store`](crate::store) delta blob (the `KIND_DELTA` container
//! [`PqeEngine::export_delta`](crate::PqeEngine::export_delta)
//! produces). The protocol is the classic one:
//!
//! 1. **Append before apply.** A delta is framed, appended, and
//!    `fsync`ed *before* the in-memory engine applies the update. A
//!    crash at any point then loses at most work the caller was never
//!    told was durable.
//! 2. **Replay tolerates exactly one torn tail.** [`Wal::replay`]
//!    walks records from the front and stops at the first frame that is
//!    short, oversized, or fails its checksum — everything before it is
//!    returned, everything from it on is reported as a typed
//!    [`WalCorruption`] with the byte offset of the valid prefix.
//!    Replay never panics and never errors on corruption: a torn tail
//!    is the *expected* consequence of a crash mid-append, not an
//!    exceptional state.
//! 3. **Reset after checkpoint.** Once a snapshot contains every logged
//!    delta, [`Wal::reset`] truncates the log. Replaying a stale log
//!    over a newer snapshot is harmless anyway — delta application is
//!    idempotent (each blob names its own pre-update shape and the
//!    compile it triggers is deterministic) — but a bounded log keeps
//!    recovery time bounded.
//!
//! ## Record layout
//!
//! | field | bytes | meaning |
//! |-------|-------|---------|
//! | `len` | 4, LE | payload length in bytes |
//! | `crc` | 8, LE | FNV-1a 64 of the payload |
//! | payload | `len` | a [`store`](crate::store) delta blob (self-checksummed `INTXSTOR` container) |
//!
//! The frame checksum detects torn appends at the log layer; the
//! payload's own trailing checksum (store format, `DESIGN.md` §5)
//! additionally guards the blob end-to-end, so a record that frames
//! correctly but decodes badly is still caught — recovery treats it as
//! the same truncate-and-quarantine event (`DESIGN.md` §12).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::fsio::{RealFs, StorageIo};
use crate::store::fnv1a;

/// Bytes of the per-record frame header: `len: u32` + `crc: u64`.
pub const RECORD_HEADER_LEN: usize = 4 + 8;

/// Upper bound on one record's payload — matches the wire protocol's
/// frame bound: no single update delta comes close, so a larger length
/// prefix is corruption, not data.
pub const MAX_RECORD_LEN: u32 = 64 << 20;

/// Why replay stopped before the end of the log. Every variant carries
/// `valid_len`, the byte length of the intact prefix — the quarantine
/// boundary recovery cuts at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalCorruption {
    /// The tail is shorter than one frame header: a torn header.
    TornHeader {
        /// Bytes of intact records before the torn tail.
        valid_len: usize,
        /// Stray header bytes present (fewer than [`RECORD_HEADER_LEN`]).
        bytes: usize,
    },
    /// The frame header promises more payload than the file holds: a
    /// torn payload.
    TornRecord {
        /// Bytes of intact records before the torn tail.
        valid_len: usize,
        /// Payload length the header promised.
        expected: usize,
        /// Payload bytes actually present.
        got: usize,
    },
    /// The payload is complete but its checksum disagrees: bit rot or a
    /// partially-overwritten record.
    ChecksumMismatch {
        /// Bytes of intact records before the corrupt one.
        valid_len: usize,
        /// Checksum stored in the frame header.
        stored: u64,
        /// Checksum recomputed over the payload found.
        computed: u64,
    },
    /// The frame header's length exceeds [`MAX_RECORD_LEN`]: garbage
    /// interpreted as a length prefix.
    RecordTooLarge {
        /// Bytes of intact records before the corrupt one.
        valid_len: usize,
        /// The absurd length the header claimed.
        len: u32,
    },
}

impl WalCorruption {
    /// Byte length of the intact record prefix before the corruption.
    pub fn valid_len(&self) -> usize {
        match *self {
            WalCorruption::TornHeader { valid_len, .. }
            | WalCorruption::TornRecord { valid_len, .. }
            | WalCorruption::ChecksumMismatch { valid_len, .. }
            | WalCorruption::RecordTooLarge { valid_len, .. } => valid_len,
        }
    }
}

impl std::fmt::Display for WalCorruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalCorruption::TornHeader { valid_len, bytes } => write!(
                f,
                "torn record header after {valid_len} intact byte(s) ({bytes} stray byte(s))"
            ),
            WalCorruption::TornRecord {
                valid_len,
                expected,
                got,
            } => write!(
                f,
                "torn record payload after {valid_len} intact byte(s) \
                 (expected {expected} byte(s), found {got})"
            ),
            WalCorruption::ChecksumMismatch {
                valid_len,
                stored,
                computed,
            } => write!(
                f,
                "record checksum mismatch after {valid_len} intact byte(s) \
                 (stored {stored:#018x}, computed {computed:#018x})"
            ),
            WalCorruption::RecordTooLarge { valid_len, len } => write!(
                f,
                "record length {len} exceeds the {MAX_RECORD_LEN}-byte bound \
                 after {valid_len} intact byte(s)"
            ),
        }
    }
}

/// One replayed record: its payload and where its frame started —
/// recovery uses the offset to cut the log at the first record that
/// fails to *apply* (frames can be intact while the blob is poison).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Byte offset of this record's frame header in the log.
    pub offset: usize,
    /// The framed payload (a store delta blob).
    pub payload: Vec<u8>,
}

/// What [`Wal::replay`] found: the intact records in append order, plus
/// the corruption that ended the walk, if any.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalReplay {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// `Some` iff the log has a corrupt tail; carries the cut offset.
    pub corruption: Option<WalCorruption>,
    /// Total bytes scanned (the file length).
    pub scanned_len: usize,
}

impl WalReplay {
    /// Byte length of the intact prefix: the whole file when clean, the
    /// corruption's cut point otherwise.
    pub fn valid_len(&self) -> usize {
        self.corruption
            .as_ref()
            .map_or(self.scanned_len, WalCorruption::valid_len)
    }
}

/// A checksummed, append-only write-ahead log of delta blobs.
pub struct Wal {
    path: PathBuf,
    io: Arc<dyn StorageIo>,
}

impl Wal {
    /// A WAL at `path` on the real filesystem.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self::with_io(path, Arc::new(RealFs))
    }

    /// A WAL at `path` over an injected storage backend — the fault
    /// harness's entry point.
    pub fn with_io(path: impl Into<PathBuf>, io: Arc<dyn StorageIo>) -> Self {
        Wal {
            path: path.into(),
            io,
        }
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frames `payload` (length + FNV-1a checksum), appends the frame
    /// in one write, and `fsync`s the log. When this returns `Ok`, the
    /// record is durable: any later replay yields it.
    pub fn append(&self, payload: &[u8]) -> io::Result<()> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_RECORD_LEN)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "WAL record of {} bytes exceeds the frame bound",
                        payload.len()
                    ),
                )
            })?;
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.io.append(&self.path, &frame)?;
        self.io.sync(&self.path)
    }

    /// Reads the log and walks its records front to back, stopping at
    /// the first corrupt frame. A missing log file is an empty replay
    /// (cold start), not an error; only genuine I/O failures return
    /// `Err`.
    pub fn replay(&self) -> io::Result<WalReplay> {
        let bytes = match self.io.read(&self.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalReplay::default()),
            Err(e) => return Err(e),
        };
        Ok(Self::scan(&bytes))
    }

    /// The pure frame walk over `bytes` — shared by [`replay`] and the
    /// corruption tests, which feed it mutated logs directly.
    ///
    /// [`replay`]: Self::replay
    pub fn scan(bytes: &[u8]) -> WalReplay {
        let mut replay = WalReplay {
            scanned_len: bytes.len(),
            ..WalReplay::default()
        };
        let mut at = 0usize;
        while at < bytes.len() {
            let rest = &bytes[at..];
            if rest.len() < RECORD_HEADER_LEN {
                replay.corruption = Some(WalCorruption::TornHeader {
                    valid_len: at,
                    bytes: rest.len(),
                });
                return replay;
            }
            let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
            let stored = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
            if len > MAX_RECORD_LEN {
                replay.corruption = Some(WalCorruption::RecordTooLarge { valid_len: at, len });
                return replay;
            }
            let body = &rest[RECORD_HEADER_LEN..];
            if body.len() < len as usize {
                replay.corruption = Some(WalCorruption::TornRecord {
                    valid_len: at,
                    expected: len as usize,
                    got: body.len(),
                });
                return replay;
            }
            let payload = &body[..len as usize];
            let computed = fnv1a(payload);
            if computed != stored {
                replay.corruption = Some(WalCorruption::ChecksumMismatch {
                    valid_len: at,
                    stored,
                    computed,
                });
                return replay;
            }
            replay.records.push(WalRecord {
                offset: at,
                payload: payload.to_vec(),
            });
            at += RECORD_HEADER_LEN + len as usize;
        }
        replay
    }

    /// Truncates the log to empty (after a checkpoint has made every
    /// logged delta part of the snapshot) and `fsync`s the truncation.
    pub fn reset(&self) -> io::Result<()> {
        self.io.write(&self.path, &[])?;
        self.io.sync(&self.path)
    }

    /// Rewrites the log to the first `valid_len` bytes of its current
    /// content — how recovery discards a corrupt or unappliable tail
    /// after quarantining the full original.
    pub fn truncate_to(&self, valid_len: usize) -> io::Result<()> {
        let bytes = match self.io.read(&self.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let keep = valid_len.min(bytes.len());
        self.io.write(&self.path, &bytes[..keep])?;
        self.io.sync(&self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsio::MemFs;

    fn mem_wal() -> (Arc<MemFs>, Wal) {
        let mem = Arc::new(MemFs::new());
        let wal = Wal::with_io("wal.log", mem.clone() as Arc<dyn StorageIo>);
        (mem, wal)
    }

    #[test]
    fn append_replay_round_trips_in_order() {
        let (_, wal) = mem_wal();
        assert_eq!(
            wal.replay().unwrap(),
            WalReplay::default(),
            "missing log is empty"
        );
        let payloads: Vec<Vec<u8>> = vec![b"one".to_vec(), b"two2".to_vec(), vec![0u8; 300]];
        for p in &payloads {
            wal.append(p).unwrap();
        }
        let replay = wal.replay().unwrap();
        assert!(replay.corruption.is_none());
        assert_eq!(
            replay
                .records
                .iter()
                .map(|r| &r.payload)
                .collect::<Vec<_>>(),
            payloads.iter().collect::<Vec<_>>()
        );
        assert_eq!(replay.valid_len(), replay.scanned_len);
        // Offsets are the running frame starts.
        assert_eq!(replay.records[0].offset, 0);
        assert_eq!(replay.records[1].offset, RECORD_HEADER_LEN + 3);
        wal.reset().unwrap();
        assert_eq!(wal.replay().unwrap().records.len(), 0);
    }

    #[test]
    fn every_torn_suffix_truncates_to_a_record_boundary() {
        let (mem, wal) = mem_wal();
        wal.append(b"alpha").unwrap();
        wal.append(b"beta-beta").unwrap();
        wal.append(b"gamma!").unwrap();
        let full = mem.read(Path::new("wal.log")).unwrap();
        let boundaries: Vec<usize> = {
            let replay = Wal::scan(&full);
            let mut b: Vec<usize> = replay.records.iter().map(|r| r.offset).collect();
            b.push(full.len());
            b
        };
        // Chop the log at every possible byte length: replay must keep
        // exactly the records whose frames fit, and flag a torn tail
        // whenever the cut is off a boundary.
        for cut in 0..=full.len() {
            let replay = Wal::scan(&full[..cut]);
            let expect_records = boundaries.iter().filter(|&&b| b < cut).count().min(3);
            let on_boundary = boundaries.contains(&cut);
            if on_boundary {
                assert!(replay.corruption.is_none(), "cut {cut} is a clean boundary");
                assert_eq!(
                    replay.records.len(),
                    expect_records.min(replay.records.len())
                );
            } else {
                let c = replay
                    .corruption
                    .as_ref()
                    .unwrap_or_else(|| panic!("cut {cut} mid-record must report corruption"));
                assert!(
                    boundaries.contains(&c.valid_len()),
                    "cut {cut}: valid_len is a boundary"
                );
                assert!(c.valid_len() <= cut);
            }
            // Never a panic, and the intact prefix is always replayed.
            for (i, rec) in replay.records.iter().enumerate() {
                let want: &[u8] = [b"alpha".as_slice(), b"beta-beta", b"gamma!"][i];
                assert_eq!(rec.payload, want);
            }
        }
    }

    #[test]
    fn corrupt_middle_record_truncates_from_its_frame() {
        let (mem, wal) = mem_wal();
        wal.append(b"keep-me").unwrap();
        wal.append(b"poison").unwrap();
        wal.append(b"lost").unwrap();
        let mut bytes = mem.read(Path::new("wal.log")).unwrap();
        // Flip one payload byte of the second record.
        let second = RECORD_HEADER_LEN + 7;
        bytes[second + RECORD_HEADER_LEN] ^= 0x40;
        let replay = Wal::scan(&bytes);
        assert_eq!(replay.records.len(), 1, "only the first record survives");
        assert_eq!(replay.records[0].payload, b"keep-me");
        match replay.corruption {
            Some(WalCorruption::ChecksumMismatch {
                valid_len,
                stored,
                computed,
            }) => {
                assert_eq!(valid_len, second);
                assert_ne!(stored, computed);
            }
            other => panic!("expected a checksum mismatch, got {other:?}"),
        }
        // An absurd length prefix is RecordTooLarge, not an allocation.
        let mut huge = bytes[..second].to_vec();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&[0; 8]);
        match Wal::scan(&huge).corruption {
            Some(WalCorruption::RecordTooLarge { valid_len, len }) => {
                assert_eq!(valid_len, second);
                assert_eq!(len, u32::MAX);
            }
            other => panic!("expected RecordTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncate_to_cuts_the_tail_and_oversized_appends_are_rejected() {
        let (_, wal) = mem_wal();
        wal.append(b"first").unwrap();
        let keep = wal.replay().unwrap().scanned_len;
        wal.append(b"second").unwrap();
        wal.truncate_to(keep).unwrap();
        let replay = wal.replay().unwrap();
        assert!(replay.corruption.is_none());
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].payload, b"first");
        let too_big = vec![0u8; MAX_RECORD_LEN as usize + 1];
        assert_eq!(
            wal.append(&too_big).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
    }
}
