//! The injectable storage shim the durability layer is written against.
//!
//! Everything that touches disk — the write-ahead log ([`crate::wal`]),
//! snapshot rotation and recovery ([`crate::DurableDir`],
//! [`crate::RecoveryReport`]) — goes through
//! one small trait, [`StorageIo`], instead of calling `std::fs`
//! directly. Three implementations exist:
//!
//! * [`RealFs`] — the production backend over `std::fs`, with real
//!   `fsync` on files and (on Unix) directories.
//! * [`MemFs`] — an in-memory filesystem for tests: the crash-point
//!   differential in `tests/engine_recovery.rs` enumerates hundreds of
//!   interrupted histories, and replaying them against a `HashMap` is
//!   what keeps that sweep fast and hermetic.
//! * [`FaultIo`] — a deterministic fault injector wrapping any other
//!   backend. Every operation gets a global sequence number; the
//!   [`FaultPlan`] names the exact operation at which the simulated
//!   machine dies (optionally leaving a torn prefix of that write on
//!   "disk"), which syncs fail without crashing, and which reads come
//!   back short. Tests first run a workload fault-free to *count* its
//!   operations, then re-run it once per possible crash point — every
//!   write boundary is enumerated instead of hoping `kill -9` gets
//!   lucky.
//!
//! The trait is deliberately tiny and byte-oriented: no file handles,
//! no seek. Each call is one whole-file or append-only action, which is
//! exactly the granularity the WAL and snapshot protocols need and the
//! granularity at which crash points are meaningful.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The storage operations the durability layer performs, in the
/// granularity crash points are enumerated at.
///
/// Implementations must make each call atomic *from the caller's view*
/// on success: a `write` that returns `Ok` has replaced the whole file,
/// an `append` has added all its bytes. Torn intermediate states are
/// the fault injector's job ([`FaultIo`]), not the backend's.
pub trait StorageIo: Send + Sync {
    /// The entire content of the file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates or truncates `path` and writes `bytes` as its content.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to `path`, creating the file if absent.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Forces the file's content to durable storage (`fsync`).
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Forces a directory's entry table to durable storage — what makes
    /// a rename itself durable. Backends without directory sync may
    /// no-op.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to`, replacing `to` if it exists.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Creates `path` and all missing parents as directories.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// `true` iff a file exists at `path` (never counted as a fault
    /// point: existence probes don't mutate anything).
    fn exists(&self, path: &Path) -> bool;
}

/// The production backend: `std::fs` with real durability calls.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealFs;

impl StorageIo for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(bytes)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Directories can be opened and fsynced on Unix; elsewhere the
        // rename's durability is left to the OS (the recovery protocol
        // tolerates a lost rename: it just recovers the older state).
        #[cfg(unix)]
        {
            fs::File::open(path)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Ok(())
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// An in-memory filesystem: a mutex-guarded `path → bytes` map.
///
/// Directories are implicit (any path can be written); `sync` and
/// `sync_dir` verify the target exists and otherwise no-op — in-memory
/// bytes are as durable as they get. The crash tests share one `MemFs`
/// between a faulted writer and a clean recoverer via `Arc`, so the
/// recoverer sees exactly the bytes that "survived the crash",
/// including any torn prefix the fault injector left behind.
#[derive(Debug, Default)]
pub struct MemFs {
    files: Mutex<HashMap<PathBuf, Vec<u8>>>,
}

impl MemFs {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<PathBuf, Vec<u8>>> {
        // Nothing here panics while holding the lock, but a poisoned
        // map is still just a map.
        self.files.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A snapshot of every file, for test assertions.
    pub fn files(&self) -> HashMap<PathBuf, Vec<u8>> {
        self.lock().clone()
    }

    /// Overwrites one file directly — the corruption tests' way of
    /// flipping bytes "on disk" without going through the shim.
    pub fn install(&self, path: impl Into<PathBuf>, bytes: Vec<u8>) {
        self.lock().insert(path.into(), bytes);
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("no such file: {}", path.display()),
    )
}

impl StorageIo for MemFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.lock()
            .get(path)
            .cloned()
            .ok_or_else(|| not_found(path))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.lock().insert(path.to_path_buf(), bytes.to_vec());
        Ok(())
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.lock()
            .entry(path.to_path_buf())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        if self.lock().contains_key(path) {
            Ok(())
        } else {
            Err(not_found(path))
        }
    }

    fn sync_dir(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = self.lock();
        let bytes = files.remove(from).ok_or_else(|| not_found(from))?;
        files.insert(to.to_path_buf(), bytes);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.lock()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| not_found(path))
    }

    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.lock().contains_key(path)
    }
}

/// Which faults to inject, keyed by the global operation sequence
/// number maintained by [`FaultIo`] (operation 0 is the first call).
///
/// `exists` probes are not operations; every other [`StorageIo`] call
/// is exactly one, whether it succeeds or not — so an operation count
/// captured from a fault-free run enumerates every possible crash
/// point of that workload.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Die at this operation: the operation fails, and every later one
    /// fails too ([`io::ErrorKind::BrokenPipe`], "injected crash"). If
    /// the fatal operation is a `write` or `append`, the first
    /// [`torn_bytes`](Self::torn_bytes) bytes still reach the backend —
    /// a torn write.
    pub crash_at_op: Option<u64>,
    /// How many bytes of the crashing write land before the crash.
    pub torn_bytes: usize,
    /// Operations (by sequence number) that are syncs to fail *without*
    /// crashing — the "disk said no but the process lives" case the
    /// callers must surface as an error, not ignore.
    pub fail_sync_at: Vec<u64>,
    /// One read to truncate: `(operation, bytes returned)` — a short
    /// read, as from a concurrently-truncated or torn file.
    pub short_read: Option<(u64, usize)>,
}

/// Deterministic fault injection over any [`StorageIo`] backend.
///
/// Operations are numbered globally in call order; the [`FaultPlan`]
/// decides each one's fate. After the crash point, *every* operation
/// fails — the process is "dead" as far as storage is concerned, and
/// recovery happens through a fresh, un-faulted handle to the same
/// backend.
pub struct FaultIo {
    inner: Arc<dyn StorageIo>,
    plan: FaultPlan,
    ops: AtomicU64,
}

impl FaultIo {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: Arc<dyn StorageIo>, plan: FaultPlan) -> Self {
        FaultIo {
            inner,
            plan,
            ops: AtomicU64::new(0),
        }
    }

    /// Operations performed so far (failed ones included). A fault-free
    /// run's final count enumerates the crash points of its workload.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    fn crashed(err_op: u64, plan: &FaultPlan) -> bool {
        plan.crash_at_op.is_some_and(|at| err_op >= at)
    }

    fn injected_crash() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "injected crash")
    }

    /// Claims the next sequence number; `Err` when the machine is
    /// already dead *before* this operation.
    fn next_op(&self) -> io::Result<u64> {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        if self.plan.crash_at_op.is_some_and(|at| op > at) {
            return Err(Self::injected_crash());
        }
        Ok(op)
    }
}

impl StorageIo for FaultIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let op = self.next_op()?;
        if Self::crashed(op, &self.plan) {
            return Err(Self::injected_crash());
        }
        let bytes = self.inner.read(path)?;
        match self.plan.short_read {
            Some((at, keep)) if at == op => Ok(bytes[..keep.min(bytes.len())].to_vec()),
            _ => Ok(bytes),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let op = self.next_op()?;
        if Self::crashed(op, &self.plan) {
            let keep = self.plan.torn_bytes.min(bytes.len());
            if keep > 0 {
                self.inner.write(path, &bytes[..keep])?;
            }
            return Err(Self::injected_crash());
        }
        self.inner.write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let op = self.next_op()?;
        if Self::crashed(op, &self.plan) {
            let keep = self.plan.torn_bytes.min(bytes.len());
            if keep > 0 {
                self.inner.append(path, &bytes[..keep])?;
            }
            return Err(Self::injected_crash());
        }
        self.inner.append(path, bytes)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let op = self.next_op()?;
        if Self::crashed(op, &self.plan) {
            return Err(Self::injected_crash());
        }
        if self.plan.fail_sync_at.contains(&op) {
            return Err(io::Error::other("injected fsync failure"));
        }
        self.inner.sync(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let op = self.next_op()?;
        if Self::crashed(op, &self.plan) {
            return Err(Self::injected_crash());
        }
        if self.plan.fail_sync_at.contains(&op) {
            return Err(io::Error::other("injected fsync failure"));
        }
        self.inner.sync_dir(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let op = self.next_op()?;
        if Self::crashed(op, &self.plan) {
            // A crash at a rename leaves it not-yet-happened: rename is
            // atomic, so the torn state is simply the old name.
            return Err(Self::injected_crash());
        }
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let op = self.next_op()?;
        if Self::crashed(op, &self.plan) {
            return Err(Self::injected_crash());
        }
        self.inner.remove(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let op = self.next_op()?;
        if Self::crashed(op, &self.plan) {
            return Err(Self::injected_crash());
        }
        self.inner.create_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn memfs_round_trips_and_errors_are_typed() {
        let fs = MemFs::new();
        assert!(!fs.exists(&p("a")));
        assert_eq!(
            fs.read(&p("a")).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        fs.write(&p("a"), b"hello").unwrap();
        fs.append(&p("a"), b" world").unwrap();
        assert_eq!(fs.read(&p("a")).unwrap(), b"hello world");
        fs.sync(&p("a")).unwrap();
        assert_eq!(
            fs.sync(&p("zz")).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        fs.rename(&p("a"), &p("b")).unwrap();
        assert!(!fs.exists(&p("a")));
        assert_eq!(fs.read(&p("b")).unwrap(), b"hello world");
        // Appending to an absent file creates it, like O_CREAT|O_APPEND.
        fs.append(&p("c"), b"x").unwrap();
        assert_eq!(fs.read(&p("c")).unwrap(), b"x");
        fs.remove(&p("c")).unwrap();
        assert_eq!(
            fs.remove(&p("c")).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
    }

    #[test]
    fn realfs_round_trips_in_a_temp_dir() {
        let dir = std::env::temp_dir().join(format!("intext-fsio-{}", std::process::id()));
        let fs = RealFs;
        fs.create_dir_all(&dir).unwrap();
        let file = dir.join("t.bin");
        fs.write(&file, b"abc").unwrap();
        fs.append(&file, b"def").unwrap();
        fs.sync(&file).unwrap();
        fs.sync_dir(&dir).unwrap();
        assert_eq!(fs.read(&file).unwrap(), b"abcdef");
        let moved = dir.join("u.bin");
        fs.rename(&file, &moved).unwrap();
        assert!(fs.exists(&moved) && !fs.exists(&file));
        fs.remove(&moved).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_crash_tears_the_fatal_write_and_kills_everything_after() {
        let mem = Arc::new(MemFs::new());
        let io = FaultIo::new(
            mem.clone() as Arc<dyn StorageIo>,
            FaultPlan {
                crash_at_op: Some(1),
                torn_bytes: 2,
                ..FaultPlan::default()
            },
        );
        io.write(&p("a"), b"first").unwrap(); // op 0: survives
        let err = io.append(&p("a"), b"second").unwrap_err(); // op 1: torn
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // Two bytes of the fatal append landed; nothing after does.
        assert_eq!(mem.read(&p("a")).unwrap(), b"firstse");
        assert!(io.write(&p("b"), b"x").is_err());
        assert!(io.read(&p("a")).is_err());
        assert!(io.sync(&p("a")).is_err());
        assert_eq!(mem.read(&p("a")).unwrap(), b"firstse", "dead means dead");
        assert_eq!(
            io.ops(),
            5,
            "failed operations still consume sequence numbers"
        );
    }

    #[test]
    fn fault_free_run_counts_ops_and_injected_sync_failure_does_not_crash() {
        let mem = Arc::new(MemFs::new());
        let io = FaultIo::new(
            mem.clone() as Arc<dyn StorageIo>,
            FaultPlan {
                fail_sync_at: vec![1],
                short_read: Some((3, 2)),
                ..FaultPlan::default()
            },
        );
        io.write(&p("a"), b"abcdef").unwrap(); // op 0
        let err = io.sync(&p("a")).unwrap_err(); // op 1: fails, no crash
        assert_eq!(err.kind(), io::ErrorKind::Other);
        io.sync(&p("a")).unwrap(); // op 2: the machine lives on
        assert_eq!(io.read(&p("a")).unwrap(), b"ab"); // op 3: short read
        assert_eq!(io.read(&p("a")).unwrap(), b"abcdef"); // op 4: full again
        assert_eq!(io.ops(), 5);
    }
}
