//! The persistent circuit store: a versioned binary format for compiled
//! lineage artifacts.
//!
//! PR 2's cache made probability re-weighting a linear circuit walk —
//! but only within one process lifetime. This module makes the compiled
//! OBDD and d-D artifacts *durable*: [`PqeEngine::save_cache`] snapshots
//! the whole LRU into one byte stream, [`PqeEngine::load_cache`]
//! warm-starts a replica from it with zero compiles, and
//! [`PqeEngine::export_artifact`] / [`PqeEngine::import_artifact`] ship
//! individual circuits. The format is sound to persist because the
//! artifacts are canonical, *query-determined* objects: they encode the
//! lineage of `(φ, database shape)` and never the tuple probabilities,
//! so one stored circuit serves every re-weighting forever — exactly the
//! cache-key rationale, now applied across process boundaries.
//!
//! # Format (version 1)
//!
//! All integers are little-endian. One artifact blob:
//!
//! | field | bytes | meaning |
//! |---|---|---|
//! | magic | 8 | `b"INTXSTOR"` |
//! | version | 2 | format version (`u16`, currently 1) |
//! | kind | 1 | 0 = OBDD, 1 = d-D (2 = cache bundle, bundle files only) |
//! | `φ.n` | 1 | variable count of the truth table |
//! | `φ` words | 8·⌈2ⁿ/64⌉ | the canonical truth table |
//! | `k` | 1 | chain length of the database shape |
//! | domain | 4 | domain size (`u32`) |
//! | #tuples | 4 | tuple count (`u32`) |
//! | tuples | var | per tuple: tag (0=`R`,1=`S`,2=`T`) + constants |
//! | body | var | kind-specific node/gate tables (below) |
//! | checksum | 8 | FNV-1a 64 over every preceding byte |
//!
//! OBDD body: split variable (1), order length (4), order entries
//! (4 each), node count (4), nodes as `(level, lo, hi)` raw-`u32`
//! triples (12 each, terminals 0/1, node *i* encodes as *i* + 2), root
//! reference (4). The node table is written in *canonical postorder*
//! from the root (lo subtree before hi, children before parents) and
//! contains only reachable nodes — bytes are a pure function of the
//! reduced DAG, never of the arena history that built it (see
//! `canonical_obdd`). d-D body: gate count (4), gates as tag + payload
//! (0/1 = const ⊥/⊤, 2 = var + id, 3/4 = ∧/∨ + fan-in + inputs,
//! 5 = ¬ + input), root gate (4).
//!
//! A cache bundle is: magic, version, kind = 2, artifact count (4),
//! then per artifact a `u64` length followed by a complete single
//! artifact blob (each independently checksummed and importable), and a
//! final FNV-1a 64 checksum over the whole bundle. Artifacts are stored
//! in ascending last-used order, so loading a snapshot replays the LRU
//! recency ranking of the engine that saved it.
//!
//! An **update delta** (kind = 3, added under the same format version —
//! additive kinds do not change existing layouts) ships a live tuple
//! update instead of a whole circuit: the key section names the
//! *pre-update* `(φ, shape)` and the body is one operation:
//!
//! | field | bytes | meaning |
//! |---|---|---|
//! | op | 1 | 0 = insert, 1 = remove |
//! | payload | var | insert: tuple tag + constants; remove: tuple id (`u32`) |
//!
//! A replica holding the pre-update artifact applies the delta by
//! incremental patching ([`PqeEngine::apply_delta`]); one without it
//! falls back to a full compile of the post-update shape. Either way the
//! resulting artifact is bit-identical to a fresh compile, so deltas are
//! a bandwidth optimization, never a semantic one.
//!
//! # Totality
//!
//! Deserialization is a **total function**: every malformed input —
//! truncated, wrong magic, unknown version, checksum mismatch, invalid
//! truth table or database shape, dangling or non-topological node and
//! gate references, order violations, unreduced or duplicate nodes,
//! out-of-range roots, foreign variables, a kind that contradicts where
//! `φ` sits on the Figure 1 map — returns a typed [`StoreError`], never
//! a panic. A decoded artifact is revalidated against its recomputed
//! [`CacheKey`] material before it enters the LRU, so the gate-budget
//! invariant and bit-identical evaluation survive the round trip.
//! `DESIGN.md` §5 states the byte-level contract and the evolution
//! policy.
//!
//! [`PqeEngine::save_cache`]: crate::PqeEngine::save_cache
//! [`PqeEngine::load_cache`]: crate::PqeEngine::load_cache
//! [`PqeEngine::export_artifact`]: crate::PqeEngine::export_artifact
//! [`PqeEngine::import_artifact`]: crate::PqeEngine::import_artifact
//! [`PqeEngine::apply_delta`]: crate::PqeEngine::apply_delta

use std::fmt;
use std::sync::Arc;

use intext_boolfn::BoolFn;
use intext_circuits::{Circuit, CircuitError, Gate, GateId, NodeRef, ObddError, ObddManager};
use intext_core::{classify, Fragmentation, Region};
use intext_lineage::DegenerateLineage;
use intext_tid::{Database, DatabaseError, TupleDesc};

use crate::cache::{Artifact, CacheKey};

/// The 8-byte magic every store file starts with.
pub const MAGIC: [u8; 8] = *b"INTXSTOR";

/// The format version this build writes and the only one it reads.
/// Evolution policy (`DESIGN.md` §5): bump on any layout change; readers
/// reject unknown versions with [`StoreError::UnsupportedVersion`]
/// rather than guessing.
pub const FORMAT_VERSION: u16 = 1;

/// Kind tag of a serialized artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactKind {
    /// Proposition 3.7's reduced OBDD (degenerate `φ`).
    Obdd,
    /// Theorem 5.2's deterministic decomposable circuit (zero-Euler `φ`).
    Dd,
}

impl ArtifactKind {
    fn tag(self) -> u8 {
        match self {
            ArtifactKind::Obdd => KIND_OBDD,
            ArtifactKind::Dd => KIND_DD,
        }
    }
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactKind::Obdd => write!(f, "OBDD"),
            ArtifactKind::Dd => write!(f, "d-D circuit"),
        }
    }
}

const KIND_OBDD: u8 = 0;
const KIND_DD: u8 = 1;
const KIND_BUNDLE: u8 = 2;
const KIND_DELTA: u8 = 3;

/// One live tuple update, the unit the delta format ships. Probability
/// changes are deliberately absent: probabilities are not part of any
/// artifact or cache key, so a reweight has no structural delta to ship.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TupleUpdate {
    /// Insert a tuple into the shape (it takes the next dense id).
    Insert {
        /// The tuple to insert.
        desc: TupleDesc,
    },
    /// Remove the tuple with this raw id (later ids shift down by one).
    Remove {
        /// Raw [`TupleId`](intext_tid::TupleId) value of the victim.
        id: u32,
    },
}

/// Smallest possible blob: magic + version + kind + checksum.
const MIN_LEN: usize = 8 + 2 + 1 + 8;

/// Why a store byte stream was rejected. Deserialization is total:
/// every one of these is a returned value, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The input ended before a declared field.
    Truncated,
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic,
    /// The version field names a format this build does not speak.
    UnsupportedVersion(u16),
    /// The kind byte is none of OBDD / d-D / bundle.
    BadKind(u8),
    /// An artifact was expected but the stream holds a bundle, or vice
    /// versa.
    WrongContainer {
        /// What the caller asked to decode.
        expected: &'static str,
        /// What the kind byte says the stream is.
        got: &'static str,
    },
    /// The trailing FNV-1a 64 checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the stream.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// Bytes remain between the end of the body and the checksum.
    TrailingBytes {
        /// How many unconsumed bytes.
        extra: usize,
    },
    /// The truth-table field is not a valid [`BoolFn`] (variable count
    /// out of range or set bits beyond the `2^n` valuations).
    BadPhi,
    /// The shape declares chain length `k = 0`, which no `H`-query
    /// vocabulary has.
    ZeroChainLength,
    /// A tuple tag byte is none of `R`/`S`/`T`.
    BadTupleTag(u8),
    /// A gate tag byte is none of the six gate encodings.
    BadGateTag(u8),
    /// A delta op byte is neither insert nor remove.
    BadDeltaOp(u8),
    /// A tuple was rejected while rebuilding the database shape
    /// (bad relation index, out-of-domain constant, duplicate).
    BadTuple(DatabaseError),
    /// The OBDD node table violates a structural invariant.
    Obdd(ObddError),
    /// The gate table violates a structural invariant.
    Circuit(CircuitError),
    /// The root reference points outside the node/gate table.
    RootOutOfRange {
        /// The raw root reference.
        root: u32,
        /// Number of nodes/gates actually present.
        len: usize,
    },
    /// The OBDD split variable exceeds the shape's chain length.
    SplitOutOfRange {
        /// The stored split variable.
        split: u8,
        /// The shape's `k`.
        k: u8,
    },
    /// A circuit/OBDD variable is not a tuple id of the stored shape.
    ForeignVariable {
        /// The offending variable.
        var: u32,
        /// Tuple count of the shape (valid ids are `0..tuples`).
        tuples: usize,
    },
    /// The artifact kind contradicts where `φ` sits on the Figure 1
    /// map: the engine compiles an OBDD exactly for degenerate `φ` and
    /// a d-D exactly for nondegenerate zero-Euler `φ`, so anything else
    /// is an artifact this engine could never have produced.
    PlanMismatch {
        /// The stored artifact kind.
        kind: ArtifactKind,
        /// Where the stored `φ` actually classifies.
        region: Region,
    },
    /// `export_artifact` found no cached artifact for `(φ, shape)`.
    NotCached,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Truncated => write!(f, "input truncated"),
            StoreError::BadMagic => write!(f, "bad magic (not an intext store file)"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StoreError::BadKind(k) => write!(f, "unknown artifact kind {k}"),
            StoreError::WrongContainer { expected, got } => {
                write!(f, "expected {expected}, got {got}")
            }
            StoreError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            StoreError::TrailingBytes { extra } => {
                write!(f, "{extra} unconsumed bytes before the checksum")
            }
            StoreError::BadPhi => write!(f, "invalid truth table"),
            StoreError::ZeroChainLength => write!(f, "shape declares k = 0"),
            StoreError::BadTupleTag(t) => write!(f, "unknown tuple tag {t}"),
            StoreError::BadGateTag(t) => write!(f, "unknown gate tag {t}"),
            StoreError::BadDeltaOp(op) => write!(f, "unknown delta op {op}"),
            StoreError::BadTuple(e) => write!(f, "invalid shape tuple: {e}"),
            StoreError::Obdd(e) => write!(f, "invalid OBDD table: {e}"),
            StoreError::Circuit(e) => write!(f, "invalid gate table: {e}"),
            StoreError::RootOutOfRange { root, len } => {
                write!(f, "root {root} outside a table of {len}")
            }
            StoreError::SplitOutOfRange { split, k } => {
                write!(f, "split variable {split} exceeds k = {k}")
            }
            StoreError::ForeignVariable { var, tuples } => {
                write!(
                    f,
                    "variable {var} is not a tuple id (shape has {tuples} tuples)"
                )
            }
            StoreError::PlanMismatch { kind, region } => {
                write!(f, "{kind} artifact for a φ classified {region:?}")
            }
            StoreError::NotCached => write!(f, "no cached artifact for this (φ, shape)"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ObddError> for StoreError {
    fn from(e: ObddError) -> Self {
        StoreError::Obdd(e)
    }
}

impl From<CircuitError> for StoreError {
    fn from(e: CircuitError) -> Self {
        StoreError::Circuit(e)
    }
}

/// FNV-1a 64 over a byte slice — dependency-free corruption detection.
/// Not cryptographic: the checksum guards against bit rot and truncation,
/// not against an adversary forging a semantically wrong circuit (no
/// checksum could; see `DESIGN.md` §5 on the trust model).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    fn with_header(kind: u8) -> Writer {
        let mut w = Writer { bytes: Vec::new() };
        w.bytes.extend_from_slice(&MAGIC);
        w.u16(FORMAT_VERSION);
        w.u8(kind);
        w
    }

    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends the trailing checksum and yields the finished blob.
    fn seal(mut self) -> Vec<u8> {
        let checksum = fnv1a(&self.bytes);
        self.u64(checksum);
        self.bytes
    }

    fn key(&mut self, key: &CacheKey) {
        let phi = key.phi();
        self.u8(phi.num_vars());
        for &word in phi.words() {
            self.u64(word);
        }
        self.u8(key.k());
        self.u32(key.domain_size());
        self.u32(key.tuples().len() as u32);
        for &tuple in key.tuples() {
            match tuple {
                TupleDesc::R(a) => {
                    self.u8(0);
                    self.u32(a);
                }
                TupleDesc::S(i, a, b) => {
                    self.u8(1);
                    self.u8(i);
                    self.u32(a);
                    self.u32(b);
                }
                TupleDesc::T(b) => {
                    self.u8(2);
                    self.u32(b);
                }
            }
        }
    }
}

/// The sub-arena reachable from `root`, renumbered into canonical
/// postorder (lo subtree before hi, children before parents), as the
/// `(level, lo_raw, hi_raw)` triples the OBDD body serializes plus the
/// renumbered root reference.
///
/// Serialized bytes must be a pure function of the *reduced DAG*, not
/// of the arena history that built it: a fresh compile leaves
/// backward-unroll intermediates in its arena, while an incremental
/// patch leaves transplanted suffix checkpoints — two histories, one
/// canonical OBDD. The byte-identity guarantee (a patched artifact
/// serializes exactly like a fresh compile, `DESIGN.md` §9) hinges on
/// writing only that DAG in a history-free order; dropping dead nodes
/// also keeps blobs minimal.
fn canonical_obdd(manager: &ObddManager, root: NodeRef) -> (Vec<(u32, u32, u32)>, u32) {
    let arena: Vec<(u32, NodeRef, NodeRef)> = manager.node_entries().collect();
    // Arena index -> canonical raw id; `u32::MAX` marks "not visited".
    let mut map: Vec<u32> = vec![u32::MAX; arena.len()];
    let renum = |map: &[u32], r: NodeRef| {
        if r.is_terminal() {
            r.to_raw()
        } else {
            map[(r.to_raw() - 2) as usize]
        }
    };
    let mut out = Vec::new();
    let mut stack = vec![(root, false)];
    while let Some((node, expanded)) = stack.pop() {
        if node.is_terminal() {
            continue;
        }
        let idx = (node.to_raw() - 2) as usize;
        if map[idx] != u32::MAX {
            continue;
        }
        let (level, lo, hi) = arena[idx];
        if expanded {
            map[idx] = out.len() as u32 + 2;
            out.push((level, renum(&map, lo), renum(&map, hi)));
        } else {
            stack.push((node, true));
            stack.push((hi, false));
            stack.push((lo, false));
        }
    }
    (out, renum(&map, root))
}

/// Serializes one artifact under its cache key into a standalone blob.
pub(crate) fn encode_artifact(key: &CacheKey, artifact: &Artifact) -> Vec<u8> {
    let kind = match artifact {
        Artifact::Obdd(_) => ArtifactKind::Obdd,
        Artifact::Dd(_) => ArtifactKind::Dd,
    };
    let mut w = Writer::with_header(kind.tag());
    w.key(key);
    match artifact {
        Artifact::Obdd(lin) => {
            w.u8(lin.split);
            let order = lin.manager.order();
            w.u32(order.len() as u32);
            for &v in order {
                w.u32(v);
            }
            let (entries, root) = canonical_obdd(&lin.manager, lin.root);
            w.u32(entries.len() as u32);
            for (level, lo, hi) in entries {
                w.u32(level);
                w.u32(lo);
                w.u32(hi);
            }
            w.u32(root);
        }
        Artifact::Dd(dd) => {
            let gates = dd.circuit.gates();
            w.u32(gates.len() as u32);
            for gate in gates {
                match gate {
                    Gate::Const(false) => w.u8(0),
                    Gate::Const(true) => w.u8(1),
                    Gate::Var(v) => {
                        w.u8(2);
                        w.u32(*v);
                    }
                    Gate::And(xs) | Gate::Or(xs) => {
                        w.u8(if matches!(gate, Gate::And(_)) { 3 } else { 4 });
                        w.u32(xs.len() as u32);
                        for x in xs {
                            w.u32(x.0);
                        }
                    }
                    Gate::Not(x) => {
                        w.u8(5);
                        w.u32(x.0);
                    }
                }
            }
            w.u32(dd.root.0);
        }
    }
    w.seal()
}

/// Serializes a live tuple update against its pre-update key into a
/// delta blob.
pub(crate) fn encode_delta(key: &CacheKey, update: &TupleUpdate) -> Vec<u8> {
    let mut w = Writer::with_header(KIND_DELTA);
    w.key(key);
    match update {
        TupleUpdate::Insert { desc } => {
            w.u8(0);
            match *desc {
                TupleDesc::R(a) => {
                    w.u8(0);
                    w.u32(a);
                }
                TupleDesc::S(i, a, b) => {
                    w.u8(1);
                    w.u8(i);
                    w.u32(a);
                    w.u32(b);
                }
                TupleDesc::T(b) => {
                    w.u8(2);
                    w.u32(b);
                }
            }
        }
        TupleUpdate::Remove { id } => {
            w.u8(1);
            w.u32(*id);
        }
    }
    w.seal()
}

/// Serializes a cache snapshot (entries already in ascending last-used
/// order) into a bundle blob.
pub(crate) fn encode_bundle(entries: &[(&CacheKey, &Arc<Artifact>)]) -> Vec<u8> {
    let mut w = Writer::with_header(KIND_BUNDLE);
    w.u32(entries.len() as u32);
    for (key, artifact) in entries {
        let blob = encode_artifact(key, artifact);
        w.u64(blob.len() as u64);
        w.bytes.extend_from_slice(&blob);
    }
    w.seal()
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// Cursor over the checksummed content of a blob (checksum already
/// verified and excluded). Every read is bounds-checked and returns
/// [`StoreError::Truncated`] past the end — the backbone of totality.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).ok_or(StoreError::Truncated)?;
        if end > self.bytes.len() {
            return Err(StoreError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn done(&self) -> Result<(), StoreError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StoreError::TrailingBytes {
                extra: self.remaining(),
            })
        }
    }
}

/// Verifies magic, version and trailing checksum; returns the kind byte
/// and a reader over the content between the header and the checksum.
fn open(bytes: &[u8]) -> Result<(u8, Reader<'_>), StoreError> {
    if bytes.len() < MIN_LEN {
        return Err(StoreError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[8..10].try_into().expect("2 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let content = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    let computed = fnv1a(content);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    let kind = bytes[10];
    Ok((
        kind,
        Reader {
            bytes: content,
            pos: 11,
        },
    ))
}

/// Reads and revalidates the cache-key material: the truth table must be
/// a canonical [`BoolFn`] and the tuples must rebuild into a legal
/// [`Database`] — so a loaded key is exactly the key a live engine would
/// compute for that `(φ, shape)`.
fn read_key(r: &mut Reader<'_>) -> Result<(BoolFn, Database), StoreError> {
    let n = r.u8()?;
    if !(1..=intext_boolfn::MAX_VARS).contains(&n) {
        return Err(StoreError::BadPhi);
    }
    let word_count = BoolFn::word_count(n);
    let mut words = Vec::with_capacity(word_count);
    for _ in 0..word_count {
        words.push(r.u64()?);
    }
    let phi = BoolFn::from_words(n, words).ok_or(StoreError::BadPhi)?;
    let k = r.u8()?;
    if k == 0 {
        return Err(StoreError::ZeroChainLength);
    }
    let domain_size = r.u32()?;
    let mut db = Database::new(k, domain_size);
    let tuple_count = r.u32()?;
    for _ in 0..tuple_count {
        let tuple = match r.u8()? {
            0 => TupleDesc::R(r.u32()?),
            1 => TupleDesc::S(r.u8()?, r.u32()?, r.u32()?),
            2 => TupleDesc::T(r.u32()?),
            tag => return Err(StoreError::BadTupleTag(tag)),
        };
        db.insert(tuple).map_err(StoreError::BadTuple)?;
    }
    Ok((phi, db))
}

/// Decodes and fully validates a standalone artifact blob, yielding the
/// recomputed cache key and the reconstructed artifact.
pub(crate) fn decode_artifact(bytes: &[u8]) -> Result<(CacheKey, Artifact), StoreError> {
    let (kind, mut r) = open(bytes)?;
    let kind = match kind {
        KIND_OBDD => ArtifactKind::Obdd,
        KIND_DD => ArtifactKind::Dd,
        KIND_BUNDLE => {
            return Err(StoreError::WrongContainer {
                expected: "artifact",
                got: "cache bundle",
            })
        }
        KIND_DELTA => {
            return Err(StoreError::WrongContainer {
                expected: "artifact",
                got: "update delta",
            })
        }
        other => return Err(StoreError::BadKind(other)),
    };
    let (phi, db) = read_key(&mut r)?;
    // Kind-vs-plan revalidation: the engine compiles an OBDD exactly for
    // degenerate φ and a d-D exactly for nondegenerate zero-Euler φ. An
    // artifact whose kind contradicts φ's region is one this engine
    // could never have written, so it never enters the cache.
    let region = classify(&phi);
    match (kind, region) {
        (ArtifactKind::Obdd, Region::DegenerateObdd) | (ArtifactKind::Dd, Region::ZeroEulerDD) => {}
        _ => return Err(StoreError::PlanMismatch { kind, region }),
    }
    let artifact = match kind {
        ArtifactKind::Obdd => {
            let split = r.u8()?;
            if split > db.k() {
                return Err(StoreError::SplitOutOfRange { split, k: db.k() });
            }
            let order_len = r.u32()? as usize;
            let mut order = Vec::with_capacity(order_len.min(r.remaining() / 4));
            for _ in 0..order_len {
                let var = r.u32()?;
                if var as usize >= db.len() {
                    return Err(StoreError::ForeignVariable {
                        var,
                        tuples: db.len(),
                    });
                }
                order.push(var);
            }
            let node_count = r.u32()? as usize;
            let mut entries = Vec::with_capacity(node_count.min(r.remaining() / 12));
            for _ in 0..node_count {
                let level = r.u32()?;
                let lo = NodeRef::from_raw(r.u32()?);
                let hi = NodeRef::from_raw(r.u32()?);
                entries.push((level, lo, hi));
            }
            let manager = ObddManager::from_parts(order, &entries)?;
            let root = r.u32()?;
            if root as usize >= entries.len() + 2 {
                return Err(StoreError::RootOutOfRange {
                    root,
                    len: entries.len(),
                });
            }
            // `new` builds a trace-less lineage: a deserialized OBDD can
            // be walked and shipped but not incrementally patched — the
            // unroll trace is a compile-time object and is not persisted
            // (`DESIGN.md` §9).
            Artifact::Obdd(DegenerateLineage::new(
                manager,
                NodeRef::from_raw(root),
                split,
            ))
        }
        ArtifactKind::Dd => {
            let gate_count = r.u32()? as usize;
            let mut gates = Vec::with_capacity(gate_count.min(r.remaining()));
            for _ in 0..gate_count {
                let gate = match r.u8()? {
                    0 => Gate::Const(false),
                    1 => Gate::Const(true),
                    2 => {
                        let var = r.u32()?;
                        if var as usize >= db.len() {
                            return Err(StoreError::ForeignVariable {
                                var,
                                tuples: db.len(),
                            });
                        }
                        Gate::Var(var)
                    }
                    tag @ (3 | 4) => {
                        let fanin = r.u32()? as usize;
                        let mut inputs = Vec::with_capacity(fanin.min(r.remaining() / 4));
                        for _ in 0..fanin {
                            inputs.push(GateId(r.u32()?));
                        }
                        if tag == 3 {
                            Gate::And(inputs)
                        } else {
                            Gate::Or(inputs)
                        }
                    }
                    5 => Gate::Not(GateId(r.u32()?)),
                    tag => return Err(StoreError::BadGateTag(tag)),
                };
                gates.push(gate);
            }
            let len = gates.len();
            let circuit = Circuit::from_gates(gates)?;
            let root = r.u32()?;
            if root as usize >= len {
                return Err(StoreError::RootOutOfRange { root, len });
            }
            // φ classified ZeroEulerDD above, so the fragmentation the
            // compiler would have produced exists and is recomputed
            // deterministically from the truth table alone.
            let fragmentation =
                Fragmentation::of(&phi).expect("zero-Euler φ always fragments (Proposition 5.1)");
            Artifact::Dd(intext_core::CompiledLineage {
                circuit,
                root: GateId(root),
                fragmentation,
                // No per-leaf OBDDs survive serialization: a loaded d-D
                // is walkable but not patchable (`DESIGN.md` §9).
                leaf_lineages: Vec::new(),
            })
        }
    };
    r.done()?;
    let key = CacheKey::new(&phi, &db);
    Ok((key, artifact))
}

/// Decodes and validates an update-delta blob, yielding the pre-update
/// `(φ, shape)` and the shipped operation. The shape is revalidated the
/// same way artifact keys are; whether the *operation* is legal on that
/// shape (duplicate insert, unknown remove id) is checked when it is
/// applied, because that is a property of the pairing, not of the bytes.
pub(crate) fn decode_delta(bytes: &[u8]) -> Result<(BoolFn, Database, TupleUpdate), StoreError> {
    let (kind, mut r) = open(bytes)?;
    match kind {
        KIND_DELTA => {}
        KIND_OBDD | KIND_DD => {
            return Err(StoreError::WrongContainer {
                expected: "update delta",
                got: "artifact",
            })
        }
        KIND_BUNDLE => {
            return Err(StoreError::WrongContainer {
                expected: "update delta",
                got: "cache bundle",
            })
        }
        other => return Err(StoreError::BadKind(other)),
    }
    let (phi, db) = read_key(&mut r)?;
    let update = match r.u8()? {
        0 => {
            let desc = match r.u8()? {
                0 => TupleDesc::R(r.u32()?),
                1 => TupleDesc::S(r.u8()?, r.u32()?, r.u32()?),
                2 => TupleDesc::T(r.u32()?),
                tag => return Err(StoreError::BadTupleTag(tag)),
            };
            TupleUpdate::Insert { desc }
        }
        1 => TupleUpdate::Remove { id: r.u32()? },
        op => return Err(StoreError::BadDeltaOp(op)),
    };
    r.done()?;
    Ok((phi, db, update))
}

/// Decodes a cache bundle into its artifacts, in stored (ascending
/// last-used) order. All-or-nothing: the first malformed entry rejects
/// the whole bundle, so a warm start never half-populates the cache.
pub(crate) fn decode_bundle(bytes: &[u8]) -> Result<Vec<(CacheKey, Artifact)>, StoreError> {
    let (kind, mut r) = open(bytes)?;
    match kind {
        KIND_BUNDLE => {}
        KIND_OBDD | KIND_DD => {
            return Err(StoreError::WrongContainer {
                expected: "cache bundle",
                got: "artifact",
            })
        }
        KIND_DELTA => {
            return Err(StoreError::WrongContainer {
                expected: "cache bundle",
                got: "update delta",
            })
        }
        other => return Err(StoreError::BadKind(other)),
    }
    let count = r.u32()? as usize;
    let mut artifacts = Vec::with_capacity(count.min(r.remaining() / MIN_LEN));
    for _ in 0..count {
        let len = usize::try_from(r.u64()?).map_err(|_| StoreError::Truncated)?;
        let blob = r.take(len)?;
        artifacts.push(decode_artifact(blob)?);
    }
    r.done()?;
    Ok(artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::{phi9, BoolFn};
    use intext_numeric::BigRational;
    use intext_query::HQuery;
    use intext_tid::{complete_database, uniform_tid};

    use crate::{Plan, PqeEngine};

    fn half() -> BigRational {
        BigRational::from_ratio(1, 2)
    }

    /// A compiled d-D artifact (φ9) and its key.
    fn dd_blob() -> Vec<u8> {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        engine.evaluate(&q, &tid).unwrap();
        engine.export_artifact(&q, tid.database()).unwrap()
    }

    /// A compiled OBDD artifact (degenerate φ) and its key.
    fn obdd_blob() -> Vec<u8> {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(BoolFn::var(3, 0));
        let tid = uniform_tid(complete_database(2, 2), half());
        assert_eq!(engine.plan(&q, &tid), Ok(Plan::Obdd));
        engine.evaluate(&q, &tid).unwrap();
        engine.export_artifact(&q, tid.database()).unwrap()
    }

    #[test]
    fn checksum_is_fnv1a_reference_values() {
        // Reference vectors: FNV-1a 64 of "" and "a".
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn artifact_blobs_round_trip() {
        for blob in [dd_blob(), obdd_blob()] {
            let (key, artifact) = decode_artifact(&blob).unwrap();
            // Re-encoding the decoded artifact reproduces the bytes:
            // the encoding is canonical, which is what lets CI pin
            // golden fixtures byte-for-byte.
            assert_eq!(encode_artifact(&key, &artifact), blob);
        }
    }

    #[test]
    fn bundle_entries_are_importable_blobs() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        for domain in 1..=2 {
            let tid = uniform_tid(complete_database(3, domain), half());
            engine.evaluate(&q, &tid).unwrap();
        }
        let bundle = engine.save_cache();
        let decoded = decode_bundle(&bundle).unwrap();
        assert_eq!(decoded.len(), 2);
        // Saving is deterministic (recency order, not HashMap order).
        assert_eq!(engine.save_cache(), bundle);
        // And a bundle is not an artifact, nor vice versa.
        assert_eq!(
            decode_artifact(&bundle).unwrap_err(),
            StoreError::WrongContainer {
                expected: "artifact",
                got: "cache bundle"
            }
        );
        assert_eq!(
            decode_bundle(&dd_blob()).unwrap_err(),
            StoreError::WrongContainer {
                expected: "cache bundle",
                got: "artifact"
            }
        );
    }

    #[test]
    fn delta_blobs_round_trip_and_validate() {
        let (phi, db) = dd_ctx();
        let key = CacheKey::new(&phi, &db);
        for update in [
            TupleUpdate::Insert {
                desc: TupleDesc::S(2, 0, 0),
            },
            TupleUpdate::Remove { id: 3 },
        ] {
            let bytes = encode_delta(&key, &update);
            let (phi2, db2, update2) = decode_delta(&bytes).unwrap();
            assert_eq!(CacheKey::new(&phi2, &db2), key, "key section survives");
            assert_eq!(update2, update);
            // Canonical encoding, like artifacts: re-encode reproduces
            // the bytes, so delta fixtures can be pinned byte-for-byte.
            assert_eq!(encode_delta(&CacheKey::new(&phi2, &db2), &update2), bytes);
        }

        // A delta is not an artifact or a bundle, and vice versa.
        let delta = encode_delta(
            &key,
            &TupleUpdate::Insert {
                desc: TupleDesc::R(0),
            },
        );
        assert_eq!(
            decode_artifact(&delta).unwrap_err(),
            StoreError::WrongContainer {
                expected: "artifact",
                got: "update delta"
            }
        );
        assert_eq!(
            decode_bundle(&delta).unwrap_err(),
            StoreError::WrongContainer {
                expected: "cache bundle",
                got: "update delta"
            }
        );
        assert_eq!(
            decode_delta(&dd_blob()).unwrap_err(),
            StoreError::WrongContainer {
                expected: "update delta",
                got: "artifact"
            }
        );

        // Malformed bodies: unknown op, unknown tuple tag, truncation,
        // trailing bytes — all typed errors, never panics.
        let body = |bytes: &[u8]| decode_delta(&blob(KIND_DELTA, &phi, &db, bytes)).unwrap_err();
        assert_eq!(body(&[9]), StoreError::BadDeltaOp(9));
        assert_eq!(body(&[0, 7]), StoreError::BadTupleTag(7));
        assert_eq!(body(&[1]), StoreError::Truncated);
        assert_eq!(
            body(&[1, 0, 0, 0, 0, 0xaa]),
            StoreError::TrailingBytes { extra: 1 }
        );
    }

    #[test]
    fn empty_and_tiny_inputs_are_truncated_not_panics() {
        for len in 0..MIN_LEN {
            let bytes = vec![0u8; len];
            assert_eq!(decode_artifact(&bytes).unwrap_err(), StoreError::Truncated);
            assert_eq!(decode_bundle(&bytes).unwrap_err(), StoreError::Truncated);
        }
    }

    /// A blob with a hand-crafted body after a *valid* key section:
    /// full control over every body byte, correctly checksummed, so the
    /// decoder's structural validation (not the checksum) is what
    /// rejects it.
    fn blob(kind: u8, phi: &BoolFn, db: &Database, body: &[u8]) -> Vec<u8> {
        let mut w = Writer::with_header(kind);
        w.key(&CacheKey::new(phi, db));
        w.bytes.extend_from_slice(body);
        w.seal()
    }

    /// Degenerate φ on a tiny shape (for OBDD-kind bodies).
    fn obdd_ctx() -> (BoolFn, Database) {
        (BoolFn::var(2, 0), complete_database(1, 1))
    }

    /// Zero-Euler nondegenerate φ on a tiny shape (for d-D bodies).
    fn dd_ctx() -> (BoolFn, Database) {
        (phi9(), complete_database(3, 1))
    }

    fn u32s(values: &[u32]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn corruption_matrix_key_section() {
        let (phi, db) = dd_ctx();

        // Unknown artifact kind byte.
        assert_eq!(
            decode_artifact(&blob(9, &phi, &db, &[])).unwrap_err(),
            StoreError::BadKind(9)
        );

        // φ.n = 0 and n > MAX_VARS: invalid truth table.
        for n in [0u8, intext_boolfn::MAX_VARS + 1] {
            let mut w = Writer::with_header(KIND_DD);
            w.u8(n);
            assert_eq!(decode_artifact(&w.seal()).unwrap_err(), StoreError::BadPhi);
        }

        // k = 0: no H-query vocabulary.
        let mut w = Writer::with_header(KIND_DD);
        w.u8(phi.num_vars());
        for &word in phi.words() {
            w.u64(word);
        }
        w.u8(0); // k
        assert_eq!(
            decode_artifact(&w.seal()).unwrap_err(),
            StoreError::ZeroChainLength
        );

        // Unknown tuple tag / tuple rejected by the shape validator.
        let bad_shapes: [(&[u8], StoreError); 3] = [
            (&[7], StoreError::BadTupleTag(7)),
            (
                &[0, 99, 0, 0, 0],
                StoreError::BadTuple(intext_tid::DatabaseError::BadConstant(99)),
            ),
            (
                &[1, 9, 0, 0, 0, 0, 0, 0, 0, 0],
                StoreError::BadTuple(intext_tid::DatabaseError::BadRelationIndex(9)),
            ),
        ];
        for (tuple_bytes, expected) in bad_shapes {
            let mut w = Writer::with_header(KIND_DD);
            w.u8(phi.num_vars());
            for &word in phi.words() {
                w.u64(word);
            }
            w.u8(3); // k
            w.u32(1); // domain size
            w.u32(1); // one tuple
            w.bytes.extend_from_slice(tuple_bytes);
            assert_eq!(decode_artifact(&w.seal()).unwrap_err(), expected);
        }

        // Kind contradicts φ's region, both ways (checked before the
        // body, so an empty body suffices).
        let (deg, deg_db) = obdd_ctx();
        assert_eq!(
            decode_artifact(&blob(KIND_DD, &deg, &deg_db, &[])).unwrap_err(),
            StoreError::PlanMismatch {
                kind: ArtifactKind::Dd,
                region: Region::DegenerateObdd
            }
        );
        assert_eq!(
            decode_artifact(&blob(KIND_OBDD, &phi, &db, &[])).unwrap_err(),
            StoreError::PlanMismatch {
                kind: ArtifactKind::Obdd,
                region: Region::ZeroEulerDD
            }
        );
    }

    #[test]
    fn corruption_matrix_obdd_body() {
        // The shape has 3 tuples: R(0), S1(0,0), T(0).
        let (phi, db) = obdd_ctx();
        let obdd = |body: &[u8]| decode_artifact(&blob(KIND_OBDD, &phi, &db, body)).unwrap_err();

        // Split variable beyond k.
        assert_eq!(obdd(&[9]), StoreError::SplitOutOfRange { split: 9, k: 1 });

        // Order entry that is not a tuple id of the shape.
        let mut body = vec![1u8]; // split
        body.extend(u32s(&[1, 99])); // order_len = 1, order = [99]
        assert_eq!(
            obdd(&body),
            StoreError::ForeignVariable { var: 99, tuples: 3 }
        );

        // Structural OBDD violations surface as their ObddError. Each
        // body: split, order_len, order…, node_count, (level, lo, hi)…
        let cases: [(&[u32], ObddError); 5] = [
            // Duplicate variable in the order.
            (&[2, 0, 0, 0], ObddError::DuplicateVariable(0)),
            // Node level outside the order.
            (
                &[1, 0, 1, 7, 0, 1],
                ObddError::LevelOutOfRange { node: 0, level: 7 },
            ),
            // Forward child reference.
            (
                &[1, 0, 1, 0, 2, 1],
                ObddError::DanglingChild { node: 0, child: 2 },
            ),
            // lo == hi.
            (&[1, 0, 1, 0, 1, 1], ObddError::RedundantNode { node: 0 }),
            // Two identical nodes.
            (
                &[2, 0, 1, 2, 1, 0, 1, 1, 0, 1],
                ObddError::DuplicateNode { node: 1 },
            ),
        ];
        for (words, expected) in cases {
            let mut body = vec![1u8];
            body.extend(u32s(words));
            assert_eq!(obdd(&body), StoreError::Obdd(expected), "{words:?}");
        }

        // Order violation: child at the same level as its parent.
        let mut body = vec![1u8];
        body.extend(u32s(&[2, 0, 1, 2, 0, 0, 1, 0, 2, 1]));
        assert_eq!(
            obdd(&body),
            StoreError::Obdd(ObddError::OrderViolation { node: 1 })
        );

        // Root outside the node table.
        let mut body = vec![1u8];
        body.extend(u32s(&[1, 0, 1, 0, 0, 1, 5]));
        assert_eq!(obdd(&body), StoreError::RootOutOfRange { root: 5, len: 1 });

        // Trailing garbage between body and checksum.
        let mut body = vec![1u8];
        body.extend(u32s(&[1, 0, 1, 0, 0, 1, 2]));
        body.push(0xaa);
        assert_eq!(obdd(&body), StoreError::TrailingBytes { extra: 1 });
    }

    #[test]
    fn corruption_matrix_dd_body() {
        let (phi, db) = dd_ctx();
        let dd = |body: &[u8]| decode_artifact(&blob(KIND_DD, &phi, &db, body)).unwrap_err();

        // Unknown gate tag.
        assert_eq!(dd(&[1, 0, 0, 0, 9]), StoreError::BadGateTag(9));

        // Var gate naming a non-tuple variable.
        let mut body = u32s(&[1]);
        body.push(2); // Var
        body.extend(u32s(&[42]));
        assert_eq!(
            dd(&body),
            StoreError::ForeignVariable { var: 42, tuples: 5 }
        );

        // Not gate with a forward (self) input.
        let mut body = u32s(&[1]);
        body.push(5); // Not
        body.extend(u32s(&[0]));
        assert_eq!(
            dd(&body),
            StoreError::Circuit(CircuitError::DanglingInput { gate: 0, input: 0 })
        );

        // Duplicate gates (hash-consing violated).
        let mut body = u32s(&[2]);
        body.push(0); // Const(false)
        body.push(0); // Const(false) again
        assert_eq!(
            dd(&body),
            StoreError::Circuit(CircuitError::DuplicateGate { gate: 1 })
        );

        // Root outside the gate table.
        let mut body = u32s(&[1]);
        body.push(1); // Const(true)
        body.extend(u32s(&[3])); // root = 3
        assert_eq!(dd(&body), StoreError::RootOutOfRange { root: 3, len: 1 });
    }

    #[test]
    fn header_field_errors_take_precedence_in_order() {
        let blob = dd_blob();

        // Magic flipped → BadMagic (even though the checksum also broke).
        let mut bad = blob.clone();
        bad[0] ^= 0xff;
        assert_eq!(decode_artifact(&bad).unwrap_err(), StoreError::BadMagic);

        // Version bumped → UnsupportedVersion.
        let mut bad = blob.clone();
        bad[8] = 0x2a;
        bad[9] = 0;
        assert_eq!(
            decode_artifact(&bad).unwrap_err(),
            StoreError::UnsupportedVersion(0x2a)
        );

        // Any body byte flipped → ChecksumMismatch (checksum is checked
        // before the body is parsed).
        let mut bad = blob.clone();
        bad[11] ^= 0x01;
        assert!(matches!(
            decode_artifact(&bad).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));

        // Checksum itself flipped → ChecksumMismatch.
        let mut bad = blob.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            decode_artifact(&bad).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));

        // Truncation anywhere → Truncated or ChecksumMismatch, never a
        // panic.
        for cut in [blob.len() - 1, blob.len() / 2, MIN_LEN] {
            let err = decode_artifact(&blob[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated | StoreError::ChecksumMismatch { .. }
                ),
                "cut={cut}: {err:?}"
            );
        }
    }
}
