//! The unified PQE front door: one planner over the workspace's seven
//! evaluation backends, with compiled-lineage caching.
//!
//! The repo implements seven routes for probabilistic query evaluation —
//! brute-force possible-worlds enumeration, Dalvi–Suciu lifted
//! inference over `φ`'s CNF lattice, the degenerate-`φ` OBDD of
//! Proposition 3.7, the zero-Euler d-D pipeline of Theorem 5.2, a
//! Monte-Carlo anytime backend ([`Plan::Sample`]) for hard instances
//! beyond the brute-force budget, and — behind the UCQ front door — a
//! structural lifted plan ([`Plan::Lifted`]) for Dalvi–Suciu-safe
//! general queries plus a grounded lineage circuit
//! ([`Plan::GroundCircuit`]) for unsafe ones within a budget.
//! [`PqeEngine`] makes the choice automatic:
//!
//! 1. **Plan** — resolve any [`Query`] (an [`intext_query::HQuery`], or
//!    a parsed UCQ over a vocabulary): H-shaped queries — including
//!    parsed queries *recognized* as H-shaped — classify on the paper's
//!    Figure 1 region map ([`intext_core::classify()`]) and pick the
//!    cheapest sound backend; general queries split by the Dalvi–Suciu
//!    safety test. The decision is an inspectable [`Plan`] and
//!    [`PqeEngine::explain`] narrates the rationale.
//! 2. **Cache** — compiled artifacts (OBDD or d-D circuit) are keyed by
//!    `(φ's canonical truth table, database shape)` and *not* by tuple
//!    probabilities, so re-evaluating under new probabilities is one
//!    linear circuit walk instead of a recompilation — the whole point
//!    of the intensional representation. Artifacts live in a
//!    gate-budgeted LRU [`ArtifactCache`] as `Arc<Artifact>`, so memory
//!    is bounded ([`EngineConfig::cache_gate_budget`]) and circuits are
//!    shared immutably across threads.
//! 3. **Scale** — [`PqeEngine::evaluate_batch_sharded`] compiles once
//!    and fans a scenario workload across `std::thread::scope` workers,
//!    each doing pure circuit walks; results are bit-identical to the
//!    sequential [`PqeEngine::evaluate_batch`]. The floating-point batch
//!    paths ([`PqeEngine::evaluate_batch_f64`],
//!    [`PqeEngine::evaluate_batch_sharded_f64`]) additionally drive the
//!    **lane-batched evaluation kernel**: consecutive same-shape
//!    scenarios are grouped, and each block of up to
//!    [`intext_circuits::LANES`] scenarios is one forward pass over the
//!    shared artifact with zero steady-state allocations — still
//!    bit-identical to the scalar walk. Repeated [`Plan::Extensional`]
//!    queries reuse a per-`φ` memo of the CNF lattice + Möbius values
//!    instead of rebuilding them. Hard scenarios in a mixed batch route
//!    through the Monte-Carlo sampler with RNG streams derived from
//!    `(seed, global scenario index)`, so sharded sampling is
//!    bit-identical to sequential.
//! 4. **Observe** — every call records [`QueryStats`] (plan, cache
//!    hit/miss, circuit size, wall time) into aggregate
//!    [`EngineStats`]; per-shard stats fold back into one report via
//!    [`EngineStats::merge`], and each batch leaves its [`BatchPlan`]
//!    in `EngineStats::last_batch`. Timing splits into
//!    `EngineStats::compile_nanos` (building circuits, derived from
//!    `compile_time`) vs
//!    `EngineStats::walk_nanos` (walking them), with
//!    `EngineStats::lane_kernel_calls` and
//!    `EngineStats::extensional_memo_hits` counting the two
//!    amortizations.
//!
//! The hard region — previously a dead end past
//! [`EngineConfig::max_brute_force_tuples`] — gets an *anytime* story:
//! enable [`EngineConfig::sampling`] and [`PqeEngine::estimate`] returns
//! an [`Estimate`] with an `(ε, δ)` additive-error guarantee, produced
//! by Karp–Luby DNF sampling over the grounded lineage (monotone `φ`)
//! or naive world sampling through the lane kernel (everything else);
//! [`PqeEngine::explain`] names the sampler and the reason.
//!
//! Live instances update **in place**: [`PqeEngine::insert_tuple`] /
//! [`PqeEngine::remove_tuple`] incrementally *patch* every cached
//! artifact across the structural change instead of recompiling
//! ([`EngineStats::patches_applied`] / `patch_nanos`), a
//! probability-only [`PqeEngine::set_probability`] touches no structure
//! at all, and [`PqeEngine::export_delta`] / [`PqeEngine::apply_delta`]
//! ship one update to replicas as a versioned [`store`] delta blob —
//! patched artifacts are bit-identical to fresh compiles, so replicas
//! can never drift. `DESIGN.md` §9 has the patch algorithm and the
//! per-artifact soundness argument; E23 measures patch vs recompile.
//!
//! `DESIGN.md` (repo root) has the routing diagram, the cache-key
//! rationale, the concurrency & memory model, the evaluation-kernel
//! contract (§6), and the sampling backend (§7); `EXPERIMENTS.md`
//! describes the cold-vs-cached (E17), sharding (E18), eviction (E19),
//! store (E20), lane-kernel (E21), and sampling (E22) benchmarks.
//!
//! # Example: auto-routing and cached re-weighting
//!
//! ```
//! use intext_boolfn::phi9;
//! use intext_engine::{Plan, PqeEngine};
//! use intext_numeric::BigRational;
//! use intext_query::HQuery;
//! use intext_tid::{complete_database, uniform_tid, TupleId};
//!
//! let mut engine = PqeEngine::new();
//! let q = HQuery::new(phi9());
//! let mut tid = uniform_tid(complete_database(3, 1), BigRational::from_ratio(1, 2));
//!
//! // φ9 is safe and nondegenerate with e(φ9) = 0: the planner picks the
//! // d-D pipeline, compiles once, and caches the circuit.
//! assert_eq!(engine.plan(&q, &tid), Ok(Plan::DdCircuit));
//! let cold = engine.evaluate(&q, &tid).unwrap();
//! assert_eq!(engine.stats().cache_misses, 1);
//!
//! // Re-weight a tuple and evaluate again: same circuit, no recompile.
//! tid.set_prob(TupleId(0), BigRational::from_ratio(1, 3)).unwrap();
//! let reweighted = engine.evaluate(&q, &tid).unwrap();
//! assert_eq!(engine.stats().cache_hits, 1);
//! assert_ne!(cold, reweighted);
//! ```

#![deny(missing_docs)]

mod cache;
mod engine;
pub mod fsio;
mod plan;
mod recovery;
mod sample;
mod stats;
pub mod store;
pub mod wal;

pub use cache::{Artifact, ArtifactCache, CacheKey};
pub use engine::{
    ConfigError, EngineConfig, EngineConfigBuilder, EngineError, LaneScratch, LoadReport,
    PqeEngine, PreparedQuery,
};
pub use intext_query::Query;
pub use plan::{BatchPlan, Explanation, Plan};
pub use recovery::{
    DurableDir, Quarantine, RecoveryReport, SnapshotSource, SNAPSHOT_FILE, SNAPSHOT_PREV_FILE,
    SNAPSHOT_TMP_FILE, WAL_FILE,
};
pub use sample::{Estimate, SamplerKind, SamplingConfig};
pub use stats::{EngineStats, LatencyHistogram, QueryStats, RouteLatency};
pub use store::{ArtifactKind, StoreError, TupleUpdate, FORMAT_VERSION, MAGIC};
pub use wal::{Wal, WalCorruption, WalRecord, WalReplay};
