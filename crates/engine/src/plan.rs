//! The routing decision: which backend evaluates which query, and why.

use std::fmt;

use intext_core::Region;

use crate::{EngineError, SamplerKind};

/// The backend the planner chose for a query.
///
/// The plans correspond to the evaluation routes the workspace
/// implements — the five Figure 1 routes for H-queries plus the two
/// general-query routes behind the UCQ front door; see `DESIGN.md`
/// for the routing diagram and the exact precedence rules.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Plan {
    /// Degenerate `φ`: compile a linear-size reduced OBDD by the
    /// grouped-order streaming automaton (Proposition 3.7). Cacheable.
    Obdd,
    /// Nondegenerate `φ` with `e(φ) = 0`: the paper's d-D pipeline —
    /// transformation, fragmentation, leaf OBDDs, template replay
    /// (Theorem 5.2). Cacheable.
    DdCircuit,
    /// Monotone safe `φ` under
    /// [`EngineConfig::prefer_extensional`](crate::EngineConfig):
    /// Dalvi–Suciu lifted inference with Möbius inversion. Produces no
    /// reusable artifact, so every call recomputes from the lattice.
    Extensional,
    /// `#P`-hard (or conjectured-hard) `φ` on an instance small enough
    /// for exhaustive possible-worlds enumeration.
    BruteForce,
    /// `#P`-hard (or conjectured-hard) `φ` on an instance beyond the
    /// brute-force budget, with sampling enabled: a Monte-Carlo
    /// `(ε, δ)`-bounded estimate by the named sampler.
    Sample(SamplerKind),
    /// A general (non-H-shaped) query that passed the Dalvi–Suciu
    /// safety test: lifted inference over the query structure.
    /// Produces no reusable artifact.
    Lifted,
    /// A general query that is neither H-shaped nor safe, on an
    /// instance within the grounding budget: ground the lineage and
    /// compile an OBDD over raw tuple ids. Cacheable.
    GroundCircuit,
}

impl Plan {
    /// Does this plan produce a compiled artifact the engine can cache
    /// and re-walk under new tuple probabilities?
    pub fn is_cacheable(self) -> bool {
        matches!(self, Plan::Obdd | Plan::DdCircuit | Plan::GroundCircuit)
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plan::Obdd => write!(f, "OBDD (Proposition 3.7)"),
            Plan::DdCircuit => write!(f, "d-D pipeline (Theorem 5.2)"),
            Plan::Extensional => write!(f, "extensional lifted inference (Proposition 3.5)"),
            Plan::BruteForce => write!(f, "brute force over possible worlds"),
            Plan::Sample(kind) => write!(f, "Monte-Carlo sampling ({kind})"),
            Plan::Lifted => write!(f, "lifted inference (Dalvi-Suciu safe plan)"),
            Plan::GroundCircuit => write!(f, "grounded lineage circuit"),
        }
    }
}

/// How one sharded batch call was (or would be) executed, from
/// [`PqeEngine::plan_batch`](crate::PqeEngine::plan_batch); also
/// recorded as `EngineStats::last_batch` by
/// [`PqeEngine::evaluate_batch_sharded`](crate::PqeEngine::evaluate_batch_sharded).
///
/// The interesting invariant: `compiles + shared` counts every
/// *cacheable* scenario exactly once, so `compiles` is the number of
/// distinct artifacts the batch had to build and `shared` the number of
/// pure re-walks the compile amortized over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPlan {
    /// Scenarios in the workload.
    pub scenarios: usize,
    /// Worker threads the scenarios were fanned across (clamped to
    /// `1..=scenarios`).
    pub shards: usize,
    /// Scenario evaluations that compiled a fresh artifact (cache
    /// misses, including recompiles forced by eviction).
    pub compiles: usize,
    /// Scenario evaluations served by an already-shared artifact.
    pub shared: usize,
    /// Scenarios routed to the Monte-Carlo sampler ([`Plan::Sample`]) —
    /// the compile/sample split a dry run reports for mixed hard/easy
    /// workloads.
    pub sampled: usize,
}

impl fmt::Display for BatchPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} scenarios over {} shard(s): {} compile(s), {} shared walk(s), {} sampled",
            self.scenarios, self.shards, self.compiles, self.shared, self.sampled
        )
    }
}

/// The planner's reasoning for one query, from
/// [`PqeEngine::explain`](crate::PqeEngine::explain).
#[derive(Clone, Debug)]
pub struct Explanation {
    /// Where `φ` lives on the paper's Figure 1 map.
    pub region: Region,
    /// Tuple count of the instance the decision was made for.
    pub tuples: usize,
    /// The chosen plan, or why no sound plan exists.
    pub plan: Result<Plan, EngineError>,
    /// Whether a compiled artifact for `(φ, database shape)` is already
    /// in the engine's cache.
    pub cached: bool,
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let region = match self.region {
            Region::DegenerateObdd => "degenerate (Q_φ ∈ OBDD(PTIME), Proposition 3.7)",
            Region::ZeroEulerDD => "nondegenerate with e(φ) = 0 (Q_φ ∈ d-D(PTIME), Theorem 5.2)",
            Region::HardMonotone => "monotone with e(φ) ≠ 0 (#P-hard, Corollary 3.9)",
            Region::HardByTransfer => "non-monotone, e(φ) ≠ 0 (#P-hard by transfer, Prop 6.4)",
            Region::ConjecturedHard => "e(φ) beyond the monotone range (conjectured #P-hard)",
            Region::SafeLifted => "a safe non-H query (lifted inference, PTIME)",
            Region::GroundCircuit => "an unsafe non-H query (grounded circuit, budgeted)",
        };
        let subject = match self.region {
            Region::SafeLifted | Region::GroundCircuit => "the query",
            _ => "φ",
        };
        write!(f, "{subject} is {region}; ")?;
        match &self.plan {
            Ok(plan) => {
                write!(f, "plan: {plan} on {} tuples", self.tuples)?;
                if plan.is_cacheable() {
                    if self.cached {
                        write!(f, " [artifact cached: linear re-walk, no recompilation]")?;
                    } else {
                        write!(f, " [cold: will compile and cache]")?;
                    }
                }
                if matches!(plan, Plan::Sample(_)) {
                    write!(
                        f,
                        " [sampling chosen: hard region, instance exceeds the \
                         brute-force budget; answer is an (ε, δ)-bounded estimate]"
                    )?;
                }
                Ok(())
            }
            Err(e) => write!(f, "no sound plan: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cacheability_per_plan() {
        assert!(Plan::Obdd.is_cacheable());
        assert!(Plan::DdCircuit.is_cacheable());
        assert!(!Plan::Extensional.is_cacheable());
        assert!(!Plan::BruteForce.is_cacheable());
        assert!(!Plan::Sample(SamplerKind::KarpLuby).is_cacheable());
        assert!(!Plan::Sample(SamplerKind::NaiveWorlds).is_cacheable());
        assert!(!Plan::Lifted.is_cacheable());
        assert!(Plan::GroundCircuit.is_cacheable());
    }

    #[test]
    fn general_route_explanations_name_the_route() {
        let lifted = Explanation {
            region: Region::SafeLifted,
            tuples: 40,
            plan: Ok(Plan::Lifted),
            cached: false,
        };
        let s = lifted.to_string();
        assert!(s.contains("lifted inference"), "{s}");
        assert!(s.contains("safe"), "{s}");
        let ground = Explanation {
            region: Region::GroundCircuit,
            tuples: 12,
            plan: Ok(Plan::GroundCircuit),
            cached: true,
        };
        let s = ground.to_string();
        assert!(s.contains("grounded lineage circuit"), "{s}");
        assert!(s.contains("cached"), "{s}");
    }

    #[test]
    fn sample_explanation_names_sampler_and_reason() {
        let e = Explanation {
            region: Region::HardMonotone,
            tuples: 500,
            plan: Ok(Plan::Sample(SamplerKind::KarpLuby)),
            cached: false,
        };
        let s = e.to_string();
        assert!(s.contains("#P-hard"), "{s}");
        assert!(s.contains("Karp-Luby"), "{s}");
        assert!(s.contains("sampling chosen"), "{s}");
        assert!(s.contains("(ε, δ)-bounded"), "{s}");
    }

    #[test]
    fn explanation_renders_plan_and_cache_state() {
        let e = Explanation {
            region: Region::ZeroEulerDD,
            tuples: 12,
            plan: Ok(Plan::DdCircuit),
            cached: true,
        };
        let s = e.to_string();
        assert!(s.contains("d-D pipeline"), "{s}");
        assert!(s.contains("cached"), "{s}");
        let cold = Explanation {
            cached: false,
            ..e.clone()
        };
        assert!(cold.to_string().contains("cold"), "{cold}");
    }

    #[test]
    fn batch_plan_renders_shards_and_amortization() {
        let bp = BatchPlan {
            scenarios: 1000,
            shards: 4,
            compiles: 1,
            shared: 996,
            sampled: 3,
        };
        let s = bp.to_string();
        assert!(s.contains("4 shard(s)"), "{s}");
        assert!(s.contains("1 compile(s)"), "{s}");
        assert!(s.contains("996 shared"), "{s}");
        assert!(s.contains("3 sampled"), "{s}");
    }

    #[test]
    fn explanation_renders_errors() {
        let e = Explanation {
            region: Region::HardMonotone,
            tuples: 1000,
            plan: Err(EngineError::Intractable {
                region: Region::HardMonotone,
                tuples: 1000,
                budget: 20,
            }),
            cached: false,
        };
        assert!(e.to_string().contains("no sound plan"), "{e}");
    }
}
