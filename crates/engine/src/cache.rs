//! The compiled-lineage cache: artifacts keyed by `(φ truth table,
//! database shape)`, deliberately excluding tuple probabilities.

use intext_boolfn::BoolFn;
use intext_core::CompiledLineage;
use intext_lineage::DegenerateLineage;
use intext_numeric::BigRational;
use intext_tid::{Database, Tid, TupleDesc};

/// Semantic identity of a compiled lineage.
///
/// Two components (see `DESIGN.md` for the full rationale):
///
/// * **`φ`'s canonical truth table.** [`BoolFn`] *is* a complete truth
///   table, so two syntactically different formulas with the same
///   semantics produce the same key — intentionally: their lineages are
///   the same Boolean function of the tuples.
/// * **The database shape**: `k`, the domain size, and the tuple list
///   *in insertion order*. Order matters because `TupleId`s — the
///   variable names inside compiled circuits — are assigned by insertion
///   order, so the same set of tuples inserted differently yields a
///   differently-named (though isomorphic) circuit.
///
/// Tuple **probabilities are not part of the key**. That is the entire
/// point of caching the intensional representation: re-weighting the
/// TID reuses the artifact, and evaluation is one linear circuit walk.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    phi: BoolFn,
    k: u8,
    domain_size: u32,
    tuples: Vec<TupleDesc>,
}

impl CacheKey {
    /// Builds the key for `φ` on `db`'s shape.
    pub fn new(phi: &BoolFn, db: &Database) -> Self {
        CacheKey {
            phi: phi.clone(),
            k: db.k(),
            domain_size: db.domain_size(),
            tuples: db.iter().map(|(_, t)| t).collect(),
        }
    }
}

/// A compiled lineage artifact, ready for linear-time probability walks
/// under any tuple probabilities.
#[derive(Debug)]
pub enum Artifact {
    /// Proposition 3.7's reduced OBDD (degenerate `φ`).
    Obdd(DegenerateLineage),
    /// Theorem 5.2's deterministic decomposable circuit (zero-Euler `φ`).
    Dd(CompiledLineage),
}

impl Artifact {
    /// Exact probability under `tid` — one bottom-up pass, no
    /// recompilation.
    pub fn probability_exact(&self, tid: &Tid) -> BigRational {
        match self {
            Artifact::Obdd(lin) => lin.probability_exact(tid),
            Artifact::Dd(dd) => dd.probability_exact(tid),
        }
    }

    /// Floating-point probability under `tid`.
    pub fn probability_f64(&self, tid: &Tid) -> f64 {
        match self {
            Artifact::Obdd(lin) => lin.probability_f64(tid),
            Artifact::Dd(dd) => dd.probability_f64(tid),
        }
    }

    /// Size of the compiled representation: OBDD node count or d-D gate
    /// count.
    pub fn size(&self) -> usize {
        match self {
            Artifact::Obdd(lin) => lin.size(),
            Artifact::Dd(dd) => dd.stats().gates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::phi9;
    use intext_tid::{complete_database, Database};

    #[test]
    fn key_ignores_probabilities_but_not_shape() {
        let db = complete_database(3, 2);
        let a = CacheKey::new(&phi9(), &db);
        let b = CacheKey::new(&phi9(), &db);
        assert_eq!(a, b);
        // Different domain: different shape.
        let c = CacheKey::new(&phi9(), &complete_database(3, 3));
        assert_ne!(a, c);
        // Different φ table: different key.
        let d = CacheKey::new(&!&phi9(), &db);
        assert_ne!(a, d);
    }

    #[test]
    fn key_depends_on_insertion_order() {
        use intext_tid::TupleDesc;
        let mut fwd = Database::new(1, 2);
        fwd.insert(TupleDesc::R(0)).unwrap();
        fwd.insert(TupleDesc::S(1, 0, 1)).unwrap();
        let mut rev = Database::new(1, 2);
        rev.insert(TupleDesc::S(1, 0, 1)).unwrap();
        rev.insert(TupleDesc::R(0)).unwrap();
        let phi = intext_boolfn::BoolFn::var(2, 0);
        assert_ne!(CacheKey::new(&phi, &fwd), CacheKey::new(&phi, &rev));
    }
}
