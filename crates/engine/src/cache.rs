//! The compiled-lineage cache: artifacts keyed by `(φ truth table,
//! database shape)`, deliberately excluding tuple probabilities — stored
//! as `Arc<Artifact>` behind a gate-budgeted LRU so circuits can be
//! shared immutably across shard workers and memory stays bounded.

use std::collections::HashMap;
use std::sync::Arc;

use intext_boolfn::BoolFn;
use intext_circuits::{EvalScratch, ProbMatrix};
use intext_core::CompiledLineage;
use intext_lineage::DegenerateLineage;
use intext_numeric::BigRational;
use intext_tid::{Database, Tid, TupleDesc};

/// Semantic identity of a compiled lineage.
///
/// Two components (see `DESIGN.md` for the full rationale):
///
/// * **`φ`'s canonical truth table.** [`BoolFn`] *is* a complete truth
///   table, so two syntactically different formulas with the same
///   semantics produce the same key — intentionally: their lineages are
///   the same Boolean function of the tuples.
/// * **The database shape**: `k`, the domain size, and the tuple list
///   *in insertion order*. Order matters because `TupleId`s — the
///   variable names inside compiled circuits — are assigned by insertion
///   order, so the same set of tuples inserted differently yields a
///   differently-named (though isomorphic) circuit.
///
/// Tuple **probabilities are not part of the key**. That is the entire
/// point of caching the intensional representation: re-weighting the
/// TID reuses the artifact, and evaluation is one linear circuit walk.
///
/// Grounded-circuit artifacts (general queries off the H map) key on a
/// canonical query *text* instead of a `φ` table: `ground` carries the
/// normalized rendering and `phi` holds a fixed placeholder. Ground
/// keys never collide with H keys, are excluded from snapshot
/// persistence (the store format is `φ`-addressed), and are skipped by
/// incremental patching — the artifact simply ages out of the LRU when
/// its database shape stops recurring.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    phi: BoolFn,
    k: u8,
    domain_size: u32,
    tuples: Vec<TupleDesc>,
    ground: Option<Arc<str>>,
}

impl CacheKey {
    /// Builds the key for `φ` on `db`'s shape.
    pub fn new(phi: &BoolFn, db: &Database) -> Self {
        CacheKey {
            phi: phi.clone(),
            k: db.k(),
            domain_size: db.domain_size(),
            tuples: db.iter().map(|(_, t)| t).collect(),
            ground: None,
        }
    }

    /// Builds a grounded-circuit key from a canonical query rendering on
    /// `db`'s shape. The `φ` slot holds a placeholder; `is_ground`
    /// distinguishes these keys wherever `φ`-addressed machinery
    /// (snapshots, patching) must skip them.
    pub fn for_ground(text: &str, db: &Database) -> Self {
        CacheKey {
            phi: BoolFn::bottom(1),
            k: db.k(),
            domain_size: db.domain_size(),
            tuples: db.iter().map(|(_, t)| t).collect(),
            ground: Some(Arc::from(text)),
        }
    }

    /// `true` iff this key addresses a grounded-circuit artifact.
    pub fn is_ground(&self) -> bool {
        self.ground.is_some()
    }

    /// The canonical truth table of `φ`.
    pub fn phi(&self) -> &BoolFn {
        &self.phi
    }

    /// The chain length `k` of the database shape.
    pub fn k(&self) -> u8 {
        self.k
    }

    /// The domain size of the database shape.
    pub fn domain_size(&self) -> u32 {
        self.domain_size
    }

    /// The tuple list of the database shape, in insertion order.
    pub fn tuples(&self) -> &[TupleDesc] {
        &self.tuples
    }
}

/// A compiled lineage artifact, ready for linear-time probability walks
/// under any tuple probabilities.
#[derive(Debug)]
pub enum Artifact {
    /// Proposition 3.7's reduced OBDD (degenerate `φ`).
    Obdd(DegenerateLineage),
    /// Theorem 5.2's deterministic decomposable circuit (zero-Euler `φ`).
    Dd(CompiledLineage),
}

impl Artifact {
    /// Exact probability under `tid` — one bottom-up pass, no
    /// recompilation.
    pub fn probability_exact(&self, tid: &Tid) -> BigRational {
        match self {
            Artifact::Obdd(lin) => lin.probability_exact(tid),
            Artifact::Dd(dd) => dd.probability_exact(tid),
        }
    }

    /// Floating-point probability under `tid`.
    pub fn probability_f64(&self, tid: &Tid) -> f64 {
        match self {
            Artifact::Obdd(lin) => lin.probability_f64(tid),
            Artifact::Dd(dd) => dd.probability_f64(tid),
        }
    }

    /// Lane-batched floating-point probabilities: one pass over the
    /// compiled representation evaluates up to
    /// [`LANES`](intext_circuits::LANES) probability scenarios from
    /// `probs` at once, reusing `scratch` (zero steady-state heap
    /// allocations). Lane `l` is bit-identical to
    /// [`probability_f64`](Self::probability_f64) under lane `l`'s
    /// probabilities — the kernel's fixed-op-order contract
    /// (`DESIGN.md` §6).
    pub fn probability_f64_many(
        &self,
        probs: &ProbMatrix,
        scratch: &mut EvalScratch,
    ) -> [f64; intext_circuits::LANES] {
        match self {
            Artifact::Obdd(lin) => lin.manager.probability_f64_many(lin.root, probs, scratch),
            Artifact::Dd(dd) => dd.circuit.probability_f64_many(dd.root, probs, scratch),
        }
    }

    /// The distinct variables ([`TupleId`](intext_tid::TupleId) raw
    /// values) this artifact's walks read, sorted ascending. Batch
    /// evaluators fill the probability matrix for these entries only —
    /// one `support_vars` call per same-shape run amortizes to nothing,
    /// while a lineage OBDD touching a sliver of a large database skips
    /// the conversion cost of every untouched tuple.
    pub fn support_vars(&self) -> Vec<u32> {
        match self {
            Artifact::Obdd(lin) => lin.manager.support_vars(lin.root),
            Artifact::Dd(dd) => dd.circuit.support_vars(),
        }
    }

    /// Size of the compiled representation: OBDD node count or d-D gate
    /// count. This is the unit the cache budget is measured in.
    pub fn size(&self) -> usize {
        match self {
            Artifact::Obdd(lin) => lin.size(),
            Artifact::Dd(dd) => dd.stats().gates,
        }
    }
}

struct CacheSlot {
    artifact: Arc<Artifact>,
    /// `artifact.size()`, memoized: the size of an OBDD artifact is a
    /// reachability count, not a field read, and eviction scans recompute
    /// totals often.
    gates: usize,
    /// Logical timestamp of the last `get` or `insert` touching this slot.
    last_used: u64,
}

impl std::fmt::Debug for CacheSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheSlot")
            .field("gates", &self.gates)
            .field("last_used", &self.last_used)
            .finish_non_exhaustive()
    }
}

/// A bounded, least-recently-used store of compiled artifacts.
///
/// Three properties matter for the engine (see `DESIGN.md`,
/// "Concurrency & memory model"):
///
/// * **Entries are `Arc<Artifact>`.** Artifacts are immutable once
///   compiled — every walk takes `&self` — so one circuit can be walked
///   concurrently by many shard workers without copies or locks, and an
///   eviction never invalidates a walk in flight: workers holding the
///   `Arc` keep the artifact alive, the cache merely stops retaining it.
/// * **The budget is measured in gates**, not entries:
///   [`Artifact::size`] summed over the cache. Artifact sizes vary by
///   orders of magnitude with the domain size, so an entry-count bound
///   would not bound memory. `None` means unbounded (the pre-eviction
///   behaviour).
/// * **Eviction is strict LRU at insert time.** After an insert pushes
///   the total over budget, least-recently-used entries are dropped
///   until the total fits. An artifact larger than the whole budget is
///   never retained (it is still returned to the caller and counts as
///   one eviction) and — deliberately — does not evict anything else:
///   flushing hot entries for an artifact that cannot fit anyway would
///   be pure collateral damage.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    entries: HashMap<CacheKey, CacheSlot>,
    budget: Option<usize>,
    total_gates: usize,
    clock: u64,
    evictions: u64,
}

impl ArtifactCache {
    /// An empty cache with the given gate budget (`None` = unbounded).
    pub fn new(budget: Option<usize>) -> Self {
        ArtifactCache {
            budget,
            ..Self::default()
        }
    }

    /// The artifact for `key`, bumping its recency, or `None` on a miss.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<Artifact>> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|slot| {
            slot.last_used = clock;
            Arc::clone(&slot.artifact)
        })
    }

    /// `true` iff `key` is cached, *without* bumping recency (used by
    /// `explain`, which must not perturb eviction order).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.entries.contains_key(key)
    }

    /// The artifact for `key` *without* bumping recency — the read
    /// serializers use, so exporting a snapshot never perturbs the
    /// eviction order it records.
    ///
    /// This is also the probe behind
    /// [`PqeEngine::prepare_shared`](crate::PqeEngine::prepare_shared),
    /// which fixes the serve layer's **locking contract**: shared
    /// (read-locked) probes never reorder the LRU, so recency is driven
    /// only by exclusive-path traffic ([`get`](Self::get) /
    /// [`insert`](Self::insert) under `&mut`). Concurrent readers
    /// therefore agree on eviction order with a sequential engine that
    /// saw only the exclusive-path accesses — the price is that a
    /// read-served hit does not refresh its entry, which only matters
    /// under a budget tight enough to evict between exclusive uses.
    pub fn peek(&self, key: &CacheKey) -> Option<&Arc<Artifact>> {
        self.entries.get(key).map(|slot| &slot.artifact)
    }

    /// Every entry in ascending last-used order (least recently used
    /// first). This is the canonical snapshot order: inserting a saved
    /// snapshot back in this order replays the recency ranking, so a
    /// restored LRU evicts in the same order the saved one would have —
    /// and, the `HashMap` being iteration-order-unstable, sorting by the
    /// logical clock is also what makes snapshot bytes deterministic.
    pub fn entries_lru_order(&self) -> Vec<(&CacheKey, &Arc<Artifact>)> {
        let mut entries: Vec<_> = self.entries.iter().collect();
        entries.sort_by_key(|(_, slot)| slot.last_used);
        entries
            .into_iter()
            .map(|(key, slot)| (key, &slot.artifact))
            .collect()
    }

    /// Every cached key, in unspecified order and without touching
    /// recency — how the engine finds the artifacts affected by a live
    /// tuple update (all keys over the updated database's shape,
    /// whatever their `φ`).
    pub fn keys(&self) -> impl Iterator<Item = &CacheKey> {
        self.entries.keys()
    }

    /// Inserts a freshly compiled artifact, evicting least-recently-used
    /// entries until the gate budget holds again. Returns the shared
    /// handle plus the number of entries evicted.
    pub fn insert(&mut self, key: CacheKey, artifact: Artifact) -> (Arc<Artifact>, u64) {
        self.insert_arc(key, Arc::new(artifact))
    }

    /// Replaces the entry at `old_key` with an incrementally patched
    /// artifact under its post-update `new_key`. The patched entry is
    /// **LRU-refreshed** (a patch is a use: the artifact was just brought
    /// up to date because somebody is maintaining it) and its budget
    /// accounting uses the artifact's *new* size — patches that grow an
    /// entry past the gate budget trigger the same eviction path as
    /// inserts, including the oversized-never-retained rule. Returns the
    /// shared handle plus the number of entries evicted.
    pub fn patch(
        &mut self,
        old_key: &CacheKey,
        new_key: CacheKey,
        artifact: Arc<Artifact>,
    ) -> (Arc<Artifact>, u64) {
        if let Some(old) = self.entries.remove(old_key) {
            self.total_gates -= old.gates;
        }
        self.insert_arc(new_key, artifact)
    }

    /// [`insert`](Self::insert) for an already-shared artifact.
    fn insert_arc(&mut self, key: CacheKey, artifact: Arc<Artifact>) -> (Arc<Artifact>, u64) {
        self.clock += 1;
        let gates = artifact.size();
        if self.budget.is_some_and(|budget| gates > budget) {
            // An artifact that can never fit is not retained at all —
            // and must not flush the (still hot) existing entries as
            // collateral on its way through. One eviction: itself.
            self.evictions += 1;
            return (artifact, 1);
        }
        let slot = CacheSlot {
            artifact: Arc::clone(&artifact),
            gates,
            last_used: self.clock,
        };
        if let Some(old) = self.entries.insert(key, slot) {
            // Same key compiled twice (only possible after an eviction
            // raced a re-insert through the caller); replace, don't leak
            // the old size.
            self.total_gates -= old.gates;
        }
        self.total_gates += gates;
        let evicted = self.enforce_budget();
        (artifact, evicted)
    }

    /// Evicts LRU entries until `total_gates <= budget`; returns how many
    /// entries were dropped.
    fn enforce_budget(&mut self) -> u64 {
        let Some(budget) = self.budget else {
            return 0;
        };
        let mut evicted = 0;
        while self.total_gates > budget {
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(key, _)| key.clone())
            else {
                break;
            };
            let slot = self.entries.remove(&victim).expect("victim key exists");
            self.total_gates -= slot.gates;
            evicted += 1;
        }
        self.evictions += evicted;
        evicted
    }

    /// Replaces the gate budget, evicting immediately if the cache no
    /// longer fits; returns how many entries were dropped.
    pub fn set_budget(&mut self, budget: Option<usize>) -> u64 {
        self.budget = budget;
        self.enforce_budget()
    }

    /// The current gate budget (`None` = unbounded).
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total gates currently retained — by construction never above the
    /// budget.
    pub fn total_gates(&self) -> usize {
        self.total_gates
    }

    /// Lifetime count of budget evictions (manual [`clear`](Self::clear)
    /// does not count).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops every entry (not counted as evictions).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.total_gates = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::phi9;
    use intext_tid::{complete_database, Database};

    #[test]
    fn key_ignores_probabilities_but_not_shape() {
        let db = complete_database(3, 2);
        let a = CacheKey::new(&phi9(), &db);
        let b = CacheKey::new(&phi9(), &db);
        assert_eq!(a, b);
        // Different domain: different shape.
        let c = CacheKey::new(&phi9(), &complete_database(3, 3));
        assert_ne!(a, c);
        // Different φ table: different key.
        let d = CacheKey::new(&!&phi9(), &db);
        assert_ne!(a, d);
    }

    #[test]
    fn ground_keys_are_text_addressed_and_disjoint_from_h_keys() {
        let db = complete_database(3, 2);
        let a = CacheKey::for_ground("R(x0),S1(x0,x1)", &db);
        let b = CacheKey::for_ground("R(x0),S1(x0,x1)", &db);
        assert_eq!(a, b, "Arc<str> compares and hashes by content");
        assert!(a.is_ground());
        let c = CacheKey::for_ground("R(x0)", &db);
        assert_ne!(a, c);
        // A ground key never equals any H key, even one whose φ matches
        // the placeholder.
        let h = CacheKey::new(&intext_boolfn::BoolFn::bottom(1), &db);
        assert!(!h.is_ground());
        assert_ne!(a, h);
        // Shape still participates.
        let other = CacheKey::for_ground("R(x0),S1(x0,x1)", &complete_database(3, 3));
        assert_ne!(a, other);
    }

    #[test]
    fn key_depends_on_insertion_order() {
        use intext_tid::TupleDesc;
        let mut fwd = Database::new(1, 2);
        fwd.insert(TupleDesc::R(0)).unwrap();
        fwd.insert(TupleDesc::S(1, 0, 1)).unwrap();
        let mut rev = Database::new(1, 2);
        rev.insert(TupleDesc::S(1, 0, 1)).unwrap();
        rev.insert(TupleDesc::R(0)).unwrap();
        let phi = intext_boolfn::BoolFn::var(2, 0);
        assert_ne!(CacheKey::new(&phi, &fwd), CacheKey::new(&phi, &rev));
    }

    /// A distinct key per `domain` plus a compiled artifact for it; the
    /// artifact's gate count grows with the domain, which the LRU tests
    /// below rely on only as "nonzero and known via `size()`".
    fn compiled(domain: u32) -> (CacheKey, Artifact) {
        let phi = phi9();
        let db = complete_database(3, domain);
        let artifact = Artifact::Dd(
            intext_core::compile_dd(&phi, &db).expect("φ9 has zero Euler characteristic"),
        );
        (CacheKey::new(&phi, &db), artifact)
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut cache = ArtifactCache::new(None);
        for domain in 1..=3 {
            let (key, artifact) = compiled(domain);
            cache.insert(key, artifact);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used_exactly_at_budget() {
        let (key_a, art_a) = compiled(2);
        let (key_b, art_b) = compiled(3);
        // C is the smallest artifact (sizes grow with the domain), so it
        // fits the budget but pushes A+B+C over it.
        let (key_c, art_c) = compiled(1);
        // Budget admits A and B together but not C on top of them.
        let budget = art_a.size() + art_b.size();
        assert!(art_c.size() <= budget, "C alone must fit the budget");
        let mut cache = ArtifactCache::new(Some(budget));
        cache.insert(key_a.clone(), art_a);
        let (_, evicted) = cache.insert(key_b.clone(), art_b);
        assert_eq!(evicted, 0, "exactly at budget: nothing evicted yet");
        assert_eq!(cache.total_gates(), budget);
        // Touch A so B becomes the least recently used.
        assert!(cache.get(&key_a).is_some());
        let (_, evicted) = cache.insert(key_c.clone(), art_c);
        assert!(evicted >= 1);
        assert!(!cache.contains(&key_b), "B was LRU and must go first");
        assert!(cache.contains(&key_c));
        assert!(cache.total_gates() <= budget);
        assert_eq!(cache.evictions(), evicted);
        assert!(cache.get(&key_b).is_none(), "evicted ⟹ next access misses");
    }

    #[test]
    fn oversized_artifact_is_returned_but_not_retained() {
        let (key, artifact) = compiled(2);
        let mut cache = ArtifactCache::new(Some(artifact.size() - 1));
        let (handle, evicted) = cache.insert(key.clone(), artifact);
        assert_eq!(evicted, 1, "the entry itself is the only victim");
        assert!(handle.size() > 0, "caller still gets a usable artifact");
        assert!(!cache.contains(&key));
        assert_eq!(cache.total_gates(), 0);
    }

    #[test]
    fn oversized_artifact_leaves_hot_entries_untouched() {
        let (key_a, art_a) = compiled(1);
        let (key_big, art_big) = compiled(3);
        // Budget fits A but can never fit the domain-3 artifact.
        let mut cache = ArtifactCache::new(Some(art_big.size() - 1));
        assert!(art_a.size() < art_big.size());
        cache.insert(key_a.clone(), art_a);
        let retained = cache.total_gates();
        let (_, evicted) = cache.insert(key_big.clone(), art_big);
        assert_eq!(evicted, 1, "only the unfittable entry is evicted");
        assert!(cache.contains(&key_a), "hot entries are not collateral");
        assert!(!cache.contains(&key_big));
        assert_eq!(cache.total_gates(), retained);
    }

    #[test]
    fn shrinking_the_budget_evicts_immediately() {
        let mut cache = ArtifactCache::new(None);
        for domain in 1..=3 {
            let (key, artifact) = compiled(domain);
            cache.insert(key, artifact);
        }
        let total = cache.total_gates();
        let evicted = cache.set_budget(Some(total));
        assert_eq!(evicted, 0, "exactly fitting budget evicts nothing");
        assert!(cache.set_budget(Some(total - 1)) >= 1);
        assert!(cache.total_gates() < total);
        // Clearing empties the cache without counting as eviction.
        let evictions_before = cache.evictions();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.total_gates(), 0);
        assert_eq!(cache.evictions(), evictions_before);
    }

    #[test]
    fn patch_refreshes_recency_and_rekeys() {
        let (key_a, art_a) = compiled(1);
        let (key_b, art_b) = compiled(2);
        let mut cache = ArtifactCache::new(None);
        cache.insert(key_a.clone(), art_a);
        cache.insert(key_b.clone(), art_b);
        // A is currently LRU. Patch it (same artifact shape, new key —
        // here simulated with a re-compile for a grown domain).
        let (key_a2, art_a2) = compiled(3);
        cache.patch(&key_a, key_a2.clone(), Arc::new(art_a2));
        assert!(!cache.contains(&key_a), "old key is gone after a patch");
        assert!(cache.contains(&key_a2));
        assert_eq!(cache.len(), 2);
        // The patched entry was LRU-refreshed: B is now least recent.
        let lru: Vec<_> = cache.entries_lru_order();
        assert_eq!(lru[0].0, &key_b, "patching counts as a use");
        assert_eq!(lru[1].0, &key_a2);
        // Patching a key that was already evicted just inserts.
        let (key_c, art_c) = compiled(1);
        let absent = CacheKey::new(&phi9(), &complete_database(3, 4));
        cache.patch(&absent, key_c.clone(), Arc::new(art_c));
        assert!(cache.contains(&key_c));
    }

    #[test]
    fn patch_past_budget_keeps_gate_invariant() {
        // The satellite bugfix regression: a patched artifact must be
        // budget-accounted at its *new* size. Patch a cached entry into
        // one too large for the whole budget and check the invariant
        // `total_gates() <= budget` — under the pre-fix accounting the
        // grown artifact would be retained at its stale size.
        let (key_small, art_small) = compiled(1);
        let (key_big, art_big) = compiled(3);
        let budget = art_big.size() - 1; // the patched artifact can never fit
        assert!(art_small.size() <= budget);
        let mut cache = ArtifactCache::new(Some(budget));
        cache.insert(key_small.clone(), art_small);
        let gates_before = cache.total_gates();
        assert!(gates_before <= budget);
        let (handle, evicted) = cache.patch(&key_small, key_big.clone(), Arc::new(art_big));
        assert_eq!(evicted, 1, "oversized patch result is not retained");
        assert!(handle.size() > budget, "caller still gets the artifact");
        assert!(!cache.contains(&key_small));
        assert!(!cache.contains(&key_big));
        assert!(
            cache.total_gates() <= budget,
            "gate budget invariant must survive patching"
        );
        // And a patch that fits re-enters accounting at the new size.
        let (key_mid, art_mid) = compiled(2);
        let mut cache = ArtifactCache::new(Some(art_mid.size()));
        let (key_small, art_small) = compiled(1);
        cache.insert(key_small.clone(), art_small);
        cache.patch(&key_small, key_mid.clone(), Arc::new(art_mid));
        assert!(cache.contains(&key_mid));
        assert_eq!(cache.total_gates(), cache.peek(&key_mid).unwrap().size());
        assert!(cache.total_gates() <= cache.budget().unwrap());
    }

    #[test]
    fn artifacts_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        // The whole sharded-evaluation design rests on these bounds: a
        // compile error here means an artifact grew interior mutability.
        assert_send_sync::<Artifact>();
        assert_send_sync::<std::sync::Arc<Artifact>>();
        assert_send_sync::<CacheKey>();
    }
}
