//! Engine observability: per-query records and lifetime aggregates.

use std::fmt;
use std::time::Duration;

use crate::Plan;

/// What happened on one successful `evaluate` call.
#[derive(Clone, Copy, Debug)]
pub struct QueryStats {
    /// The backend the planner chose.
    pub plan: Plan,
    /// Whether the compiled artifact came from the cache (always `false`
    /// for non-cacheable plans).
    pub cache_hit: bool,
    /// Size of the compiled circuit (OBDD nodes or d-D gates), when the
    /// plan is cacheable.
    pub circuit_size: Option<usize>,
    /// Wall time spent compiling (zero on cache hits and on plans that
    /// compile nothing).
    pub compile_time: Duration,
    /// Wall time spent computing the probability.
    pub eval_time: Duration,
}

/// Aggregate counters over the engine's lifetime (reset with
/// [`PqeEngine::reset_stats`](crate::PqeEngine::reset_stats)).
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Successful `evaluate` calls.
    pub queries: u64,
    /// Evaluations served from a cached artifact.
    pub cache_hits: u64,
    /// Evaluations that compiled a fresh artifact (cacheable plan, cold
    /// key). `queries - cache_hits - cache_misses` is the number of
    /// evaluations on non-cacheable plans.
    pub cache_misses: u64,
    /// Queries routed to [`Plan::Obdd`].
    pub obdd_plans: u64,
    /// Queries routed to [`Plan::DdCircuit`].
    pub dd_plans: u64,
    /// Queries routed to [`Plan::Extensional`].
    pub extensional_plans: u64,
    /// Queries routed to [`Plan::BruteForce`].
    pub brute_force_plans: u64,
    /// Total wall time spent compiling artifacts.
    pub compile_time: Duration,
    /// Total wall time spent computing probabilities.
    pub eval_time: Duration,
    /// The most recent query's record.
    pub last: Option<QueryStats>,
}

impl EngineStats {
    pub(crate) fn record(&mut self, q: QueryStats) {
        self.queries += 1;
        match q.plan {
            Plan::Obdd => self.obdd_plans += 1,
            Plan::DdCircuit => self.dd_plans += 1,
            Plan::Extensional => self.extensional_plans += 1,
            Plan::BruteForce => self.brute_force_plans += 1,
        }
        if q.plan.is_cacheable() {
            if q.cache_hit {
                self.cache_hits += 1;
            } else {
                self.cache_misses += 1;
            }
        }
        self.compile_time += q.compile_time;
        self.eval_time += q.eval_time;
        self.last = Some(q);
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} queries (obdd {}, d-D {}, extensional {}, brute {}); \
             cache {} hits / {} misses; compile {:?}, eval {:?}",
            self.queries,
            self.obdd_plans,
            self.dd_plans,
            self.extensional_plans,
            self.brute_force_plans,
            self.cache_hits,
            self.cache_misses,
            self.compile_time,
            self.eval_time,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(plan: Plan, cache_hit: bool) -> QueryStats {
        QueryStats {
            plan,
            cache_hit,
            circuit_size: plan.is_cacheable().then_some(10),
            compile_time: Duration::from_micros(5),
            eval_time: Duration::from_micros(1),
        }
    }

    #[test]
    fn record_aggregates_per_plan_and_cache() {
        let mut s = EngineStats::default();
        s.record(q(Plan::DdCircuit, false));
        s.record(q(Plan::DdCircuit, true));
        s.record(q(Plan::Obdd, false));
        s.record(q(Plan::BruteForce, false));
        assert_eq!(s.queries, 4);
        assert_eq!(s.dd_plans, 2);
        assert_eq!(s.obdd_plans, 1);
        assert_eq!(s.brute_force_plans, 1);
        assert_eq!(s.cache_hits, 1);
        // The brute-force query counts as neither hit nor miss.
        assert_eq!(s.cache_misses, 2);
        assert_eq!(s.compile_time, Duration::from_micros(20));
        assert!(matches!(
            s.last,
            Some(QueryStats {
                cache_hit: false,
                ..
            })
        ));
        let shown = s.to_string();
        assert!(shown.contains("4 queries"), "{shown}");
    }
}
