//! Engine observability: per-query records and lifetime aggregates.
//!
//! [`EngineStats`] is deliberately **mergeable**: sharded batch
//! evaluation hands each worker its own `EngineStats`, records every
//! scenario locally (no shared counters, no locks on the hot path), and
//! folds the shards back into the engine's aggregate with
//! [`EngineStats::merge`] — so one report covers the whole batch exactly
//! as if it had run sequentially.

use std::fmt;
use std::time::Duration;

use crate::{BatchPlan, Plan};

/// What happened on one successful `evaluate` call.
#[derive(Clone, Copy, Debug)]
pub struct QueryStats {
    /// The backend the planner chose.
    pub plan: Plan,
    /// Whether the compiled artifact came from the cache (always `false`
    /// for non-cacheable plans).
    pub cache_hit: bool,
    /// Size of the compiled circuit (OBDD nodes or d-D gates), when the
    /// plan is cacheable.
    pub circuit_size: Option<usize>,
    /// Wall time spent compiling (zero on cache hits and on plans that
    /// compile nothing).
    pub compile_time: Duration,
    /// Wall time spent computing the probability.
    pub eval_time: Duration,
    /// Monte-Carlo samples drawn (zero for every exact plan).
    pub samples: u64,
}

/// Aggregate counters over the engine's lifetime (reset with
/// [`PqeEngine::reset_stats`](crate::PqeEngine::reset_stats)).
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Successful `evaluate` calls.
    pub queries: u64,
    /// Evaluations served from a cached artifact.
    pub cache_hits: u64,
    /// Evaluations that compiled a fresh artifact (cacheable plan, cold
    /// key). `queries - cache_hits - cache_misses` is the number of
    /// evaluations on non-cacheable plans.
    pub cache_misses: u64,
    /// Artifacts dropped by the LRU cache to satisfy its gate budget.
    /// Every eviction that is accessed again costs one extra
    /// `cache_misses` (the recompile), which is how the two counters
    /// reconcile: `cache_misses = distinct cold keys + re-compiles after
    /// eviction`.
    pub cache_evictions: u64,
    /// Artifacts deserialized into the cache by
    /// [`PqeEngine::load_cache`](crate::PqeEngine::load_cache) /
    /// [`PqeEngine::import_artifact`](crate::PqeEngine::import_artifact)
    /// instead of being compiled. A warm-started replica replaying the
    /// saved workload shows `artifact_loads == distinct shapes` and
    /// `cache_misses == 0`: every evaluation re-walks a loaded circuit.
    pub artifact_loads: u64,
    /// Queries routed to [`Plan::Obdd`].
    pub obdd_plans: u64,
    /// Queries routed to [`Plan::DdCircuit`].
    pub dd_plans: u64,
    /// Queries routed to [`Plan::Extensional`].
    pub extensional_plans: u64,
    /// Queries routed to [`Plan::BruteForce`].
    pub brute_force_plans: u64,
    /// Queries routed to [`Plan::Sample`] (either sampler).
    pub sample_plans: u64,
    /// Queries routed to [`Plan::Lifted`] (safe general queries).
    pub lifted_plans: u64,
    /// Queries routed to [`Plan::GroundCircuit`] (unsafe general
    /// queries within the grounding budget).
    pub ground_plans: u64,
    /// Total Monte-Carlo samples drawn across all sampled queries.
    pub samples_drawn: u64,
    /// Nanoseconds spent inside the samplers (the sampling share of
    /// [`eval_time`](Self::eval_time)).
    pub sample_nanos: u64,
    /// Queries whose [`Plan::Extensional`] evaluation reused the
    /// engine's memoized CNF lattice + Möbius values for `φ` instead of
    /// rebuilding them. The first extensional evaluation of each distinct
    /// `φ` builds the lattice (not a hit); every later one — sequential,
    /// batched, or sharded — is a hit.
    pub extensional_memo_hits: u64,
    /// Invocations of the lane-batched evaluation kernel: each call
    /// walks one compiled artifact once for a block of up to
    /// `intext_circuits::LANES` scenarios. `queries` per kernel call is
    /// the batching win; zero under purely scalar evaluation.
    pub lane_kernel_calls: u64,
    /// Total wall time spent compiling artifacts.
    pub compile_time: Duration,
    /// Total wall time spent computing probabilities. Under sharded
    /// evaluation this is summed *CPU-side* walk time across workers, so
    /// it can exceed the batch's wall-clock time — that surplus is the
    /// parallelism.
    pub eval_time: Duration,
    /// Nanoseconds spent *walking* compiled artifacts (scalar walks and
    /// lane-kernel calls alike; excludes extensional and brute-force
    /// evaluation, which walk nothing). `walk_nanos / queries` falling as
    /// batches grow is the lane kernel's win made observable; its
    /// counterpart [`compile_nanos`](Self::compile_nanos) is derived
    /// from [`compile_time`](Self::compile_time).
    pub walk_nanos: u64,
    /// Artifacts structurally carried across a live tuple update by
    /// incremental patching ([`PqeEngine::insert_tuple`](crate::PqeEngine::insert_tuple)
    /// / [`PqeEngine::remove_tuple`](crate::PqeEngine::remove_tuple))
    /// instead of being recompiled from scratch. Each patch re-unrolls
    /// only the stream prefix up to the changed slot and transplants the
    /// rest — `patches_applied × (recompile − patch)` time is the win.
    pub patches_applied: u64,
    /// Total nanoseconds spent inside artifact patching.
    pub patch_nanos: u64,
    /// Full compilations the live-update path made unnecessary: one per
    /// successful patch, plus one per cached same-shape artifact on a
    /// probability-only update
    /// ([`PqeEngine::set_probability`](crate::PqeEngine::set_probability)),
    /// which touches no structure at all — cache keys exclude
    /// probabilities, so every artifact stays valid as-is.
    pub full_recompiles_avoided: u64,
    /// Delta records replayed from a write-ahead log by
    /// [`PqeEngine::recover`](crate::PqeEngine::recover) — each one an
    /// update the crash would otherwise have lost.
    pub wal_records_applied: u64,
    /// Corrupt durable files (snapshot generations or WAL tails)
    /// renamed aside during [`PqeEngine::recover`](crate::PqeEngine::recover)
    /// instead of being trusted or deleted — the graceful-degradation
    /// path made countable (`DESIGN.md` §12).
    pub recovery_quarantines: u64,
    /// Poisoned locks the serve layer recovered instead of propagating:
    /// a worker panicked while holding the engine rw-lock, an admission
    /// queue mutex, or a response slot, and the next caller took the
    /// lock anyway (the engine's invariants hold under panic — see
    /// `crates/serve/src/shared.rs`). Zero in a healthy server; the
    /// panic-injection test pins the counter's plumbing.
    pub lock_poisonings_recovered: u64,
    /// Per-route latency histograms: one [`LatencyHistogram`] per
    /// [`Plan`] route, fed one sample (`compile_time + eval_time`) per
    /// recorded query. Merging adds bucket counts, so a server that
    /// folds worker-local stats reports the same distribution a
    /// sequential run of the same requests would.
    pub route_latency: RouteLatency,
    /// The most recent query's record.
    pub last: Option<QueryStats>,
    /// The most recent sharded batch's plan, if any batch ran.
    ///
    /// **Overwrite semantics:** [`merge`](Self::merge) is last-writer-wins
    /// here — `other.last_batch` replaces `self.last_batch` whenever it is
    /// `Some`, and is kept otherwise. Callers merging shards (or server
    /// workers) in submission order therefore end with the batch a
    /// sequential run would have reported last; merging in any other
    /// order makes `last_batch` (and `last`) order-dependent, while every
    /// counter and histogram stays order-independent.
    pub last_batch: Option<BatchPlan>,
}

/// Number of power-of-two buckets in a [`LatencyHistogram`]: bucket 39
/// covers `[2^38, 2^39)` ns ≈ up to nine minutes, far beyond any single
/// query this engine serves.
const LATENCY_BUCKETS: usize = 40;

/// A power-of-two latency histogram: bucket `i` counts samples whose
/// latency in nanoseconds lies in `[2^(i-1), 2^i)` (bucket 0 counts
/// sub-nanosecond samples, the top bucket saturates). Buckets are plain
/// counters, so merging two histograms is bucket-wise addition — the
/// property the serve layer relies on to fold worker-local stats into
/// one server-wide distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// Index of the bucket covering `nanos` (saturating at the top).
    fn bucket_index(nanos: u64) -> usize {
        let bits = u64::BITS - nanos.leading_zeros();
        (bits as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.record_nanos(duration_nanos(latency));
    }

    /// Records one latency sample given in integer nanoseconds.
    pub fn record_nanos(&mut self, nanos: u64) {
        self.buckets[Self::bucket_index(nanos)] += 1;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The raw bucket counters; bucket `i` covers `[2^(i-1), 2^i)` ns.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Upper bound (in nanoseconds, exclusive) of the bucket containing
    /// the `q`-quantile sample, or `None` when the histogram is empty.
    /// `quantile(0.5)` is a p50 upper bound, `quantile(0.99)` a p99
    /// upper bound — coarse (power-of-two resolution) but merge-stable.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(1u64.checked_shl(i as u32).unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    /// Bucket-wise addition: afterwards every bucket holds the sum of
    /// both operands' counts, so `count()` adds and quantile bounds are
    /// those of the combined sample set.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }
}

/// One [`LatencyHistogram`] per [`Plan`] route. Total request latency
/// (`compile_time + eval_time`) is recorded under the route the planner
/// chose, so a bounded cache shows up as the cacheable routes' tail
/// (recompiles) and the hard region's cost stays separated from the
/// polynomial engines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouteLatency {
    /// Latencies of queries routed to [`Plan::Obdd`].
    pub obdd: LatencyHistogram,
    /// Latencies of queries routed to [`Plan::DdCircuit`].
    pub dd: LatencyHistogram,
    /// Latencies of queries routed to [`Plan::Extensional`].
    pub extensional: LatencyHistogram,
    /// Latencies of queries routed to [`Plan::BruteForce`].
    pub brute_force: LatencyHistogram,
    /// Latencies of queries routed to [`Plan::Sample`] (either sampler).
    pub sample: LatencyHistogram,
    /// Latencies of queries routed to [`Plan::Lifted`].
    pub lifted: LatencyHistogram,
    /// Latencies of queries routed to [`Plan::GroundCircuit`].
    pub ground: LatencyHistogram,
}

impl RouteLatency {
    /// The histogram for `plan`'s route.
    pub fn for_plan(&self, plan: Plan) -> &LatencyHistogram {
        match plan {
            Plan::Obdd => &self.obdd,
            Plan::DdCircuit => &self.dd,
            Plan::Extensional => &self.extensional,
            Plan::BruteForce => &self.brute_force,
            Plan::Sample(_) => &self.sample,
            Plan::Lifted => &self.lifted,
            Plan::GroundCircuit => &self.ground,
        }
    }

    fn for_plan_mut(&mut self, plan: Plan) -> &mut LatencyHistogram {
        match plan {
            Plan::Obdd => &mut self.obdd,
            Plan::DdCircuit => &mut self.dd,
            Plan::Extensional => &mut self.extensional,
            Plan::BruteForce => &mut self.brute_force,
            Plan::Sample(_) => &mut self.sample,
            Plan::Lifted => &mut self.lifted,
            Plan::GroundCircuit => &mut self.ground,
        }
    }

    /// Samples recorded across all routes; equals the recorder's
    /// `queries` counter, which the unit tests pin.
    pub fn total_count(&self) -> u64 {
        self.obdd.count()
            + self.dd.count()
            + self.extensional.count()
            + self.brute_force.count()
            + self.sample.count()
            + self.lifted.count()
            + self.ground.count()
    }

    /// Route-wise [`LatencyHistogram::merge`] (bucket-wise addition).
    pub fn merge(&mut self, other: &RouteLatency) {
        self.obdd.merge(&other.obdd);
        self.dd.merge(&other.dd);
        self.extensional.merge(&other.extensional);
        self.brute_force.merge(&other.brute_force);
        self.sample.merge(&other.sample);
        self.lifted.merge(&other.lifted);
        self.ground.merge(&other.ground);
    }
}

impl EngineStats {
    /// Folds one query's record into the aggregates. Public because
    /// shard workers build their own `EngineStats` and record into it;
    /// single evaluations go through the engine, which calls this
    /// internally.
    pub fn record(&mut self, q: QueryStats) {
        self.queries += 1;
        match q.plan {
            Plan::Obdd => self.obdd_plans += 1,
            Plan::DdCircuit => self.dd_plans += 1,
            Plan::Extensional => self.extensional_plans += 1,
            Plan::BruteForce => self.brute_force_plans += 1,
            Plan::Sample(_) => {
                self.sample_plans += 1;
                self.samples_drawn += q.samples;
                self.sample_nanos += duration_nanos(q.eval_time);
            }
            Plan::Lifted => self.lifted_plans += 1,
            Plan::GroundCircuit => self.ground_plans += 1,
        }
        if q.plan.is_cacheable() {
            if q.cache_hit {
                self.cache_hits += 1;
            } else {
                self.cache_misses += 1;
            }
        }
        self.compile_time += q.compile_time;
        self.eval_time += q.eval_time;
        if q.plan.is_cacheable() {
            self.walk_nanos += duration_nanos(q.eval_time);
        }
        self.route_latency
            .for_plan_mut(q.plan)
            .record(q.compile_time + q.eval_time);
        self.last = Some(q);
    }

    /// [`compile_time`](Self::compile_time) in integer nanoseconds — the
    /// "how much did we pay to build circuits" half of the
    /// compile-vs-walk split the batch paths are optimized around
    /// (derived, so it can never drift out of sync with the duration).
    pub fn compile_nanos(&self) -> u64 {
        duration_nanos(self.compile_time)
    }

    /// Folds another `EngineStats` into this one: counters and durations
    /// add, and `other`'s most-recent records win when present (callers
    /// merge shards in order, so "most recent" stays the last scenario
    /// of the last shard — the same query a sequential run would report).
    pub fn merge(&mut self, other: &EngineStats) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.artifact_loads += other.artifact_loads;
        self.obdd_plans += other.obdd_plans;
        self.dd_plans += other.dd_plans;
        self.extensional_plans += other.extensional_plans;
        self.brute_force_plans += other.brute_force_plans;
        self.sample_plans += other.sample_plans;
        self.lifted_plans += other.lifted_plans;
        self.ground_plans += other.ground_plans;
        self.samples_drawn += other.samples_drawn;
        self.sample_nanos += other.sample_nanos;
        self.extensional_memo_hits += other.extensional_memo_hits;
        self.lane_kernel_calls += other.lane_kernel_calls;
        self.compile_time += other.compile_time;
        self.eval_time += other.eval_time;
        self.walk_nanos += other.walk_nanos;
        self.patches_applied += other.patches_applied;
        self.patch_nanos += other.patch_nanos;
        self.full_recompiles_avoided += other.full_recompiles_avoided;
        self.wal_records_applied += other.wal_records_applied;
        self.recovery_quarantines += other.recovery_quarantines;
        self.lock_poisonings_recovered += other.lock_poisonings_recovered;
        self.route_latency.merge(&other.route_latency);
        if other.last.is_some() {
            self.last = other.last;
        }
        if other.last_batch.is_some() {
            self.last_batch = other.last_batch;
        }
    }
}

/// A `Duration` as saturating integer nanoseconds (an engine would need
/// to spend ~585 years compiling to overflow the `u64`).
pub(crate) fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} queries (obdd {}, d-D {}, extensional {}, brute {}, sampled {}, \
             lifted {}, ground {}); \
             cache {} hits / {} misses / {} evictions / {} loads; \
             compile {:?} ({} ns), walk {} ns over {} lane-kernel call(s), \
             eval {:?}; {} extensional memo hit(s); \
             {} sample(s) drawn over {} ns; \
             {} patch(es) over {} ns avoiding {} recompile(s); \
             {} WAL record(s) replayed, {} quarantine(s), {} poisoning(s) recovered",
            self.queries,
            self.obdd_plans,
            self.dd_plans,
            self.extensional_plans,
            self.brute_force_plans,
            self.sample_plans,
            self.lifted_plans,
            self.ground_plans,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.artifact_loads,
            self.compile_time,
            self.compile_nanos(),
            self.walk_nanos,
            self.lane_kernel_calls,
            self.eval_time,
            self.extensional_memo_hits,
            self.samples_drawn,
            self.sample_nanos,
            self.patches_applied,
            self.patch_nanos,
            self.full_recompiles_avoided,
            self.wal_records_applied,
            self.recovery_quarantines,
            self.lock_poisonings_recovered,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::SamplerKind;

    fn q(plan: Plan, cache_hit: bool) -> QueryStats {
        QueryStats {
            plan,
            cache_hit,
            circuit_size: plan.is_cacheable().then_some(10),
            compile_time: Duration::from_micros(5),
            eval_time: Duration::from_micros(1),
            samples: 0,
        }
    }

    #[test]
    fn sample_plans_thread_counts_and_time() {
        let mut s = EngineStats::default();
        s.record(QueryStats {
            samples: 1234,
            ..q(Plan::Sample(SamplerKind::KarpLuby), false)
        });
        assert_eq!(s.sample_plans, 1);
        assert_eq!(s.samples_drawn, 1234);
        assert_eq!(s.sample_nanos, 1_000, "the sampler's eval_time share");
        // Sampled queries are neither cache traffic nor circuit walks.
        assert_eq!(s.cache_hits + s.cache_misses, 0);
        assert_eq!(s.walk_nanos, 0);
        let mut merged = EngineStats::default();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.samples_drawn, 2468);
        assert_eq!(merged.sample_plans, 2);
        assert!(merged.to_string().contains("2468 sample(s)"), "{merged}");
    }

    #[test]
    fn record_aggregates_per_plan_and_cache() {
        let mut s = EngineStats::default();
        s.record(q(Plan::DdCircuit, false));
        s.record(q(Plan::DdCircuit, true));
        s.record(q(Plan::Obdd, false));
        s.record(q(Plan::BruteForce, false));
        assert_eq!(s.queries, 4);
        assert_eq!(s.dd_plans, 2);
        assert_eq!(s.obdd_plans, 1);
        assert_eq!(s.brute_force_plans, 1);
        assert_eq!(s.cache_hits, 1);
        // The brute-force query counts as neither hit nor miss.
        assert_eq!(s.cache_misses, 2);
        assert_eq!(s.compile_time, Duration::from_micros(20));
        assert_eq!(s.compile_nanos(), 20_000, "the nanos mirror compile_time");
        // Only the three cacheable-plan evaluations are circuit walks.
        assert_eq!(s.walk_nanos, 3_000);
        assert!(matches!(
            s.last,
            Some(QueryStats {
                cache_hit: false,
                ..
            })
        ));
        let shown = s.to_string();
        assert!(shown.contains("4 queries"), "{shown}");
        assert!(shown.contains("evictions"), "{shown}");
    }

    #[test]
    fn merge_is_addition_on_counters_and_last_writer_wins_on_records() {
        let mut a = EngineStats::default();
        a.record(q(Plan::DdCircuit, false));
        a.cache_evictions = 2;
        a.lane_kernel_calls = 3;
        let mut b = EngineStats::default();
        b.record(q(Plan::Obdd, true));
        b.record(q(Plan::Extensional, false));
        b.cache_evictions = 1;
        b.lane_kernel_calls = 4;
        b.extensional_memo_hits = 1;
        a.patches_applied = 2;
        a.patch_nanos = 500;
        a.full_recompiles_avoided = 5;
        b.patches_applied = 1;
        b.patch_nanos = 250;
        b.full_recompiles_avoided = 1;

        let mut merged = EngineStats::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.queries, 3);
        assert_eq!(merged.dd_plans, 1);
        assert_eq!(merged.obdd_plans, 1);
        assert_eq!(merged.extensional_plans, 1);
        assert_eq!(merged.cache_hits, 1);
        assert_eq!(merged.cache_misses, 1);
        assert_eq!(merged.cache_evictions, 3);
        assert_eq!(merged.compile_time, Duration::from_micros(15));
        assert_eq!(merged.eval_time, Duration::from_micros(3));
        assert_eq!(merged.compile_nanos(), 15_000);
        assert_eq!(merged.walk_nanos, 2_000, "the two cacheable walks");
        assert_eq!(merged.lane_kernel_calls, 7);
        assert_eq!(merged.extensional_memo_hits, 1);
        assert_eq!(merged.patches_applied, 3);
        assert_eq!(merged.patch_nanos, 750);
        assert_eq!(merged.full_recompiles_avoided, 6);
        assert!(
            merged
                .to_string()
                .contains("3 patch(es) over 750 ns avoiding 6 recompile(s)"),
            "{merged}"
        );
        // b recorded last; its final record is the merged `last`.
        assert!(matches!(
            merged.last,
            Some(QueryStats {
                plan: Plan::Extensional,
                ..
            })
        ));
        // Merging an empty stats object changes nothing.
        let snapshot = merged.queries;
        merged.merge(&EngineStats::default());
        assert_eq!(merged.queries, snapshot);
        assert!(merged.last.is_some());
    }

    #[test]
    fn general_routes_have_their_own_counters_and_histograms() {
        let mut s = EngineStats::default();
        s.record(q(Plan::Lifted, false));
        s.record(q(Plan::GroundCircuit, false));
        s.record(q(Plan::GroundCircuit, true));
        assert_eq!(s.lifted_plans, 1);
        assert_eq!(s.ground_plans, 2);
        // Ground circuits are cacheable artifacts; lifted runs are not.
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.route_latency.lifted.count(), 1);
        assert_eq!(s.route_latency.ground.count(), 2);
        assert_eq!(s.route_latency.total_count(), s.queries);
        let mut merged = EngineStats::default();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.lifted_plans, 2);
        assert_eq!(merged.ground_plans, 4);
        assert_eq!(merged.route_latency.total_count(), merged.queries);
        assert!(
            merged.to_string().contains("lifted 2, ground 4"),
            "{merged}"
        );
    }

    #[test]
    fn latency_buckets_cover_powers_of_two() {
        let mut h = LatencyHistogram::default();
        h.record_nanos(0); // bucket 0
        h.record_nanos(1); // [1, 2) → bucket 1
        h.record_nanos(2); // [2, 4) → bucket 2
        h.record_nanos(3); // [2, 4) → bucket 2
        h.record_nanos(1_023); // [512, 1024) → bucket 10
        h.record_nanos(u64::MAX); // saturates into the top bucket
        assert_eq!(h.count(), 6);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.buckets()[LATENCY_BUCKETS - 1], 1);
        // Quantile upper bounds are bucket upper bounds.
        assert_eq!(h.quantile(0.5), Some(4), "p50 lands in the [2,4) bucket");
        assert_eq!(LatencyHistogram::default().quantile(0.5), None);
    }

    #[test]
    fn record_feeds_the_plans_route_histogram() {
        let mut s = EngineStats::default();
        s.record(q(Plan::DdCircuit, false));
        s.record(q(Plan::DdCircuit, true));
        s.record(q(Plan::BruteForce, false));
        s.record(QueryStats {
            samples: 7,
            ..q(Plan::Sample(SamplerKind::NaiveWorlds), false)
        });
        assert_eq!(s.route_latency.dd.count(), 2);
        assert_eq!(s.route_latency.brute_force.count(), 1);
        assert_eq!(s.route_latency.sample.count(), 1);
        assert_eq!(s.route_latency.obdd.count(), 0);
        // One sample per recorded query, no more, no less.
        assert_eq!(s.route_latency.total_count(), s.queries);
        // The sample is compile + eval: 5 µs + 1 µs = 6000 ns → [4096, 8192).
        assert_eq!(s.route_latency.dd.buckets()[13], 2);
    }

    #[test]
    fn histograms_merge_additively_bucket_by_bucket() {
        let mut a = EngineStats::default();
        a.record(q(Plan::Obdd, false));
        a.record(q(Plan::Extensional, false));
        let mut b = EngineStats::default();
        b.record(q(Plan::Obdd, true));
        b.record(QueryStats {
            eval_time: Duration::from_millis(3),
            ..q(Plan::Obdd, true)
        });

        let mut merged = EngineStats::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.route_latency.obdd.count(), 3);
        assert_eq!(merged.route_latency.extensional.count(), 1);
        assert_eq!(merged.route_latency.total_count(), merged.queries);
        // Bucket-wise: the two 6 µs obdd walks sit together, the 3 ms
        // outlier alone, regardless of merge grouping.
        let mut expected = LatencyHistogram::default();
        expected.record_nanos(6_000);
        expected.record_nanos(6_000);
        expected.record_nanos(3_005_000);
        assert_eq!(merged.route_latency.obdd, expected);
        // Merge order cannot change any histogram (pure addition).
        let mut reversed = EngineStats::default();
        reversed.merge(&b);
        reversed.merge(&a);
        assert_eq!(reversed.route_latency, merged.route_latency);
    }
}
