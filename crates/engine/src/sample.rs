//! Monte-Carlo anytime backend for the hard region.
//!
//! When `classify(φ)` lands in `HardMonotone`, `HardByTransfer`, or
//! `ConjecturedHard` and the instance is too large for brute force,
//! exact evaluation is off the table (#P-hard, Corollary 3.9 /
//! conjectured beyond the monotone Euler range). This module trades the
//! exact answer for a *bounded* one: an [`Estimate`] carrying an
//! `(ε, δ)` guarantee — `Pr[|value − p| > ε] ≤ δ` — computed by one of
//! two samplers:
//!
//! * **Karp–Luby** ([`SamplerKind::KarpLuby`]): the classic unbiased
//!   union-of-cubes estimator over the grounded lineage DNF (monotone
//!   `φ` only, via [`intext_query::lineage_dnf`]). Its estimator range
//!   is `[0, M]` where `M = Σ_j Pr(C_j)`, so Hoeffding gives
//!   `N = ⌈M²·ln(2/δ) / (2ε²)⌉` samples.
//! * **Naive world sampling** ([`SamplerKind::NaiveWorlds`]): Bernoulli
//!   worlds evaluated through a 0/1-exact lineage circuit, `LANES`
//!   worlds per kernel call. Indicator range `[0, 1]`, so
//!   `N = ⌈ln(2/δ) / (2ε²)⌉` regardless of instance size. This is the
//!   fallback when `φ` is non-monotone or the DNF grounding would blow
//!   up.
//!
//! **Determinism.** Every estimate is a pure function of
//! `(artifact, tid, seed, stream)`: the RNG is
//! [`StdRng::from_seed_stream`]`(cfg.seed, stream)` and all draws happen
//! in a fixed order, so batch sharding can hand each scenario its own
//! stream (derived from the *global* scenario index) and reproduce the
//! sequential run bit for bit. The only escape hatch is the optional
//! deadline: when it fires mid-run the estimate is truncated (with `ε`
//! widened to what the drawn samples actually support), and wall-clock
//! truncation is inherently not run-to-run deterministic.

use std::fmt;
use std::time::{Duration, Instant};

use intext_circuits::{Circuit, EvalScratch, GateId, ProbMatrix, LANES};
use intext_query::{h_witnesses, lineage_dnf, HQuery};
use intext_tid::{Tid, TupleId};
use rand::rngs::StdRng;
use rand::Rng;

/// Configuration for the Monte-Carlo backend, carried in
/// [`EngineConfig::sampling`](crate::EngineConfig::sampling).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingConfig {
    /// Additive error bound: the estimate is within `eps` of the true
    /// probability with probability at least `1 − delta`. Must be in
    /// `(0, 1)`.
    pub eps: f64,
    /// Failure probability of the `eps` bound. Must be in `(0, 1)`.
    pub delta: f64,
    /// Optional wall-clock budget per estimate. When it expires the
    /// sampler stops early and *widens* the reported `eps` to the bound
    /// the drawn samples actually support (anytime semantics); the
    /// estimate is then no longer run-to-run deterministic.
    pub deadline: Option<Duration>,
    /// Base seed of the deterministic RNG-stream family. Each scenario
    /// samples from stream `(seed, scenario index)`.
    pub seed: u64,
}

impl Default for SamplingConfig {
    /// `eps = 0.05`, `delta = 1e-3`, no deadline, a fixed seed — fully
    /// deterministic out of the box.
    fn default() -> Self {
        SamplingConfig {
            eps: 0.05,
            delta: 1e-3,
            deadline: None,
            seed: 0x7065_2026,
        }
    }
}

/// Which Monte-Carlo estimator ran (or would run — also used by dry-run
/// planning).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SamplerKind {
    /// Karp–Luby DNF sampling over the grounded monotone lineage.
    KarpLuby,
    /// Naive Bernoulli world sampling through the lane kernel.
    NaiveWorlds,
}

impl fmt::Display for SamplerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplerKind::KarpLuby => write!(f, "Karp-Luby DNF sampler"),
            SamplerKind::NaiveWorlds => write!(f, "naive world sampler"),
        }
    }
}

/// A bounded probability estimate: `Pr[|value − p| > eps] ≤ delta`.
///
/// Exact answers also fit this shape — [`PqeEngine::estimate`] returns
/// them with `eps = 0`, `delta = 0`, `samples = 0` and `sampler: None`,
/// so callers can treat every query uniformly.
///
/// [`PqeEngine::estimate`]: crate::PqeEngine::estimate
#[derive(Clone, Copy, Debug)]
pub struct Estimate {
    /// The estimated probability, clamped to `[0, 1]`.
    pub value: f64,
    /// The additive error bound this estimate guarantees. Equal to the
    /// configured `eps` unless a deadline truncated the run, in which
    /// case it is widened to what the drawn samples support.
    pub eps: f64,
    /// Failure probability of the bound (the configured `delta`; `0`
    /// for exact answers).
    pub delta: f64,
    /// Monte-Carlo samples drawn (`0` for exact answers).
    pub samples: u64,
    /// Wall time spent producing the estimate.
    pub elapsed: Duration,
    /// Which sampler produced the value; `None` when the answer is
    /// exact (non-sampling plan, or a degenerate lineage the sampler
    /// resolved symbolically).
    pub sampler: Option<SamplerKind>,
    /// `true` iff the deadline fired and `eps` was widened.
    pub deadline_hit: bool,
}

/// One sampler invocation's result plus the kernel-call count to fold
/// into [`EngineStats`](crate::EngineStats).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SampleRun {
    pub estimate: Estimate,
    pub kernel_calls: u64,
}

/// Compiled, probability-independent sampler input for one
/// `(φ, database)` shape — the sampling analogue of a cached circuit
/// artifact. Building it grounds the lineage once; [`run`](Self::run)
/// then serves every re-weighting of the same shape.
#[derive(Debug)]
pub(crate) enum SamplerArtifact {
    /// Karp–Luby input: the grounded DNF with clauses as dense indices
    /// into `support` (so world vectors are flat `Vec<bool>`s).
    Dnf {
        /// Distinct tuple ids the DNF mentions, ascending.
        support: Vec<u32>,
        /// Clauses as sorted indices into `support`.
        clauses: Vec<Vec<usize>>,
        cfg: SamplingConfig,
    },
    /// Naive-world input: a 0/1-exact lineage circuit (`∧`/`¬` gates
    /// only, so Boolean lane inputs stay exactly `0.0`/`1.0` through
    /// the product-form kernel) over tuple-id variables.
    Worlds {
        circuit: Circuit,
        root: GateId,
        /// Tuple ids the circuit reads, ascending.
        support: Vec<u32>,
        cfg: SamplingConfig,
    },
}

impl SamplerArtifact {
    /// Grounds `q` on `tid`'s database into the artifact for `kind`.
    ///
    /// # Panics
    /// Panics if `kind` is [`SamplerKind::KarpLuby`] and `φ` is
    /// non-monotone — the planner only selects Karp–Luby for monotone
    /// lineages.
    pub(crate) fn build(kind: SamplerKind, q: &HQuery, tid: &Tid, cfg: SamplingConfig) -> Self {
        match kind {
            SamplerKind::KarpLuby => {
                let dnf = lineage_dnf(q, tid.database())
                    .expect("Karp-Luby requires a monotone lineage DNF");
                let support = dnf.support().to_vec();
                let clauses = dnf
                    .clauses()
                    .iter()
                    .map(|c| {
                        c.iter()
                            .map(|t| support.binary_search(t).expect("clause tuple in support"))
                            .collect()
                    })
                    .collect();
                SamplerArtifact::Dnf {
                    support,
                    clauses,
                    cfg,
                }
            }
            SamplerKind::NaiveWorlds => {
                let (circuit, root) = world_circuit(q, tid);
                let mut support: Vec<u32> = circuit.vars(root).into_iter().collect();
                support.sort_unstable();
                SamplerArtifact::Worlds {
                    circuit,
                    root,
                    support,
                    cfg,
                }
            }
        }
    }

    /// Which sampler this artifact drives.
    #[cfg(test)]
    pub(crate) fn kind(&self) -> SamplerKind {
        match self {
            SamplerArtifact::Dnf { .. } => SamplerKind::KarpLuby,
            SamplerArtifact::Worlds { .. } => SamplerKind::NaiveWorlds,
        }
    }

    /// Runs the sampler on `tid` using RNG stream `(cfg.seed, stream)`.
    /// Pure in `(self, tid, stream)` barring deadline truncation.
    pub(crate) fn run(&self, tid: &Tid, stream: u64) -> SampleRun {
        match self {
            SamplerArtifact::Dnf {
                support,
                clauses,
                cfg,
            } => run_karp_luby(support, clauses, *cfg, tid, stream),
            SamplerArtifact::Worlds {
                circuit,
                root,
                support,
                cfg,
            } => run_naive_worlds(circuit, *root, support, *cfg, tid, stream),
        }
    }
}

/// Hoeffding sample count for a `[0, range]`-valued estimator:
/// `⌈range²·ln(2/δ) / (2ε²)⌉`, at least 1.
fn hoeffding_samples(range: f64, eps: f64, delta: f64) -> u64 {
    let n = (range * range * (2.0 / delta).ln() / (2.0 * eps * eps)).ceil();
    (n as u64).max(1)
}

/// The widened `ε` that `drawn` samples of a `[0, range]` estimator
/// support at confidence `1 − δ` (Hoeffding, inverted).
fn achieved_eps(range: f64, delta: f64, drawn: u64) -> f64 {
    if drawn == 0 {
        return 1.0;
    }
    range * ((2.0 / delta).ln() / (2.0 * drawn as f64)).sqrt()
}

fn exact_estimate(value: f64, elapsed: Duration, sampler: SamplerKind) -> SampleRun {
    SampleRun {
        estimate: Estimate {
            value,
            eps: 0.0,
            delta: 0.0,
            samples: 0,
            elapsed,
            sampler: Some(sampler),
            deadline_hit: false,
        },
        kernel_calls: 0,
    }
}

/// Karp–Luby: sample a clause `j` with probability `Pr(C_j)/M`, then a
/// world conditioned on `C_j` being true; score `X = 1` iff no clause
/// *before* `j` is also satisfied. `E[M·X] = Pr(⋁ C_j)` exactly.
fn run_karp_luby(
    support: &[u32],
    clauses: &[Vec<usize>],
    cfg: SamplingConfig,
    tid: &Tid,
    stream: u64,
) -> SampleRun {
    let start = Instant::now();
    let probs: Vec<f64> = support.iter().map(|&t| tid.prob_f64(TupleId(t))).collect();
    // Clause probabilities and their running prefix sum (the CDF the
    // clause draw inverts); M is the total union-bound mass.
    let mut prefix = Vec::with_capacity(clauses.len());
    let mut m = 0.0f64;
    for c in clauses {
        m += c.iter().map(|&i| probs[i]).product::<f64>();
        prefix.push(m);
    }
    if clauses.is_empty() || m <= 0.0 {
        // Empty DNF, or every clause has probability zero: the union is
        // the empty event and the answer is exact.
        return exact_estimate(0.0, start.elapsed(), SamplerKind::KarpLuby);
    }
    let target = hoeffding_samples(m, cfg.eps, cfg.delta);
    let mut rng = StdRng::from_seed_stream(cfg.seed, stream);
    let mut present = vec![false; support.len()];
    let mut hits = 0u64;
    let mut drawn = 0u64;
    let mut deadline_hit = false;
    while drawn < target {
        if let Some(budget) = cfg.deadline {
            if drawn.is_multiple_of(512) && drawn > 0 && start.elapsed() >= budget {
                deadline_hit = true;
                break;
            }
        }
        let u: f64 = rng.random();
        let j = prefix
            .partition_point(|&cum| cum < u * m)
            .min(clauses.len() - 1);
        for (slot, &p) in present.iter_mut().zip(&probs) {
            *slot = rng.random::<f64>() < p;
        }
        for &i in &clauses[j] {
            present[i] = true;
        }
        if !clauses[..j].iter().any(|c| c.iter().all(|&i| present[i])) {
            hits += 1;
        }
        drawn += 1;
    }
    let value = (m * hits as f64 / drawn as f64).clamp(0.0, 1.0);
    let eps = if deadline_hit {
        cfg.eps.max(achieved_eps(m, cfg.delta, drawn))
    } else {
        cfg.eps
    };
    SampleRun {
        estimate: Estimate {
            value,
            eps,
            delta: cfg.delta,
            samples: drawn,
            elapsed: start.elapsed(),
            sampler: Some(SamplerKind::KarpLuby),
            deadline_hit,
        },
        kernel_calls: 0,
    }
}

/// Naive world sampling: draw Bernoulli worlds over the circuit's
/// support and evaluate `LANES` of them per kernel call — sampled
/// worlds are just another scenario batch with 0/1 probabilities.
fn run_naive_worlds(
    circuit: &Circuit,
    root: GateId,
    support: &[u32],
    cfg: SamplingConfig,
    tid: &Tid,
    stream: u64,
) -> SampleRun {
    let start = Instant::now();
    if support.is_empty() {
        // The lineage is constant: evaluate it symbolically.
        let value = circuit.probability_f64(root, &|_| 0.0);
        return exact_estimate(value, start.elapsed(), SamplerKind::NaiveWorlds);
    }
    let probs: Vec<f64> = support.iter().map(|&t| tid.prob_f64(TupleId(t))).collect();
    let target = hoeffding_samples(1.0, cfg.eps, cfg.delta);
    let mut rng = StdRng::from_seed_stream(cfg.seed, stream);
    let vars = support.last().map_or(0, |&t| t as usize + 1);
    let mut matrix = ProbMatrix::new();
    let mut scratch = EvalScratch::new();
    let mut hits = 0u64;
    let mut drawn = 0u64;
    let mut kernel_calls = 0u64;
    let mut deadline_hit = false;
    while drawn < target {
        if let Some(budget) = cfg.deadline {
            if drawn > 0 && start.elapsed() >= budget {
                deadline_hit = true;
                break;
            }
        }
        let block = ((target - drawn) as usize).min(LANES);
        matrix.reset(vars);
        for lane in 0..block {
            for (&t, &p) in support.iter().zip(&probs) {
                let bit = rng.random::<f64>() < p;
                matrix.set(t, lane, f64::from(u8::from(bit)));
            }
        }
        let lanes = circuit.probability_f64_many(root, &matrix, &mut scratch);
        kernel_calls += 1;
        hits += lanes[..block].iter().filter(|&&v| v > 0.5).count() as u64;
        drawn += block as u64;
    }
    let value = (hits as f64 / drawn as f64).clamp(0.0, 1.0);
    let eps = if deadline_hit {
        cfg.eps.max(achieved_eps(1.0, cfg.delta, drawn))
    } else {
        cfg.eps
    };
    SampleRun {
        estimate: Estimate {
            value,
            eps,
            delta: cfg.delta,
            samples: drawn,
            elapsed: start.elapsed(),
            sampler: Some(SamplerKind::NaiveWorlds),
            deadline_hit,
        },
        kernel_calls,
    }
}

/// Builds the grounded lineage of `Q_φ` as a circuit of `∧`/`¬` gates
/// only (`∨` via De Morgan), so that evaluating it with lane inputs
/// that are exactly `0.0`/`1.0` yields exactly `0.0`/`1.0` — the
/// product-form `∨`-gate of the probability kernel *sums* lanes and
/// would exceed 1 on Boolean inputs, hence the restriction.
fn world_circuit(q: &HQuery, tid: &Tid) -> (Circuit, GateId) {
    let db = tid.database();
    let mut c = Circuit::new();
    let or = |c: &mut Circuit, inputs: Vec<GateId>| -> GateId {
        if inputs.is_empty() {
            return c.constant(false);
        }
        let negs: Vec<GateId> = inputs.into_iter().map(|g| c.not(g)).collect();
        let all = c.and(negs);
        c.not(all)
    };
    // h_i holds iff some witness pair is fully present.
    let h: Vec<GateId> = (0..=q.k())
        .map(|i| {
            let pairs: Vec<GateId> = h_witnesses(db, i)
                .into_iter()
                .map(|(a, b)| {
                    let va = c.var(a.0);
                    let vb = c.var(b.0);
                    c.and(vec![va, vb])
                })
                .collect();
            or(&mut c, pairs)
        })
        .collect();
    // φ as the disjunction of its satisfying minterms over the h's.
    let minterms: Vec<GateId> = q
        .phi()
        .sat_iter()
        .map(|v| {
            let lits: Vec<GateId> = h
                .iter()
                .enumerate()
                .map(|(i, &g)| if v >> i & 1 == 1 { g } else { c.not(g) })
                .collect();
            c.and(lits)
        })
        .collect();
    let root = or(&mut c, minterms);
    (c, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::BoolFn;
    use intext_numeric::BigRational;
    use intext_query::pqe_brute_force;
    use intext_tid::{complete_database, uniform_tid};

    fn half() -> BigRational {
        BigRational::from_ratio(1, 2)
    }

    fn cfg(eps: f64, delta: f64) -> SamplingConfig {
        SamplingConfig {
            eps,
            delta,
            ..SamplingConfig::default()
        }
    }

    /// The world circuit is a 0/1-exact lineage: under every Boolean
    /// world it agrees with `lineage_eval`, and its probability walk
    /// returns exactly 0.0 or 1.0 on Boolean inputs (the property the
    /// lane-kernel sampling relies on — shared variables make the walk
    /// meaningless for *fractional* inputs, which is why worlds are
    /// sampled instead of evaluated symbolically here).
    #[test]
    fn world_circuit_matches_lineage_on_every_world() {
        for table in [0b0110_1001u64, 0b1110_1000, 0b0000_0001, 0xffff >> 8] {
            let phi = BoolFn::from_table_u64(3, table);
            let q = HQuery::new(phi);
            let tid = uniform_tid(complete_database(2, 2), half());
            let (c, root) = world_circuit(&q, &tid);
            for world in 0..(1u64 << tid.len()) {
                let want = q.lineage_eval(tid.database(), world);
                assert_eq!(c.eval(root, &|v| world >> v & 1 == 1), want, "{world:#b}");
                let walked = c.probability_f64(root, &|v| f64::from(u8::from(world >> v & 1 == 1)));
                assert_eq!(walked, f64::from(u8::from(want)), "{world:#b}");
            }
        }
    }

    /// Both samplers hit the (ε, δ) contract on a hard monotone φ at a
    /// fixed seed, and the two artifacts of one query agree with the
    /// exact answer within ε.
    #[test]
    fn both_samplers_land_within_eps_of_brute_force() {
        let phi = BoolFn::from_fn(3, |v| v != 0); // HardMonotone
        let q = HQuery::new(phi);
        let tid = uniform_tid(complete_database(2, 2), half());
        let exact = pqe_brute_force(&q, &tid).unwrap().to_f64();
        for kind in [SamplerKind::KarpLuby, SamplerKind::NaiveWorlds] {
            let art = SamplerArtifact::build(kind, &q, &tid, cfg(0.05, 1e-6));
            assert_eq!(art.kind(), kind);
            let run = art.run(&tid, 0);
            let est = run.estimate;
            assert_eq!(est.sampler, Some(kind));
            assert!(est.samples > 0);
            assert!(!est.deadline_hit);
            assert!(
                (est.value - exact).abs() <= est.eps,
                "{kind}: |{} - {exact}| > {}",
                est.value,
                est.eps
            );
            // Naive worlds drives the lane kernel; Karp-Luby does not.
            assert_eq!(run.kernel_calls > 0, kind == SamplerKind::NaiveWorlds);
        }
    }

    /// Same stream ⟹ bit-identical; different streams ⟹ (almost
    /// surely) different estimates.
    #[test]
    fn streams_are_deterministic_and_independent() {
        let phi = BoolFn::from_fn(3, |v| v.count_ones() >= 2);
        let q = HQuery::new(phi);
        let tid = uniform_tid(complete_database(2, 2), half());
        for kind in [SamplerKind::KarpLuby, SamplerKind::NaiveWorlds] {
            let art = SamplerArtifact::build(kind, &q, &tid, cfg(0.02, 1e-3));
            let a = art.run(&tid, 7).estimate;
            let b = art.run(&tid, 7).estimate;
            assert_eq!(a.value.to_bits(), b.value.to_bits());
            assert_eq!(a.samples, b.samples);
            let c = art.run(&tid, 8).estimate;
            assert_ne!(a.value.to_bits(), c.value.to_bits(), "{kind}");
        }
    }

    /// A constant-false lineage short-circuits to an exact zero without
    /// drawing samples.
    #[test]
    fn empty_union_is_exact_zero() {
        let phi = BoolFn::from_fn(2, |_| false);
        let q = HQuery::new(phi);
        let tid = uniform_tid(complete_database(1, 2), half());
        for kind in [SamplerKind::KarpLuby, SamplerKind::NaiveWorlds] {
            let art = SamplerArtifact::build(kind, &q, &tid, cfg(0.05, 1e-3));
            let est = art.run(&tid, 0).estimate;
            assert_eq!(est.value, 0.0);
            assert_eq!(est.samples, 0);
            assert_eq!(est.eps, 0.0);
        }
    }

    /// A zero deadline truncates the run and widens ε accordingly.
    #[test]
    fn deadline_truncates_and_widens_eps() {
        let phi = BoolFn::from_fn(3, |v| v != 0);
        let q = HQuery::new(phi);
        let tid = uniform_tid(complete_database(2, 2), half());
        let tight = SamplingConfig {
            eps: 1e-3,
            delta: 1e-6,
            deadline: Some(Duration::ZERO),
            ..SamplingConfig::default()
        };
        for kind in [SamplerKind::KarpLuby, SamplerKind::NaiveWorlds] {
            let art = SamplerArtifact::build(kind, &q, &tid, tight);
            let est = art.run(&tid, 0).estimate;
            assert!(est.deadline_hit, "{kind}");
            assert!(est.eps > tight.eps, "{kind}: ε must widen on truncation");
            assert!(est.samples > 0, "at least one sample before the check");
        }
    }
}
