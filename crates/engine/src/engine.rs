//! The `PqeEngine`: plan, compile, cache, evaluate — sequentially or
//! fanned across shard workers sharing one compiled circuit.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use intext_core::{classify, compile_dd, Region};
use intext_extensional::{pqe_extensional, pqe_extensional_f64};
use intext_lineage::compile_degenerate_obdd;
use intext_numeric::BigRational;
use intext_query::{pqe_brute_force, pqe_brute_force_f64, HQuery};
use intext_tid::Tid;

use intext_tid::Database;

use crate::cache::{Artifact, ArtifactCache, CacheKey};
use crate::store::{self, StoreError};
use crate::{BatchPlan, EngineStats, Explanation, Plan, QueryStats};

/// What a [`PqeEngine::load_cache`] / [`PqeEngine::import_artifact`]
/// call admitted into the cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Artifacts decoded, validated and offered to the cache (each also
    /// counted in [`EngineStats::artifact_loads`]).
    pub artifacts: usize,
    /// Total gates (OBDD nodes + d-D gates) across the loaded artifacts.
    pub gates: usize,
    /// Entries the LRU evicted while admitting them — nonzero only when
    /// the snapshot does not fit the configured gate budget (an
    /// oversized artifact also counts itself, exactly as on the compile
    /// path).
    pub evictions: u64,
}

/// Knobs for the planner; the defaults are the production-shaped choices.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Hard queries are brute-forced only up to this many tuples
    /// (`2^tuples` possible worlds); larger instances return
    /// [`EngineError::Intractable`]. Capped at 63 by the world bitmask.
    pub max_brute_force_tuples: usize,
    /// Route *monotone safe* nondegenerate queries through lifted
    /// inference instead of the d-D pipeline. Off by default: the
    /// compiled circuit amortizes across re-weightings, which lifted
    /// inference cannot. Degenerate queries keep the OBDD route either
    /// way (it is both cheaper and cacheable).
    pub prefer_extensional: bool,
    /// Gate budget of the artifact cache (total OBDD nodes + d-D gates
    /// retained); `None` keeps every artifact forever. When the budget
    /// overflows, least-recently-used artifacts are evicted and counted
    /// in [`EngineStats::cache_evictions`]. Can be changed later with
    /// [`PqeEngine::set_cache_budget`].
    pub cache_gate_budget: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_brute_force_tuples: 20,
            prefer_extensional: false,
            cache_gate_budget: None,
        }
    }
}

/// Errors from planning or evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The query's chain length differs from the database vocabulary.
    VocabularyMismatch {
        /// `k` of the query's `φ`.
        query_k: u8,
        /// `k` of the database.
        database_k: u8,
    },
    /// `PQE(Q_φ)` is (conjectured) `#P`-hard and the instance exceeds
    /// the brute-force budget: no sound backend exists.
    Intractable {
        /// The Figure 1 region the query was classified into.
        region: Region,
        /// Tuple count of the instance.
        tuples: usize,
        /// The configured brute-force budget it exceeded.
        budget: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::VocabularyMismatch {
                query_k,
                database_k,
            } => write!(
                f,
                "query is over k={query_k} but the database has k={database_k}"
            ),
            EngineError::Intractable {
                region,
                tuples,
                budget,
            } => write!(
                f,
                "query classified {region:?} (#P-hard side of Figure 1) and \
                 {tuples} tuples exceed the brute-force budget of {budget}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// The unified PQE front door: classifies `φ` on the paper's Figure 1
/// map, routes to the cheapest sound backend, caches compiled lineage
/// artifacts across probability re-weightings, and keeps
/// [`EngineStats`] for every decision it makes.
///
/// See the crate-level docs for a usage example and `DESIGN.md` for the
/// routing diagram and the concurrency model.
#[derive(Debug)]
pub struct PqeEngine {
    config: EngineConfig,
    cache: ArtifactCache,
    stats: EngineStats,
}

impl Default for PqeEngine {
    fn default() -> Self {
        Self::with_config(EngineConfig::default())
    }
}

impl PqeEngine {
    /// An engine with the default [`EngineConfig`].
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with an explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        PqeEngine {
            cache: ArtifactCache::new(config.cache_gate_budget),
            config,
            stats: EngineStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Lifetime statistics (plans chosen, cache hits/misses/evictions,
    /// wall time).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Zeroes the statistics; the artifact cache is untouched.
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Number of compiled artifacts currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Total gates (OBDD nodes + d-D gates) currently retained by the
    /// cache; never exceeds the budget.
    pub fn cache_gates(&self) -> usize {
        self.cache.total_gates()
    }

    /// The cache's gate budget (`None` = unbounded).
    pub fn cache_budget(&self) -> Option<usize> {
        self.cache.budget()
    }

    /// Replaces the cache's gate budget, evicting immediately if the
    /// retained artifacts no longer fit.
    pub fn set_cache_budget(&mut self, budget: Option<usize>) {
        self.config.cache_gate_budget = budget;
        self.stats.cache_evictions += self.cache.set_budget(budget);
    }

    /// Drops every cached artifact (not counted as evictions).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Serializes the whole artifact cache into one versioned bundle
    /// (format spec: `DESIGN.md` §5 and the [`store`](crate::store)
    /// docs). Entries are written in ascending last-used order, so
    /// [`load_cache`](Self::load_cache) replays the LRU recency ranking
    /// — and the bytes are deterministic, which is what lets CI pin
    /// golden fixtures. Probabilities are never serialized, for the same
    /// reason they are not in the cache key: one stored circuit serves
    /// every re-weighting.
    pub fn save_cache(&self) -> Vec<u8> {
        store::encode_bundle(&self.cache.entries_lru_order())
    }

    /// Warm-starts this engine from a [`save_cache`](Self::save_cache)
    /// bundle: every artifact is decoded, structurally revalidated
    /// against its recomputed [`CacheKey`], and admitted through the
    /// normal LRU insert path (budget enforced, evictions counted), so a
    /// warmed replica replays the saved workload with zero compiles —
    /// `misses == 0` and `artifact_loads == distinct shapes` in
    /// [`EngineStats`].
    ///
    /// Total and all-or-nothing: any malformed byte returns a typed
    /// [`StoreError`] *before* the cache or the statistics are touched.
    pub fn load_cache(&mut self, bytes: &[u8]) -> Result<LoadReport, StoreError> {
        let artifacts = store::decode_bundle(bytes)?;
        Ok(self.admit(artifacts))
    }

    /// Serializes the cached artifact for `(q.phi(), db shape)` into a
    /// standalone blob importable by
    /// [`import_artifact`](Self::import_artifact) on any engine. Reads
    /// the cache without bumping recency (like
    /// [`explain`](Self::explain), exporting must not perturb eviction
    /// order); returns [`StoreError::NotCached`] when the artifact is
    /// not resident.
    pub fn export_artifact(&self, q: &HQuery, db: &Database) -> Result<Vec<u8>, StoreError> {
        let key = CacheKey::new(q.phi(), db);
        let artifact = self.cache.peek(&key).ok_or(StoreError::NotCached)?;
        Ok(store::encode_artifact(&key, artifact))
    }

    /// Decodes, revalidates and admits one exported artifact. The same
    /// totality contract as [`load_cache`](Self::load_cache): malformed
    /// input returns a typed [`StoreError`] and leaves the engine
    /// untouched.
    pub fn import_artifact(&mut self, bytes: &[u8]) -> Result<LoadReport, StoreError> {
        let decoded = store::decode_artifact(bytes)?;
        Ok(self.admit(vec![decoded]))
    }

    /// Inserts already-validated artifacts through the normal LRU path,
    /// counting loads and evictions.
    fn admit(&mut self, artifacts: Vec<(CacheKey, Artifact)>) -> LoadReport {
        let mut report = LoadReport::default();
        for (key, artifact) in artifacts {
            let (handle, evicted) = self.cache.insert(key, artifact);
            self.stats.cache_evictions += evicted;
            self.stats.artifact_loads += 1;
            report.artifacts += 1;
            report.gates += handle.size();
            report.evictions += evicted;
        }
        report
    }

    /// The routing decision for `q` on `tid`, without evaluating.
    ///
    /// Precedence (soundness argument in `DESIGN.md`):
    ///
    /// 1. degenerate `φ` → [`Plan::Obdd`] (Proposition 3.7);
    /// 2. monotone `φ`, `e(φ) = 0`, with
    ///    [`prefer_extensional`](EngineConfig::prefer_extensional) →
    ///    [`Plan::Extensional`] (safe by Corollary 3.9);
    /// 3. `e(φ) = 0` → [`Plan::DdCircuit`] (Theorem 5.2);
    /// 4. otherwise `PQE(Q_φ)` is `#P`-hard or conjectured so →
    ///    [`Plan::BruteForce`] within the budget, else
    ///    [`EngineError::Intractable`].
    pub fn plan(&self, q: &HQuery, tid: &Tid) -> Result<Plan, EngineError> {
        let phi = q.phi();
        if tid.database().k() != q.k() {
            return Err(EngineError::VocabularyMismatch {
                query_k: q.k(),
                database_k: tid.database().k(),
            });
        }
        let region = classify(phi);
        match region {
            Region::DegenerateObdd => Ok(Plan::Obdd),
            Region::ZeroEulerDD => {
                if self.config.prefer_extensional && phi.is_monotone() {
                    Ok(Plan::Extensional)
                } else {
                    Ok(Plan::DdCircuit)
                }
            }
            Region::HardMonotone | Region::HardByTransfer | Region::ConjecturedHard => {
                let budget = self.config.max_brute_force_tuples.min(63);
                if tid.len() <= budget {
                    Ok(Plan::BruteForce)
                } else {
                    Err(EngineError::Intractable {
                        region,
                        tuples: tid.len(),
                        budget,
                    })
                }
            }
        }
    }

    /// The full routing rationale for `q` on `tid`: region, chosen plan
    /// (or why none exists), and whether the artifact is already cached.
    pub fn explain(&self, q: &HQuery, tid: &Tid) -> Explanation {
        let plan = self.plan(q, tid);
        let cached = matches!(plan, Ok(p) if p.is_cacheable())
            && self.cache.contains(&CacheKey::new(q.phi(), tid.database()));
        Explanation {
            region: classify(q.phi()),
            tuples: tid.len(),
            plan,
            cached,
        }
    }

    /// The shared evaluation path behind [`evaluate`](Self::evaluate)
    /// and [`evaluate_f64`](Self::evaluate_f64): route, compile or reuse
    /// the cached artifact, evaluate with the given backends, record
    /// [`QueryStats`].
    fn evaluate_dispatch<T>(
        &mut self,
        q: &HQuery,
        tid: &Tid,
        walk: impl Fn(&Artifact, &Tid) -> T,
        lifted: impl Fn(&HQuery, &Tid) -> T,
        worlds: impl Fn(&HQuery, &Tid) -> T,
    ) -> Result<T, EngineError> {
        let plan = self.plan(q, tid)?;
        let (p, record) = if plan.is_cacheable() {
            // Build the key once and probe once: the hit path — the one
            // the cache exists to make hot — must not re-hash the O(|D|)
            // key per probe.
            let key = CacheKey::new(q.phi(), tid.database());
            let (cache_hit, compile_time, artifact) = match self.cache.get(&key) {
                Some(artifact) => (true, Duration::ZERO, artifact),
                None => {
                    let started = Instant::now();
                    let compiled = Self::compile_artifact(plan, q, tid);
                    let compile_time = started.elapsed();
                    let (artifact, evicted) = self.cache.insert(key, compiled);
                    self.stats.cache_evictions += evicted;
                    (false, compile_time, artifact)
                }
            };
            let started = Instant::now();
            let p = walk(&artifact, tid);
            let circuit_size = Some(artifact.size());
            (
                p,
                QueryStats {
                    plan,
                    cache_hit,
                    circuit_size,
                    compile_time,
                    eval_time: started.elapsed(),
                },
            )
        } else {
            let started = Instant::now();
            let p = match plan {
                Plan::Extensional => lifted(q, tid),
                Plan::BruteForce => worlds(q, tid),
                Plan::Obdd | Plan::DdCircuit => unreachable!("cacheable plans handled above"),
            };
            (
                p,
                QueryStats {
                    plan,
                    cache_hit: false,
                    circuit_size: None,
                    compile_time: Duration::ZERO,
                    eval_time: started.elapsed(),
                },
            )
        };
        self.stats.record(record);
        Ok(p)
    }

    /// Compiles the artifact a cacheable `plan` promised. The planner
    /// already established the backend preconditions (vocabulary match,
    /// degeneracy / zero Euler characteristic), so compilation cannot
    /// fail.
    fn compile_artifact(plan: Plan, q: &HQuery, tid: &Tid) -> Artifact {
        match plan {
            Plan::Obdd => Artifact::Obdd(
                compile_degenerate_obdd(q.phi(), tid.database())
                    .expect("planner guarantees a degenerate φ on a matching vocabulary"),
            ),
            Plan::DdCircuit => Artifact::Dd(
                compile_dd(q.phi(), tid.database()).expect("planner guarantees e(φ) = 0"),
            ),
            Plan::Extensional | Plan::BruteForce => {
                unreachable!("only cacheable plans compile artifacts")
            }
        }
    }

    /// Exact `PQE(Q_φ)` through the planner: routes, compiles or reuses
    /// a cached artifact, evaluates, and records [`QueryStats`].
    pub fn evaluate(&mut self, q: &HQuery, tid: &Tid) -> Result<BigRational, EngineError> {
        self.evaluate_dispatch(
            q,
            tid,
            |artifact, tid| artifact.probability_exact(tid),
            |q, tid| pqe_extensional(q, tid).expect("planner guarantees a monotone safe φ"),
            |q, tid| pqe_brute_force(q, tid).expect("planner bounds the instance below 64 tuples"),
        )
    }

    /// Floating-point `PQE(Q_φ)` through the same planner and cache
    /// (used by the benchmarks; cached-artifact walks stay linear).
    pub fn evaluate_f64(&mut self, q: &HQuery, tid: &Tid) -> Result<f64, EngineError> {
        self.evaluate_dispatch(
            q,
            tid,
            |artifact, tid| artifact.probability_f64(tid),
            |q, tid| pqe_extensional_f64(q, tid).expect("planner guarantees a monotone safe φ"),
            |q, tid| {
                pqe_brute_force_f64(q, tid).expect("planner bounds the instance below 64 tuples")
            },
        )
    }

    /// Evaluates `q` on every TID of a workload, amortizing compilation:
    /// TIDs sharing a database shape (the common case — one instance,
    /// many probability scenarios) compile once and re-walk the cached
    /// circuit for every other member of the batch.
    ///
    /// Fails on the first TID with no sound plan, so a batch is
    /// all-or-nothing. [`evaluate_batch_sharded`](Self::evaluate_batch_sharded)
    /// is the parallel variant with identical results.
    pub fn evaluate_batch(
        &mut self,
        q: &HQuery,
        tids: &[Tid],
    ) -> Result<Vec<BigRational>, EngineError> {
        tids.iter().map(|tid| self.evaluate(q, tid)).collect()
    }

    /// Dry-runs the sharded batch: how many workers would run, how many
    /// scenarios would compile vs share an artifact — without compiling
    /// or evaluating anything.
    ///
    /// The compile/share split assumes no evictions happen *during* the
    /// batch (a dry run cannot know artifact sizes before compiling
    /// them); with a tight budget and many distinct shapes the real
    /// [`evaluate_batch_sharded`](Self::evaluate_batch_sharded) may
    /// compile more.
    pub fn plan_batch(
        &self,
        q: &HQuery,
        scenarios: &[Tid],
        shards: usize,
    ) -> Result<BatchPlan, EngineError> {
        let mut compiles = 0;
        let mut shared = 0;
        let mut simulated: HashSet<CacheKey> = HashSet::new();
        let mut prev_plan = None;
        for (i, tid) in scenarios.iter().enumerate() {
            // `plan` depends on the TID only through its shape
            // (vocabulary k and tuple count), so a same-shape run shares
            // one decision.
            let plan = match prev_plan {
                Some(p) if i > 0 && tid.database().same_shape(scenarios[i - 1].database()) => p,
                _ => self.plan(q, tid)?,
            };
            prev_plan = Some(plan);
            if plan.is_cacheable() {
                let key = CacheKey::new(q.phi(), tid.database());
                if simulated.contains(&key) || self.cache.contains(&key) {
                    shared += 1;
                } else {
                    compiles += 1;
                    simulated.insert(key);
                }
            }
        }
        Ok(BatchPlan {
            scenarios: scenarios.len(),
            shards: Self::shard_count(scenarios.len(), shards),
            compiles,
            shared,
        })
    }

    /// The number of workers a request for `shards` shards over
    /// `scenarios` scenarios actually spawns: contiguous chunks of
    /// `ceil(scenarios / shards)`, so small workloads use fewer workers
    /// than asked and `shards == 0` is treated as `1`.
    fn shard_count(scenarios: usize, shards: usize) -> usize {
        if scenarios == 0 {
            return 0;
        }
        let shards = shards.clamp(1, scenarios);
        scenarios.div_ceil(scenarios.div_ceil(shards))
    }

    /// [`evaluate_batch`](Self::evaluate_batch), fanned across `shards`
    /// worker threads — bit-identical results, one compilation.
    ///
    /// Three phases (sequence diagram in `DESIGN.md`):
    ///
    /// 1. **Plan + compile (sequential).** Every scenario is planned, and
    ///    each *distinct* database shape compiles (or fetches) its
    ///    artifact exactly once; the artifacts are `Arc`-shared, so this
    ///    is the only phase that touches the cache or `&mut self`.
    ///    Consecutive same-shape scenarios (the dominant workload) skip
    ///    even the key construction via [`Tid::database`] shape equality.
    /// 2. **Walk (parallel).** Scenario chunks fan out over
    ///    `std::thread::scope` workers; each walk is a pure `&self` pass
    ///    over the shared circuit, and each worker records into its own
    ///    [`EngineStats`] — no locks, no shared mutable state.
    /// 3. **Merge.** Per-shard stats fold into the engine's aggregate via
    ///    [`EngineStats::merge`], in shard order, so the merged counters
    ///    equal a sequential run's; the [`BatchPlan`] (shard count,
    ///    compile/share split) lands in `EngineStats::last_batch`.
    ///
    /// Fails up front if any scenario lacks a sound plan — planning all
    /// scenarios is the very first step, so on error *nothing* has
    /// happened yet: no compile, no cache mutation, no eviction, no
    /// stats. (The sequential variant, by contrast, records the
    /// scenarios it finished before hitting the unsound one.)
    pub fn evaluate_batch_sharded(
        &mut self,
        q: &HQuery,
        scenarios: &[Tid],
        shards: usize,
    ) -> Result<Vec<BigRational>, EngineError> {
        self.evaluate_batch_sharded_with(
            q,
            scenarios,
            shards,
            |artifact, tid| artifact.probability_exact(tid),
            |q, tid| pqe_extensional(q, tid).expect("planner guarantees a monotone safe φ"),
            |q, tid| pqe_brute_force(q, tid).expect("planner bounds the instance below 64 tuples"),
        )
    }

    /// Floating-point [`evaluate_batch_sharded`](Self::evaluate_batch_sharded)
    /// (used by the E18 benchmark; each walk stays linear in gates).
    pub fn evaluate_batch_sharded_f64(
        &mut self,
        q: &HQuery,
        scenarios: &[Tid],
        shards: usize,
    ) -> Result<Vec<f64>, EngineError> {
        self.evaluate_batch_sharded_with(
            q,
            scenarios,
            shards,
            |artifact, tid| artifact.probability_f64(tid),
            |q, tid| pqe_extensional_f64(q, tid).expect("planner guarantees a monotone safe φ"),
            |q, tid| {
                pqe_brute_force_f64(q, tid).expect("planner bounds the instance below 64 tuples")
            },
        )
    }

    /// The generic sharded pipeline behind both public variants.
    fn evaluate_batch_sharded_with<T: Send>(
        &mut self,
        q: &HQuery,
        scenarios: &[Tid],
        shards: usize,
        walk: impl Fn(&Artifact, &Tid) -> T + Sync,
        lifted: impl Fn(&HQuery, &Tid) -> T + Sync,
        worlds: impl Fn(&HQuery, &Tid) -> T + Sync,
    ) -> Result<Vec<T>, EngineError> {
        /// One scenario's precomputed work order: everything a worker
        /// needs so its loop never touches the cache or `&mut self`.
        struct Task {
            plan: Plan,
            artifact: Option<Arc<Artifact>>,
            cache_hit: bool,
            compile_time: Duration,
        }

        if scenarios.is_empty() {
            self.stats.last_batch = Some(BatchPlan {
                scenarios: 0,
                shards: 0,
                compiles: 0,
                shared: 0,
            });
            return Ok(Vec::new());
        }

        // Phase 1a: plan every scenario first. Planning is pure (no
        // cache, no stats), so an unsound scenario anywhere in the batch
        // fails here before *any* state — cache contents, eviction
        // counters — has been touched: all-or-nothing, observably.
        let mut plans: Vec<Plan> = Vec::with_capacity(scenarios.len());
        for (i, tid) in scenarios.iter().enumerate() {
            // `plan` depends on the TID only through its shape
            // (vocabulary k and tuple count), so a same-shape run shares
            // one decision.
            let plan = match plans.last() {
                Some(&p) if i > 0 && tid.database().same_shape(scenarios[i - 1].database()) => p,
                _ => self.plan(q, tid)?,
            };
            plans.push(plan);
        }

        // Phase 1b: compile each distinct shape once, mirroring the
        // cache access order of a sequential run so hit/miss/eviction
        // counters come out identical. Cannot fail (the plans above
        // guarantee every compile's precondition).
        let mut tasks: Vec<Task> = Vec::with_capacity(scenarios.len());
        let mut compiles = 0;
        let mut shared = 0;
        for (i, (tid, &plan)) in scenarios.iter().zip(&plans).enumerate() {
            if i > 0 && tid.database().same_shape(scenarios[i - 1].database()) {
                let prev = tasks.last().expect("i > 0 ⟹ a previous task exists");
                let cache_hit = prev.artifact.is_some();
                if cache_hit {
                    shared += 1;
                }
                tasks.push(Task {
                    plan: prev.plan,
                    artifact: prev.artifact.clone(),
                    cache_hit,
                    compile_time: Duration::ZERO,
                });
                continue;
            }
            if !plan.is_cacheable() {
                tasks.push(Task {
                    plan,
                    artifact: None,
                    cache_hit: false,
                    compile_time: Duration::ZERO,
                });
                continue;
            }
            let key = CacheKey::new(q.phi(), tid.database());
            let task = match self.cache.get(&key) {
                Some(artifact) => {
                    shared += 1;
                    Task {
                        plan,
                        artifact: Some(artifact),
                        cache_hit: true,
                        compile_time: Duration::ZERO,
                    }
                }
                None => {
                    let started = Instant::now();
                    let compiled = Self::compile_artifact(plan, q, tid);
                    let compile_time = started.elapsed();
                    let (artifact, evicted) = self.cache.insert(key, compiled);
                    self.stats.cache_evictions += evicted;
                    compiles += 1;
                    Task {
                        plan,
                        artifact: Some(artifact),
                        cache_hit: false,
                        compile_time,
                    }
                }
            };
            tasks.push(task);
        }

        // Phase 2: fan contiguous scenario chunks across scoped workers.
        // Workers only read: `Arc<Artifact>` walks take `&self`, and the
        // non-cacheable backends are pure functions of `(q, tid)`.
        // `shard_count` is the one source of truth for how many workers
        // run (it is what `plan_batch` predicts); deriving the chunk
        // size from its result reproduces exactly that many chunks
        // (`s ↦ ceil(n / ceil(n / s))` is idempotent).
        let shards = Self::shard_count(scenarios.len(), shards);
        let chunk = scenarios.len().div_ceil(shards);
        let (walk, lifted, worlds) = (&walk, &lifted, &worlds);
        let shard_outputs: Vec<(Vec<T>, EngineStats)> = thread::scope(|scope| {
            let handles: Vec<_> = scenarios
                .chunks(chunk)
                .zip(tasks.chunks(chunk))
                .map(|(tids, tasks)| {
                    scope.spawn(move || {
                        let mut stats = EngineStats::default();
                        let probs = tids
                            .iter()
                            .zip(tasks)
                            .map(|(tid, task)| {
                                let started = Instant::now();
                                let p = match (&task.artifact, task.plan) {
                                    (Some(artifact), _) => walk(artifact, tid),
                                    (None, Plan::Extensional) => lifted(q, tid),
                                    (None, Plan::BruteForce) => worlds(q, tid),
                                    (None, Plan::Obdd | Plan::DdCircuit) => {
                                        unreachable!("cacheable plans precompiled an artifact")
                                    }
                                };
                                stats.record(QueryStats {
                                    plan: task.plan,
                                    cache_hit: task.cache_hit,
                                    circuit_size: task.artifact.as_deref().map(Artifact::size),
                                    compile_time: task.compile_time,
                                    eval_time: started.elapsed(),
                                });
                                p
                            })
                            .collect();
                        (probs, stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        // Phase 3: merge shard stats in order and stitch the results
        // back into input order (chunks are contiguous).
        debug_assert_eq!(shard_outputs.len(), shards, "chunking spawned as planned");
        let mut probs = Vec::with_capacity(scenarios.len());
        for (chunk_probs, chunk_stats) in shard_outputs {
            probs.extend(chunk_probs);
            self.stats.merge(&chunk_stats);
        }
        self.stats.last_batch = Some(BatchPlan {
            scenarios: scenarios.len(),
            shards,
            compiles,
            shared,
        });
        Ok(probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::{max_euler_fn, phi9, BoolFn};
    use intext_tid::{complete_database, uniform_tid, TupleId};

    fn half() -> BigRational {
        BigRational::from_ratio(1, 2)
    }

    #[test]
    fn routes_and_caches_phi9() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        assert_eq!(engine.plan(&q, &tid), Ok(Plan::DdCircuit));
        let p1 = engine.evaluate(&q, &tid).unwrap();
        let p2 = engine.evaluate(&q, &tid).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(engine.cache_len(), 1);
        assert_eq!(engine.stats().cache_misses, 1);
        assert_eq!(engine.stats().cache_hits, 1);
        let last = engine.stats().last.unwrap();
        assert!(last.cache_hit);
        assert_eq!(last.compile_time, Duration::ZERO);
        assert!(last.circuit_size.unwrap() > 0);
    }

    #[test]
    fn reweighting_hits_the_cache_and_changes_the_answer() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let mut tid = uniform_tid(complete_database(3, 1), half());
        let before = engine.evaluate(&q, &tid).unwrap();
        tid.set_prob(TupleId(0), BigRational::from_ratio(1, 97))
            .unwrap();
        let after = engine.evaluate(&q, &tid).unwrap();
        assert_ne!(before, after);
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(engine.cache_len(), 1);
    }

    #[test]
    fn degenerate_queries_take_the_obdd_route() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(BoolFn::var(4, 0)); // h_{3,0}: degenerate
        let tid = uniform_tid(complete_database(3, 2), half());
        assert_eq!(engine.plan(&q, &tid), Ok(Plan::Obdd));
        let p = engine.evaluate(&q, &tid).unwrap();
        let brute = pqe_brute_force(&q, &tid).unwrap();
        assert_eq!(p, brute);
        assert_eq!(engine.stats().obdd_plans, 1);
    }

    #[test]
    fn hard_queries_brute_force_within_budget_and_refuse_beyond() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(max_euler_fn(4));
        let small = uniform_tid(complete_database(3, 1), half());
        assert_eq!(engine.plan(&q, &small), Ok(Plan::BruteForce));
        let p = engine.evaluate(&q, &small).unwrap();
        assert_eq!(p, pqe_brute_force(&q, &small).unwrap());
        let big = uniform_tid(complete_database(3, 4), half());
        assert!(matches!(
            engine.plan(&q, &big),
            Err(EngineError::Intractable { budget: 20, .. })
        ));
        assert!(engine.evaluate(&q, &big).is_err());
    }

    #[test]
    fn prefer_extensional_routes_monotone_safe_queries() {
        let mut engine = PqeEngine::with_config(EngineConfig {
            prefer_extensional: true,
            ..EngineConfig::default()
        });
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        assert_eq!(engine.plan(&q, &tid), Ok(Plan::Extensional));
        let p = engine.evaluate(&q, &tid).unwrap();
        assert_eq!(p, pqe_brute_force(&q, &tid).unwrap());
        // Nothing cacheable was produced.
        assert_eq!(engine.cache_len(), 0);
        assert_eq!(engine.stats().extensional_plans, 1);
    }

    #[test]
    fn vocabulary_mismatch_is_rejected_up_front() {
        let engine = PqeEngine::new();
        let q = HQuery::new(phi9()); // k = 3
        let tid = uniform_tid(complete_database(2, 2), half()); // k = 2
        assert_eq!(
            engine.plan(&q, &tid),
            Err(EngineError::VocabularyMismatch {
                query_k: 3,
                database_k: 2
            })
        );
    }

    #[test]
    fn batch_amortizes_one_compilation_across_scenarios() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let base = uniform_tid(complete_database(3, 1), half());
        let mut scenarios = vec![base.clone(), base.clone(), base];
        scenarios[1]
            .set_prob(TupleId(1), BigRational::from_ratio(1, 5))
            .unwrap();
        scenarios[2]
            .set_prob(TupleId(2), BigRational::from_ratio(4, 5))
            .unwrap();
        let probs = engine.evaluate_batch(&q, &scenarios).unwrap();
        assert_eq!(probs.len(), 3);
        assert_eq!(engine.stats().cache_misses, 1);
        assert_eq!(engine.stats().cache_hits, 2);
        for (p, tid) in probs.iter().zip(&scenarios) {
            assert_eq!(p, &pqe_brute_force(&q, tid).unwrap());
        }
    }

    #[test]
    fn sharded_batch_matches_sequential_and_records_batch_plan() {
        let q = HQuery::new(phi9());
        let base = uniform_tid(complete_database(3, 1), half());
        let scenarios: Vec<_> = (0..7u32)
            .map(|s| {
                let mut tid = base.clone();
                tid.set_prob(TupleId(s % 3), BigRational::from_ratio(1, u64::from(s) + 2))
                    .unwrap();
                tid
            })
            .collect();
        let mut sequential = PqeEngine::new();
        let expected = sequential.evaluate_batch(&q, &scenarios).unwrap();
        for shards in [1, 2, 3, 7, 99] {
            let mut engine = PqeEngine::new();
            let planned = engine.plan_batch(&q, &scenarios, shards).unwrap();
            let probs = engine
                .evaluate_batch_sharded(&q, &scenarios, shards)
                .unwrap();
            assert_eq!(probs, expected, "shards={shards}");
            assert_eq!(engine.stats().cache_misses, 1);
            assert_eq!(engine.stats().cache_hits, 6);
            assert_eq!(engine.stats().queries, 7);
            let batch = engine.stats().last_batch.unwrap();
            assert_eq!(batch, planned, "dry run must predict the execution");
            assert_eq!(batch.scenarios, 7);
            assert_eq!(batch.compiles, 1);
            assert_eq!(batch.shared, 6);
            assert!(batch.shards >= 1 && batch.shards <= 7.min(shards.max(1)));
        }
    }

    #[test]
    fn sharded_batch_handles_empty_and_noncacheable_plans() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        assert_eq!(engine.evaluate_batch_sharded(&q, &[], 4).unwrap(), vec![]);
        assert_eq!(engine.stats().queries, 0);

        // Brute-force plans have no artifact; workers fall back to the
        // pure possible-worlds backend.
        let hard = HQuery::new(max_euler_fn(4));
        let tid = uniform_tid(complete_database(3, 1), half());
        let scenarios = vec![tid.clone(), tid];
        let probs = engine.evaluate_batch_sharded(&hard, &scenarios, 2).unwrap();
        assert_eq!(probs[0], pqe_brute_force(&hard, &scenarios[0]).unwrap());
        assert_eq!(probs, engine.evaluate_batch(&hard, &scenarios).unwrap());
        assert_eq!(engine.cache_len(), 0);
        assert_eq!(engine.stats().last_batch.unwrap().compiles, 0);
    }

    #[test]
    fn sharded_batch_error_touches_no_state() {
        // Scenario 1 is cacheable (φ9 compiles a d-D) and would have
        // compiled — and, under this budget, evicted — before scenario 2
        // fails, if planning were not strictly up-front. Scenario 2 has
        // the wrong vocabulary (k = 2 against a k = 3 query).
        let q = HQuery::new(phi9());
        let good = uniform_tid(complete_database(3, 1), half());
        let mismatched = uniform_tid(complete_database(2, 2), half());
        let mut engine = PqeEngine::with_config(EngineConfig {
            cache_gate_budget: Some(1), // any compile would also evict
            ..EngineConfig::default()
        });
        let err = engine
            .evaluate_batch_sharded(&q, &[good, mismatched], 2)
            .unwrap_err();
        assert!(matches!(err, EngineError::VocabularyMismatch { .. }));
        // All-or-nothing, observably: no compiles, no evictions, no
        // queries, no batch record.
        assert_eq!(engine.stats().queries, 0);
        assert_eq!(engine.stats().cache_misses, 0);
        assert_eq!(engine.stats().cache_evictions, 0);
        assert_eq!(engine.cache_len(), 0);
        assert!(engine.stats().last_batch.is_none());
    }

    #[test]
    fn cache_budget_bounds_gates_and_counts_evictions() {
        let q = HQuery::new(phi9());
        let small = uniform_tid(complete_database(3, 1), half());
        let large = uniform_tid(complete_database(3, 2), half());

        // Learn the two artifact sizes with an unbounded engine.
        let mut probe = PqeEngine::new();
        probe.evaluate(&q, &small).unwrap();
        probe.evaluate(&q, &large).unwrap();
        let total = probe.cache_gates();
        assert_eq!(probe.cache_len(), 2);

        // A budget below the pair forces the LRU (the `small` artifact)
        // out when `large` arrives.
        let mut engine = PqeEngine::with_config(EngineConfig {
            cache_gate_budget: Some(total - 1),
            ..EngineConfig::default()
        });
        engine.evaluate(&q, &small).unwrap();
        engine.evaluate(&q, &large).unwrap();
        assert!(engine.cache_gates() < total, "budget is a hard bound");
        assert_eq!(engine.stats().cache_evictions, 1);
        // Re-touching the evicted shape recompiles: a second miss.
        engine.evaluate(&q, &small).unwrap();
        assert_eq!(engine.stats().cache_misses, 3);

        // Tightening the budget on a live engine evicts immediately.
        engine.set_cache_budget(Some(0));
        assert_eq!(engine.cache_len(), 0);
        assert_eq!(engine.cache_gates(), 0);
        assert!(engine.stats().cache_evictions >= 2);
        assert_eq!(engine.cache_budget(), Some(0));
    }

    #[test]
    fn explain_reports_cache_transitions() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        assert!(!engine.explain(&q, &tid).cached);
        engine.evaluate(&q, &tid).unwrap();
        let ex = engine.explain(&q, &tid);
        assert!(ex.cached);
        assert_eq!(ex.plan, Ok(Plan::DdCircuit));
        assert_eq!(ex.region, Region::ZeroEulerDD);
    }

    #[test]
    fn clear_cache_and_reset_stats() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        engine.evaluate(&q, &tid).unwrap();
        assert_eq!(engine.cache_len(), 1);
        engine.clear_cache();
        assert_eq!(engine.cache_len(), 0);
        engine.reset_stats();
        assert_eq!(engine.stats().queries, 0);
        // Post-clear evaluation recompiles.
        engine.evaluate(&q, &tid).unwrap();
        assert_eq!(engine.stats().cache_misses, 1);
    }
}
