//! The `PqeEngine`: plan, compile, cache, evaluate.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use intext_core::{classify, compile_dd, Region};
use intext_extensional::{pqe_extensional, pqe_extensional_f64};
use intext_lineage::compile_degenerate_obdd;
use intext_numeric::BigRational;
use intext_query::{pqe_brute_force, pqe_brute_force_f64, HQuery};
use intext_tid::Tid;

use crate::cache::{Artifact, CacheKey};
use crate::{EngineStats, Explanation, Plan, QueryStats};

/// Knobs for the planner; the defaults are the production-shaped choices.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Hard queries are brute-forced only up to this many tuples
    /// (`2^tuples` possible worlds); larger instances return
    /// [`EngineError::Intractable`]. Capped at 63 by the world bitmask.
    pub max_brute_force_tuples: usize,
    /// Route *monotone safe* nondegenerate queries through lifted
    /// inference instead of the d-D pipeline. Off by default: the
    /// compiled circuit amortizes across re-weightings, which lifted
    /// inference cannot. Degenerate queries keep the OBDD route either
    /// way (it is both cheaper and cacheable).
    pub prefer_extensional: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_brute_force_tuples: 20,
            prefer_extensional: false,
        }
    }
}

/// Errors from planning or evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The query's chain length differs from the database vocabulary.
    VocabularyMismatch {
        /// `k` of the query's `φ`.
        query_k: u8,
        /// `k` of the database.
        database_k: u8,
    },
    /// `PQE(Q_φ)` is (conjectured) `#P`-hard and the instance exceeds
    /// the brute-force budget: no sound backend exists.
    Intractable {
        /// The Figure 1 region the query was classified into.
        region: Region,
        /// Tuple count of the instance.
        tuples: usize,
        /// The configured brute-force budget it exceeded.
        budget: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::VocabularyMismatch {
                query_k,
                database_k,
            } => write!(
                f,
                "query is over k={query_k} but the database has k={database_k}"
            ),
            EngineError::Intractable {
                region,
                tuples,
                budget,
            } => write!(
                f,
                "query classified {region:?} (#P-hard side of Figure 1) and \
                 {tuples} tuples exceed the brute-force budget of {budget}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// The unified PQE front door: classifies `φ` on the paper's Figure 1
/// map, routes to the cheapest sound backend, caches compiled lineage
/// artifacts across probability re-weightings, and keeps
/// [`EngineStats`] for every decision it makes.
///
/// See the crate-level docs for a usage example and `DESIGN.md` for the
/// routing diagram.
#[derive(Debug, Default)]
pub struct PqeEngine {
    config: EngineConfig,
    cache: HashMap<CacheKey, Artifact>,
    stats: EngineStats,
}

impl PqeEngine {
    /// An engine with the default [`EngineConfig`].
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with an explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        PqeEngine {
            config,
            ..Self::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Lifetime statistics (plans chosen, cache hits/misses, wall time).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Zeroes the statistics; the artifact cache is untouched.
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Number of compiled artifacts currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops every cached artifact.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// The routing decision for `q` on `tid`, without evaluating.
    ///
    /// Precedence (soundness argument in `DESIGN.md`):
    ///
    /// 1. degenerate `φ` → [`Plan::Obdd`] (Proposition 3.7);
    /// 2. monotone `φ`, `e(φ) = 0`, with
    ///    [`prefer_extensional`](EngineConfig::prefer_extensional) →
    ///    [`Plan::Extensional`] (safe by Corollary 3.9);
    /// 3. `e(φ) = 0` → [`Plan::DdCircuit`] (Theorem 5.2);
    /// 4. otherwise `PQE(Q_φ)` is `#P`-hard or conjectured so →
    ///    [`Plan::BruteForce`] within the budget, else
    ///    [`EngineError::Intractable`].
    pub fn plan(&self, q: &HQuery, tid: &Tid) -> Result<Plan, EngineError> {
        let phi = q.phi();
        if tid.database().k() != q.k() {
            return Err(EngineError::VocabularyMismatch {
                query_k: q.k(),
                database_k: tid.database().k(),
            });
        }
        let region = classify(phi);
        match region {
            Region::DegenerateObdd => Ok(Plan::Obdd),
            Region::ZeroEulerDD => {
                if self.config.prefer_extensional && phi.is_monotone() {
                    Ok(Plan::Extensional)
                } else {
                    Ok(Plan::DdCircuit)
                }
            }
            Region::HardMonotone | Region::HardByTransfer | Region::ConjecturedHard => {
                let budget = self.config.max_brute_force_tuples.min(63);
                if tid.len() <= budget {
                    Ok(Plan::BruteForce)
                } else {
                    Err(EngineError::Intractable {
                        region,
                        tuples: tid.len(),
                        budget,
                    })
                }
            }
        }
    }

    /// The full routing rationale for `q` on `tid`: region, chosen plan
    /// (or why none exists), and whether the artifact is already cached.
    pub fn explain(&self, q: &HQuery, tid: &Tid) -> Explanation {
        let plan = self.plan(q, tid);
        let cached = matches!(plan, Ok(p) if p.is_cacheable())
            && self
                .cache
                .contains_key(&CacheKey::new(q.phi(), tid.database()));
        Explanation {
            region: classify(q.phi()),
            tuples: tid.len(),
            plan,
            cached,
        }
    }

    /// The shared evaluation path behind [`evaluate`](Self::evaluate)
    /// and [`evaluate_f64`](Self::evaluate_f64): route, compile or reuse
    /// the cached artifact, evaluate with the given backends, record
    /// [`QueryStats`].
    fn evaluate_dispatch<T>(
        &mut self,
        q: &HQuery,
        tid: &Tid,
        walk: impl Fn(&Artifact, &Tid) -> T,
        lifted: impl Fn(&HQuery, &Tid) -> T,
        worlds: impl Fn(&HQuery, &Tid) -> T,
    ) -> Result<T, EngineError> {
        let plan = self.plan(q, tid)?;
        let (p, record) = if plan.is_cacheable() {
            // Build the key once and look it up once: the hit path — the
            // one the cache exists to make hot — must not re-hash the
            // O(|D|) key per probe.
            let entry = self.cache.entry(CacheKey::new(q.phi(), tid.database()));
            let (cache_hit, compile_time, artifact) = match entry {
                Entry::Occupied(slot) => (true, Duration::ZERO, slot.into_mut()),
                Entry::Vacant(slot) => {
                    let started = Instant::now();
                    // The planner already established the backend
                    // preconditions (vocabulary match, degeneracy / zero
                    // Euler characteristic), so compilation cannot fail.
                    let artifact = match plan {
                        Plan::Obdd => {
                            Artifact::Obdd(compile_degenerate_obdd(q.phi(), tid.database()).expect(
                                "planner guarantees a degenerate φ on a matching vocabulary",
                            ))
                        }
                        Plan::DdCircuit => Artifact::Dd(
                            compile_dd(q.phi(), tid.database())
                                .expect("planner guarantees e(φ) = 0"),
                        ),
                        Plan::Extensional | Plan::BruteForce => {
                            unreachable!("only cacheable plans reach the artifact path")
                        }
                    };
                    (false, started.elapsed(), slot.insert(artifact))
                }
            };
            let started = Instant::now();
            let p = walk(artifact, tid);
            let circuit_size = Some(artifact.size());
            (
                p,
                QueryStats {
                    plan,
                    cache_hit,
                    circuit_size,
                    compile_time,
                    eval_time: started.elapsed(),
                },
            )
        } else {
            let started = Instant::now();
            let p = match plan {
                Plan::Extensional => lifted(q, tid),
                Plan::BruteForce => worlds(q, tid),
                Plan::Obdd | Plan::DdCircuit => unreachable!("cacheable plans handled above"),
            };
            (
                p,
                QueryStats {
                    plan,
                    cache_hit: false,
                    circuit_size: None,
                    compile_time: Duration::ZERO,
                    eval_time: started.elapsed(),
                },
            )
        };
        self.stats.record(record);
        Ok(p)
    }

    /// Exact `PQE(Q_φ)` through the planner: routes, compiles or reuses
    /// a cached artifact, evaluates, and records [`QueryStats`].
    pub fn evaluate(&mut self, q: &HQuery, tid: &Tid) -> Result<BigRational, EngineError> {
        self.evaluate_dispatch(
            q,
            tid,
            |artifact, tid| artifact.probability_exact(tid),
            |q, tid| pqe_extensional(q, tid).expect("planner guarantees a monotone safe φ"),
            |q, tid| pqe_brute_force(q, tid).expect("planner bounds the instance below 64 tuples"),
        )
    }

    /// Floating-point `PQE(Q_φ)` through the same planner and cache
    /// (used by the benchmarks; cached-artifact walks stay linear).
    pub fn evaluate_f64(&mut self, q: &HQuery, tid: &Tid) -> Result<f64, EngineError> {
        self.evaluate_dispatch(
            q,
            tid,
            |artifact, tid| artifact.probability_f64(tid),
            |q, tid| pqe_extensional_f64(q, tid).expect("planner guarantees a monotone safe φ"),
            |q, tid| {
                pqe_brute_force_f64(q, tid).expect("planner bounds the instance below 64 tuples")
            },
        )
    }

    /// Evaluates `q` on every TID of a workload, amortizing compilation:
    /// TIDs sharing a database shape (the common case — one instance,
    /// many probability scenarios) compile once and re-walk the cached
    /// circuit for every other member of the batch.
    ///
    /// Fails on the first TID with no sound plan, so a batch is
    /// all-or-nothing.
    pub fn evaluate_batch(
        &mut self,
        q: &HQuery,
        tids: &[Tid],
    ) -> Result<Vec<BigRational>, EngineError> {
        tids.iter().map(|tid| self.evaluate(q, tid)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::{max_euler_fn, phi9, BoolFn};
    use intext_tid::{complete_database, uniform_tid, TupleId};

    fn half() -> BigRational {
        BigRational::from_ratio(1, 2)
    }

    #[test]
    fn routes_and_caches_phi9() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        assert_eq!(engine.plan(&q, &tid), Ok(Plan::DdCircuit));
        let p1 = engine.evaluate(&q, &tid).unwrap();
        let p2 = engine.evaluate(&q, &tid).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(engine.cache_len(), 1);
        assert_eq!(engine.stats().cache_misses, 1);
        assert_eq!(engine.stats().cache_hits, 1);
        let last = engine.stats().last.unwrap();
        assert!(last.cache_hit);
        assert_eq!(last.compile_time, Duration::ZERO);
        assert!(last.circuit_size.unwrap() > 0);
    }

    #[test]
    fn reweighting_hits_the_cache_and_changes_the_answer() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let mut tid = uniform_tid(complete_database(3, 1), half());
        let before = engine.evaluate(&q, &tid).unwrap();
        tid.set_prob(TupleId(0), BigRational::from_ratio(1, 97))
            .unwrap();
        let after = engine.evaluate(&q, &tid).unwrap();
        assert_ne!(before, after);
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(engine.cache_len(), 1);
    }

    #[test]
    fn degenerate_queries_take_the_obdd_route() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(BoolFn::var(4, 0)); // h_{3,0}: degenerate
        let tid = uniform_tid(complete_database(3, 2), half());
        assert_eq!(engine.plan(&q, &tid), Ok(Plan::Obdd));
        let p = engine.evaluate(&q, &tid).unwrap();
        let brute = pqe_brute_force(&q, &tid).unwrap();
        assert_eq!(p, brute);
        assert_eq!(engine.stats().obdd_plans, 1);
    }

    #[test]
    fn hard_queries_brute_force_within_budget_and_refuse_beyond() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(max_euler_fn(4));
        let small = uniform_tid(complete_database(3, 1), half());
        assert_eq!(engine.plan(&q, &small), Ok(Plan::BruteForce));
        let p = engine.evaluate(&q, &small).unwrap();
        assert_eq!(p, pqe_brute_force(&q, &small).unwrap());
        let big = uniform_tid(complete_database(3, 4), half());
        assert!(matches!(
            engine.plan(&q, &big),
            Err(EngineError::Intractable { budget: 20, .. })
        ));
        assert!(engine.evaluate(&q, &big).is_err());
    }

    #[test]
    fn prefer_extensional_routes_monotone_safe_queries() {
        let mut engine = PqeEngine::with_config(EngineConfig {
            prefer_extensional: true,
            ..EngineConfig::default()
        });
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        assert_eq!(engine.plan(&q, &tid), Ok(Plan::Extensional));
        let p = engine.evaluate(&q, &tid).unwrap();
        assert_eq!(p, pqe_brute_force(&q, &tid).unwrap());
        // Nothing cacheable was produced.
        assert_eq!(engine.cache_len(), 0);
        assert_eq!(engine.stats().extensional_plans, 1);
    }

    #[test]
    fn vocabulary_mismatch_is_rejected_up_front() {
        let engine = PqeEngine::new();
        let q = HQuery::new(phi9()); // k = 3
        let tid = uniform_tid(complete_database(2, 2), half()); // k = 2
        assert_eq!(
            engine.plan(&q, &tid),
            Err(EngineError::VocabularyMismatch {
                query_k: 3,
                database_k: 2
            })
        );
    }

    #[test]
    fn batch_amortizes_one_compilation_across_scenarios() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let base = uniform_tid(complete_database(3, 1), half());
        let mut scenarios = vec![base.clone(), base.clone(), base];
        scenarios[1]
            .set_prob(TupleId(1), BigRational::from_ratio(1, 5))
            .unwrap();
        scenarios[2]
            .set_prob(TupleId(2), BigRational::from_ratio(4, 5))
            .unwrap();
        let probs = engine.evaluate_batch(&q, &scenarios).unwrap();
        assert_eq!(probs.len(), 3);
        assert_eq!(engine.stats().cache_misses, 1);
        assert_eq!(engine.stats().cache_hits, 2);
        for (p, tid) in probs.iter().zip(&scenarios) {
            assert_eq!(p, &pqe_brute_force(&q, tid).unwrap());
        }
    }

    #[test]
    fn explain_reports_cache_transitions() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        assert!(!engine.explain(&q, &tid).cached);
        engine.evaluate(&q, &tid).unwrap();
        let ex = engine.explain(&q, &tid);
        assert!(ex.cached);
        assert_eq!(ex.plan, Ok(Plan::DdCircuit));
        assert_eq!(ex.region, Region::ZeroEulerDD);
    }

    #[test]
    fn clear_cache_and_reset_stats() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        engine.evaluate(&q, &tid).unwrap();
        assert_eq!(engine.cache_len(), 1);
        engine.clear_cache();
        assert_eq!(engine.cache_len(), 0);
        engine.reset_stats();
        assert_eq!(engine.stats().queries, 0);
        // Post-clear evaluation recompiles.
        engine.evaluate(&q, &tid).unwrap();
        assert_eq!(engine.stats().cache_misses, 1);
    }
}
