//! The `PqeEngine`: plan, compile, cache, evaluate — sequentially or
//! fanned across shard workers sharing one compiled circuit.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use intext_boolfn::BoolFn;
use intext_circuits::{EvalScratch, ProbMatrix, LANES};
use intext_core::{classify, compile_dd, Region};
use intext_extensional::{pqe_extensional_with_lattice, pqe_extensional_with_lattice_f64};
use intext_lattice::{cnf_lattice, QueryLattice};
use intext_lineage::{compile_degenerate_obdd, DegenerateLineage};
use intext_numeric::BigRational;
use intext_query::{
    dnf_clause_bound, ground_circuit, is_safe_ucq, lifted_probability, lifted_probability_f64,
    pqe_brute_force, pqe_brute_force_f64, recognize_h, HQuery, Query, QueryExpr, Ucq,
};
use intext_tid::{Relation, Tid, TidError, TupleDesc, TupleId};

use intext_tid::Database;

use crate::cache::{Artifact, ArtifactCache, CacheKey};
use crate::sample::{SampleRun, SamplerArtifact};
use crate::stats::duration_nanos;
use crate::store::{self, StoreError, TupleUpdate};
use crate::{
    BatchPlan, EngineStats, Estimate, Explanation, Plan, QueryStats, SamplerKind, SamplingConfig,
};

/// Largest grounded DNF (clause bound, pre-deduplication) the planner
/// hands to the Karp–Luby sampler; beyond it the naive world sampler
/// takes over, whose per-sample cost is bounded by the circuit size
/// rather than the clause count.
const MAX_KARP_LUBY_CLAUSES: u64 = 4096;

/// What a [`PqeEngine::load_cache`] / [`PqeEngine::import_artifact`]
/// call admitted into the cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Artifacts decoded, validated and offered to the cache (each also
    /// counted in [`EngineStats::artifact_loads`]).
    pub artifacts: usize,
    /// Total gates (OBDD nodes + d-D gates) across the loaded artifacts.
    pub gates: usize,
    /// Entries the LRU evicted while admitting them — nonzero only when
    /// the snapshot does not fit the configured gate budget (an
    /// oversized artifact also counts itself, exactly as on the compile
    /// path).
    pub evictions: u64,
}

/// Knobs for the planner; the defaults are the production-shaped choices.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Hard queries are brute-forced only up to this many tuples
    /// (`2^tuples` possible worlds); larger instances return
    /// [`EngineError::Intractable`]. Capped at 63 by the world bitmask.
    pub max_brute_force_tuples: usize,
    /// Route *monotone safe* nondegenerate queries through lifted
    /// inference instead of the d-D pipeline. Off by default: the
    /// compiled circuit amortizes across re-weightings, which lifted
    /// inference cannot. Degenerate queries keep the OBDD route either
    /// way (it is both cheaper and cacheable).
    pub prefer_extensional: bool,
    /// Gate budget of the artifact cache (total OBDD nodes + d-D gates
    /// retained); `None` keeps every artifact forever. When the budget
    /// overflows, least-recently-used artifacts are evicted and counted
    /// in [`EngineStats::cache_evictions`]. Can be changed later with
    /// [`PqeEngine::set_cache_budget`].
    pub cache_gate_budget: Option<usize>,
    /// Monte-Carlo fallback for the hard region: when set, hard queries
    /// beyond the brute-force budget get an `(ε, δ)`-bounded
    /// [`Plan::Sample`] estimate instead of
    /// [`EngineError::Intractable`]. `None` (the default) keeps the
    /// refuse-to-guess behaviour.
    pub sampling: Option<SamplingConfig>,
    /// General queries that are neither H-shaped nor Dalvi–Suciu safe
    /// ground their lineage to a circuit ([`Plan::GroundCircuit`]) only
    /// up to this many tuples; larger instances return
    /// [`EngineError::GroundingTooLarge`]. Grounding is worst-case
    /// exponential in the instance, so the budget is the planner's
    /// promise that an unsafe query cannot silently blow up.
    pub max_ground_tuples: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_brute_force_tuples: 20,
            prefer_extensional: false,
            cache_gate_budget: None,
            sampling: None,
            max_ground_tuples: 64,
        }
    }
}

/// Step-by-step construction of an [`EngineConfig`], ending in a
/// validated [`EngineConfigBuilder::build`] — the typed-error
/// counterpart of writing the struct literal and hoping
/// [`PqeEngine::with_config`] does not panic.
///
/// ```
/// use intext_engine::{EngineConfig, ConfigError};
///
/// let config = EngineConfig::builder()
///     .max_brute_force_tuples(16)
///     .prefer_extensional(true)
///     .build()
///     .unwrap();
/// assert_eq!(config.max_brute_force_tuples, 16);
///
/// let err = EngineConfig::builder().max_brute_force_tuples(64).build().unwrap_err();
/// assert_eq!(err, ConfigError::BruteForceBudgetTooLarge { requested: 64 });
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sets [`EngineConfig::max_brute_force_tuples`].
    pub fn max_brute_force_tuples(mut self, tuples: usize) -> Self {
        self.config.max_brute_force_tuples = tuples;
        self
    }

    /// Sets [`EngineConfig::prefer_extensional`].
    pub fn prefer_extensional(mut self, prefer: bool) -> Self {
        self.config.prefer_extensional = prefer;
        self
    }

    /// Sets [`EngineConfig::cache_gate_budget`].
    pub fn cache_gate_budget(mut self, budget: Option<usize>) -> Self {
        self.config.cache_gate_budget = budget;
        self
    }

    /// Enables sampling with [`EngineConfig::sampling`]`= Some(sampling)`.
    pub fn sampling(mut self, sampling: SamplingConfig) -> Self {
        self.config.sampling = Some(sampling);
        self
    }

    /// Sets [`EngineConfig::max_ground_tuples`].
    pub fn max_ground_tuples(mut self, tuples: usize) -> Self {
        self.config.max_ground_tuples = tuples;
        self
    }

    /// Validates and returns the configuration; every invalid knob
    /// combination is a typed [`ConfigError`], never a panic.
    pub fn build(self) -> Result<EngineConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

impl EngineConfig {
    /// Starts an [`EngineConfigBuilder`] from the defaults; chain the
    /// setters and finish with the validating
    /// [`build`](EngineConfigBuilder::build). The struct-literal style
    /// (and [`PqeEngine::with_config`] /
    /// [`PqeEngine::try_with_config`]) keeps working — the builder is
    /// the path that can never construct an unvalidated config.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }

    /// Validates the configuration — the check
    /// [`PqeEngine::try_with_config`] runs before accepting it.
    ///
    /// * `max_brute_force_tuples` must be ≤ 63: brute force enumerates
    ///   worlds as a `u64` bitmask, so 64+ would silently promise worlds
    ///   it cannot enumerate (previously this was clamped without a
    ///   word; now it is a typed error).
    /// * When sampling is enabled, `eps` and `delta` must lie in the
    ///   open interval `(0, 1)` — outside it the Hoeffding sample count
    ///   is meaningless (0, ∞, or NaN).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_brute_force_tuples > 63 {
            return Err(ConfigError::BruteForceBudgetTooLarge {
                requested: self.max_brute_force_tuples,
            });
        }
        if let Some(s) = self.sampling {
            if !(s.eps > 0.0 && s.eps < 1.0) {
                return Err(ConfigError::InvalidEps { eps: s.eps });
            }
            if !(s.delta > 0.0 && s.delta < 1.0) {
                return Err(ConfigError::InvalidDelta { delta: s.delta });
            }
        }
        Ok(())
    }
}

/// A rejected [`EngineConfig`], from [`PqeEngine::try_with_config`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// `max_brute_force_tuples` exceeds 63, the widest world bitmask
    /// brute force can enumerate.
    BruteForceBudgetTooLarge {
        /// The rejected budget.
        requested: usize,
    },
    /// The sampling `eps` is outside the open interval `(0, 1)` (or not
    /// finite).
    InvalidEps {
        /// The rejected value.
        eps: f64,
    },
    /// The sampling `delta` is outside the open interval `(0, 1)` (or
    /// not finite).
    InvalidDelta {
        /// The rejected value.
        delta: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BruteForceBudgetTooLarge { requested } => write!(
                f,
                "max_brute_force_tuples = {requested} exceeds 63, the widest \
                 possible-worlds bitmask brute force can enumerate"
            ),
            ConfigError::InvalidEps { eps } => {
                write!(
                    f,
                    "sampling eps = {eps} must lie in the open interval (0, 1)"
                )
            }
            ConfigError::InvalidDelta { delta } => {
                write!(
                    f,
                    "sampling delta = {delta} must lie in the open interval (0, 1)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Errors from planning or evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The query's chain length differs from the database vocabulary.
    VocabularyMismatch {
        /// `k` of the query's `φ`.
        query_k: u8,
        /// `k` of the database.
        database_k: u8,
    },
    /// `PQE(Q_φ)` is (conjectured) `#P`-hard and the instance exceeds
    /// the brute-force budget: no sound backend exists.
    Intractable {
        /// The Figure 1 region the query was classified into.
        region: Region,
        /// Tuple count of the instance.
        tuples: usize,
        /// The configured brute-force budget it exceeded.
        budget: usize,
    },
    /// A general query that is neither H-shaped nor Dalvi–Suciu safe
    /// must ground its lineage, and the instance exceeds
    /// [`EngineConfig::max_ground_tuples`].
    GroundingTooLarge {
        /// Tuple count of the instance.
        tuples: usize,
        /// The configured grounding budget it exceeded.
        budget: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::VocabularyMismatch {
                query_k,
                database_k,
            } => write!(
                f,
                "query is over k={query_k} but the database has k={database_k}"
            ),
            EngineError::Intractable {
                region,
                tuples,
                budget,
            } => write!(
                f,
                "query classified {region:?} (#P-hard side of Figure 1) and \
                 {tuples} tuples exceed the brute-force budget of {budget}"
            ),
            EngineError::GroundingTooLarge { tuples, budget } => write!(
                f,
                "query is unsafe and not H-shaped, and {tuples} tuples exceed \
                 the grounding budget of {budget}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// The unified PQE front door: classifies `φ` on the paper's Figure 1
/// map, routes to the cheapest sound backend, caches compiled lineage
/// artifacts across probability re-weightings, and keeps
/// [`EngineStats`] for every decision it makes.
///
/// See the crate-level docs for a usage example and `DESIGN.md` for the
/// routing diagram and the concurrency model.
#[derive(Debug)]
pub struct PqeEngine {
    config: EngineConfig,
    cache: ArtifactCache,
    /// Memoized `cnf_lattice(φ)` + Möbius values per extensional `φ`.
    /// Keyed by the canonical truth table (like the artifact cache), so
    /// syntactic variants share one lattice; entries are a few hundred
    /// bytes (the lattice depends only on `φ`, never on the database),
    /// so no eviction policy is needed.
    lattices: HashMap<BoolFn, Arc<QueryLattice>>,
    stats: EngineStats,
}

/// A [`Query`] resolved into the routing family the planner works
/// with. Resolution is pure (no engine state): H-shaped queries —
/// whether built as [`HQuery`] or *recognized* in a parsed general
/// query — flow into the full Figure 1 machinery (classification,
/// artifact cache, lane kernel, patching, sampling) with zero extra
/// work; general queries split by the Dalvi–Suciu safety test.
enum Resolved {
    /// H-shaped: `Q_φ` over the chain vocabulary, routed by Figure 1.
    H(HQuery),
    /// General and Dalvi–Suciu safe: lifted inference, PTIME, no
    /// artifact.
    Lifted {
        /// The normalized union of conjunctive queries.
        ucq: Ucq,
        /// Largest binary-relation index the query mentions, plus one —
        /// the minimum vocabulary `k` an instance must provide.
        required_k: u8,
    },
    /// General and unsafe (or non-UCQ): ground the lineage to an OBDD
    /// over raw tuple ids, within [`EngineConfig::max_ground_tuples`].
    Ground {
        /// The query expression to ground per instance.
        expr: QueryExpr,
        /// Canonical rendering of the normalized expression — the
        /// text component of the ground [`CacheKey`], so syntactic
        /// variants of one query share an artifact.
        text: Arc<str>,
        /// Minimum vocabulary `k` an instance must provide.
        required_k: u8,
    },
}

impl Resolved {
    /// The H-query, when this resolution is H-shaped.
    fn as_h(&self) -> Option<&HQuery> {
        match self {
            Resolved::H(q) => Some(q),
            _ => None,
        }
    }
}

/// One scenario's precomputed work order inside a batch: everything the
/// evaluation loop (or a shard worker) needs so that walking never
/// touches the cache, the lattice memo, or `&mut self`.
struct Task {
    /// The resolved query this task evaluates — shared across a run so
    /// fallback backends (and shard workers) never re-resolve.
    query: Arc<Resolved>,
    plan: Plan,
    artifact: Option<Arc<Artifact>>,
    /// The memoized CNF lattice, present iff `plan` is
    /// [`Plan::Extensional`].
    lattice: Option<Arc<QueryLattice>>,
    /// The grounded sampler input, present iff `plan` is
    /// [`Plan::Sample`]. Like the artifact, it depends only on the
    /// database *shape*, so one build serves a whole same-shape run.
    sampler: Option<Arc<SamplerArtifact>>,
    /// `artifact.size()`, computed once per compile/fetch — an OBDD's
    /// size is a reachability count, too expensive to recount per
    /// scenario.
    size: Option<usize>,
    cache_hit: bool,
    compile_time: Duration,
}

impl Task {
    /// The record for a scenario that shares this task's artifact (or
    /// lattice, or sampler) instead of fetching its own.
    fn shared(&self) -> Task {
        Task {
            query: Arc::clone(&self.query),
            plan: self.plan,
            artifact: self.artifact.clone(),
            lattice: self.lattice.clone(),
            sampler: self.sampler.clone(),
            size: self.size,
            cache_hit: self.artifact.is_some(),
            compile_time: Duration::ZERO,
        }
    }

    /// This scenario's [`QueryStats`] record, given its measured
    /// evaluation time.
    fn query_stats(&self, eval_time: Duration) -> QueryStats {
        QueryStats {
            plan: self.plan,
            cache_hit: self.cache_hit,
            circuit_size: self.size,
            compile_time: self.compile_time,
            eval_time,
            samples: 0,
        }
    }

    /// The record skeleton for the scenario at `offset` within a run
    /// this task heads: the run head (offset 0) carries the task's
    /// compile/hit attribution, every later scenario is a shared walk
    /// ([`Task::shared`] derives the same fields). `eval_time` is left
    /// zero for the caller to fill in.
    fn query_stats_at(&self, offset: usize) -> QueryStats {
        QueryStats {
            plan: self.plan,
            cache_hit: if offset == 0 {
                self.cache_hit
            } else {
                self.artifact.is_some()
            },
            circuit_size: self.size,
            compile_time: if offset == 0 {
                self.compile_time
            } else {
                Duration::ZERO
            },
            eval_time: Duration::ZERO,
            samples: 0,
        }
    }

    /// Runs this task's sampler for the scenario at global batch index
    /// `stream`. The stream index is what makes sharded sampling
    /// bit-identical to sequential: every scenario draws from the RNG
    /// stream `(seed, its own batch position)` no matter which worker
    /// runs it.
    fn run_sampler(&self, tid: &Tid, stream: u64) -> SampleRun {
        self.sampler
            .as_deref()
            .expect("sample tasks carry a sampler artifact")
            .run(tid, stream)
    }

    /// The non-artifact fallback evaluation (exact): the single dispatch
    /// every batch path shares, so extensional/brute-force/sampling
    /// semantics can never drift between the sequential, lane-batched,
    /// and sharded paths whose bit-for-bit parity the tests pin.
    /// `stream` is the scenario's global batch index (used only by
    /// [`Plan::Sample`]); the returned [`SampleRun`] is present iff the
    /// sampler ran.
    fn eval_fallback_exact(&self, tid: &Tid, stream: u64) -> (BigRational, Option<SampleRun>) {
        match self.plan {
            Plan::Extensional => {
                let q = self.query.as_h().expect("extensional plans are H-only");
                let lat = self
                    .lattice
                    .as_deref()
                    .expect("extensional tasks carry a lattice");
                let p = pqe_extensional_with_lattice(q, tid, lat)
                    .expect("planner guarantees a monotone safe φ");
                (p, None)
            }
            Plan::BruteForce => {
                let q = self.query.as_h().expect("brute force is H-only");
                let p =
                    pqe_brute_force(q, tid).expect("planner bounds the instance below 64 tuples");
                (p, None)
            }
            Plan::Sample(_) => {
                let run = self.run_sampler(tid, stream);
                // The estimate is a finite f64; embed it exactly so the
                // exact and f64 batch paths agree bit for bit.
                let p = BigRational::from_f64(run.estimate.value)
                    .expect("estimates are finite by construction");
                (p, Some(run))
            }
            Plan::Lifted => {
                let Resolved::Lifted { ucq, .. } = &*self.query else {
                    unreachable!("a Lifted plan carries a lifted resolution")
                };
                let p = lifted_probability(ucq, tid).expect("the planner verified the safety test");
                (p, None)
            }
            Plan::Obdd | Plan::DdCircuit | Plan::GroundCircuit => {
                unreachable!("cacheable tasks carry an artifact")
            }
        }
    }

    /// Floating-point [`eval_fallback_exact`](Self::eval_fallback_exact).
    fn eval_fallback_f64(&self, tid: &Tid, stream: u64) -> (f64, Option<SampleRun>) {
        match self.plan {
            Plan::Extensional => {
                let q = self.query.as_h().expect("extensional plans are H-only");
                let lat = self
                    .lattice
                    .as_deref()
                    .expect("extensional tasks carry a lattice");
                let p = pqe_extensional_with_lattice_f64(q, tid, lat)
                    .expect("planner guarantees a monotone safe φ");
                (p, None)
            }
            Plan::BruteForce => {
                let q = self.query.as_h().expect("brute force is H-only");
                let p = pqe_brute_force_f64(q, tid)
                    .expect("planner bounds the instance below 64 tuples");
                (p, None)
            }
            Plan::Sample(_) => {
                let run = self.run_sampler(tid, stream);
                (run.estimate.value, Some(run))
            }
            Plan::Lifted => {
                let Resolved::Lifted { ucq, .. } = &*self.query else {
                    unreachable!("a Lifted plan carries a lifted resolution")
                };
                let p =
                    lifted_probability_f64(ucq, tid).expect("the planner verified the safety test");
                (p, None)
            }
            Plan::Obdd | Plan::DdCircuit | Plan::GroundCircuit => {
                unreachable!("cacheable tasks carry an artifact")
            }
        }
    }
}

/// Folds one fallback evaluation's outcome into a stats record: sampler
/// runs contribute their sample count (and any lane-kernel calls the
/// naive world sampler made) exactly once, on whichever path ran them.
fn record_fallback(
    stats: &mut EngineStats,
    mut record: QueryStats,
    eval_time: Duration,
    run: Option<SampleRun>,
) {
    record.eval_time = eval_time;
    if let Some(run) = run {
        record.samples = run.estimate.samples;
        stats.lane_kernel_calls += run.kernel_calls;
    }
    stats.record(record);
}

/// A planned query whose shared state — the cached `Arc<Artifact>`, the
/// memoized CNF lattice, or a grounded sampler — has already been
/// fetched, so evaluation is a **pure function of the prepared state**:
/// no cache probe, no lock, no `&mut PqeEngine`. This is the unit of
/// work the serve layer hands its worker pool; `PreparedQuery` is
/// `Send + Sync`, and many threads may evaluate clones of the same
/// preparation concurrently.
///
/// Obtain one from [`PqeEngine::prepare`] (may compile; needs
/// `&mut self`) or [`PqeEngine::prepare_shared`] (read-only probe;
/// `&self`). Every evaluation records one [`QueryStats`] into the
/// *caller's* [`EngineStats`], so worker-local stats merged back via
/// [`EngineStats::merge`] equal the counters a sequential engine
/// evaluating the same requests would report — the invariant the
/// serve-layer differential tests pin.
pub struct PreparedQuery {
    task: Task,
    /// The lattice came from a read-path memo probe
    /// ([`PqeEngine::prepare_shared`]) rather than being built by this
    /// preparation: evaluation records the
    /// [`EngineStats::extensional_memo_hits`] the write path would have
    /// counted inside the engine.
    memo_hit: bool,
}

/// Reusable lane-kernel scratch for [`PreparedQuery::eval_run_f64`]:
/// one per worker thread, reused across runs so steady-state batch
/// evaluation allocates nothing.
#[derive(Default)]
pub struct LaneScratch {
    probs: ProbMatrix,
    scratch: EvalScratch,
}

impl LaneScratch {
    /// Empty scratch; buffers grow to the largest run evaluated.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PreparedQuery {
    /// The backend the planner chose.
    pub fn plan(&self) -> Plan {
        self.task.plan
    }

    /// Whether the artifact came from the cache (always `false` for
    /// non-cacheable plans).
    pub fn cache_hit(&self) -> bool {
        self.task.cache_hit
    }

    /// Size of the compiled circuit, when the plan is cacheable.
    pub fn circuit_size(&self) -> Option<usize> {
        self.task.size
    }

    /// A preparation for another same-shape scenario sharing this one's
    /// fetched state: the share is accounted exactly like the engine's
    /// own batch paths (a cache hit for artifact plans, one
    /// [`EngineStats::extensional_memo_hits`] for extensional ones,
    /// zero compile time).
    pub fn share(&self) -> PreparedQuery {
        PreparedQuery {
            task: self.task.shared(),
            memo_hit: self.task.plan == Plan::Extensional,
        }
    }

    /// Exact `PQE(Q)` on `tid`, recording one [`QueryStats`] into
    /// `stats`. `stream` is the scenario's global batch position (the
    /// RNG stream under a [`Plan::Sample`] route — pass `0` for a
    /// standalone query to match [`PqeEngine::evaluate`] bit for bit).
    pub fn eval_exact(&self, tid: &Tid, stream: u64, stats: &mut EngineStats) -> BigRational {
        if self.memo_hit {
            stats.extensional_memo_hits += 1;
        }
        let started = Instant::now();
        let (p, sample_run) = match &self.task.artifact {
            Some(artifact) => (artifact.probability_exact(tid), None),
            None => self.task.eval_fallback_exact(tid, stream),
        };
        record_fallback(
            stats,
            self.task.query_stats(Duration::ZERO),
            started.elapsed(),
            sample_run,
        );
        p
    }

    /// Floating-point [`eval_exact`](Self::eval_exact), bit-identical to
    /// [`PqeEngine::evaluate_f64`] at `stream = 0`.
    pub fn eval_f64(&self, tid: &Tid, stream: u64, stats: &mut EngineStats) -> f64 {
        if self.memo_hit {
            stats.extensional_memo_hits += 1;
        }
        let started = Instant::now();
        let (p, sample_run) = match &self.task.artifact {
            Some(artifact) => (artifact.probability_f64(tid), None),
            None => self.task.eval_fallback_f64(tid, stream),
        };
        record_fallback(
            stats,
            self.task.query_stats(Duration::ZERO),
            started.elapsed(),
            sample_run,
        );
        p
    }

    /// `PQE(Q)` as a uniformly-shaped [`Estimate`], bit-identical to
    /// [`PqeEngine::estimate`] at `stream = 0`: exact routes come back
    /// with `eps = delta = 0`, [`Plan::Sample`] routes Monte-Carlo
    /// bounded.
    pub fn eval_estimate(&self, tid: &Tid, stream: u64, stats: &mut EngineStats) -> Estimate {
        match self.task.plan {
            Plan::Sample(_) => {
                let started = Instant::now();
                let run = self.task.run_sampler(tid, stream);
                record_fallback(
                    stats,
                    self.task.query_stats(Duration::ZERO),
                    started.elapsed(),
                    Some(run),
                );
                run.estimate
            }
            _ => {
                let started = Instant::now();
                let value = self.eval_f64(tid, stream, stats);
                Estimate {
                    value,
                    eps: 0.0,
                    delta: 0.0,
                    samples: 0,
                    elapsed: started.elapsed(),
                    sampler: None,
                    deadline_hit: false,
                }
            }
        }
    }

    /// Evaluates a contiguous same-shape run of scenarios in f64,
    /// through the lane-batched kernel when the plan carries an
    /// artifact — bit-identical to [`PqeEngine::evaluate_batch_f64`] on
    /// the same run (the kernel's fixed-op-order contract), pushing one
    /// probability per scenario onto `out` and recording one
    /// [`QueryStats`] per scenario. `base` is the run's global batch
    /// offset: scenario `i` of the run samples from RNG stream
    /// `base + i`, which is what keeps server-side sharding
    /// bit-identical to a sequential batch at any split.
    pub fn eval_run_f64(
        &self,
        tids: &[Tid],
        base: u64,
        scratch: &mut LaneScratch,
        out: &mut Vec<f64>,
        stats: &mut EngineStats,
    ) {
        if tids.is_empty() {
            return;
        }
        match &self.task.artifact {
            Some(artifact) => PqeEngine::walk_lane_run_f64(
                artifact,
                tids,
                &mut scratch.probs,
                &mut scratch.scratch,
                out,
                stats,
                |offset| self.task.query_stats_at(offset),
            ),
            None => {
                for (offset, tid) in tids.iter().enumerate() {
                    if self.task.plan == Plan::Extensional && (offset > 0 || self.memo_hit) {
                        stats.extensional_memo_hits += 1;
                    }
                    let started = Instant::now();
                    let (p, sample_run) = self.task.eval_fallback_f64(tid, base + offset as u64);
                    out.push(p);
                    record_fallback(
                        stats,
                        self.task.query_stats_at(offset),
                        started.elapsed(),
                        sample_run,
                    );
                }
            }
        }
    }
}

impl Default for PqeEngine {
    fn default() -> Self {
        Self::with_config(EngineConfig::default())
    }
}

impl PqeEngine {
    /// An engine with the default [`EngineConfig`].
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with an explicit configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails [`EngineConfig::validate`];
    /// [`try_with_config`](Self::try_with_config) is the non-panicking
    /// variant.
    pub fn with_config(config: EngineConfig) -> Self {
        Self::try_with_config(config).unwrap_or_else(|e| panic!("invalid EngineConfig: {e}"))
    }

    /// An engine with an explicit configuration, rejecting invalid ones
    /// with a typed [`ConfigError`] instead of panicking.
    pub fn try_with_config(config: EngineConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(PqeEngine {
            cache: ArtifactCache::new(config.cache_gate_budget),
            config,
            lattices: HashMap::new(),
            stats: EngineStats::default(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Lifetime statistics (plans chosen, cache hits/misses/evictions,
    /// wall time).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Zeroes the statistics; the artifact cache is untouched.
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Mutable statistics access for the crate's maintenance paths
    /// (recovery counts quarantines and replayed WAL records here).
    pub(crate) fn stats_mut(&mut self) -> &mut EngineStats {
        &mut self.stats
    }

    /// Number of compiled artifacts currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Total gates (OBDD nodes + d-D gates) currently retained by the
    /// cache; never exceeds the budget.
    pub fn cache_gates(&self) -> usize {
        self.cache.total_gates()
    }

    /// The cache's gate budget (`None` = unbounded).
    pub fn cache_budget(&self) -> Option<usize> {
        self.cache.budget()
    }

    /// Replaces the cache's gate budget, evicting immediately if the
    /// retained artifacts no longer fit.
    pub fn set_cache_budget(&mut self, budget: Option<usize>) {
        self.config.cache_gate_budget = budget;
        self.stats.cache_evictions += self.cache.set_budget(budget);
    }

    /// Drops every cached artifact (not counted as evictions) and the
    /// memoized extensional lattices.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
        self.lattices.clear();
    }

    /// Number of distinct `φ` whose CNF lattice + Möbius values are
    /// memoized for [`Plan::Extensional`] re-evaluation.
    pub fn lattice_memo_len(&self) -> usize {
        self.lattices.len()
    }

    /// The memoized CNF lattice for `phi`, building (and retaining) it
    /// on first use; every reuse counts one
    /// [`EngineStats::extensional_memo_hits`].
    fn extensional_lattice(&mut self, phi: &BoolFn) -> Arc<QueryLattice> {
        if let Some(lat) = self.lattices.get(phi) {
            self.stats.extensional_memo_hits += 1;
            return Arc::clone(lat);
        }
        let lat = Arc::new(cnf_lattice(phi));
        self.lattices.insert(phi.clone(), Arc::clone(&lat));
        lat
    }

    /// Serializes the whole artifact cache into one versioned bundle
    /// (format spec: `DESIGN.md` §5 and the [`store`](crate::store)
    /// docs). Entries are written in ascending last-used order, so
    /// [`load_cache`](Self::load_cache) replays the LRU recency ranking
    /// — and the bytes are deterministic, which is what lets CI pin
    /// golden fixtures. Probabilities are never serialized, for the same
    /// reason they are not in the cache key: one stored circuit serves
    /// every re-weighting. Grounded general-query artifacts are skipped:
    /// the store format addresses artifacts by `φ`, and a ground circuit
    /// is cheap to rebuild from its query text on first use.
    pub fn save_cache(&self) -> Vec<u8> {
        let entries: Vec<_> = self
            .cache
            .entries_lru_order()
            .into_iter()
            .filter(|(key, _)| !key.is_ground())
            .collect();
        store::encode_bundle(&entries)
    }

    /// Warm-starts this engine from a [`save_cache`](Self::save_cache)
    /// bundle: every artifact is decoded, structurally revalidated
    /// against its recomputed [`CacheKey`], and admitted through the
    /// normal LRU insert path (budget enforced, evictions counted), so a
    /// warmed replica replays the saved workload with zero compiles —
    /// `misses == 0` and `artifact_loads == distinct shapes` in
    /// [`EngineStats`].
    ///
    /// Total and all-or-nothing: any malformed byte returns a typed
    /// [`StoreError`] *before* the cache or the statistics are touched.
    pub fn load_cache(&mut self, bytes: &[u8]) -> Result<LoadReport, StoreError> {
        let artifacts = store::decode_bundle(bytes)?;
        Ok(self.admit(artifacts))
    }

    /// Serializes the cached artifact for `(q.phi(), db shape)` into a
    /// standalone blob importable by
    /// [`import_artifact`](Self::import_artifact) on any engine. Reads
    /// the cache without bumping recency (like
    /// [`explain`](Self::explain), exporting must not perturb eviction
    /// order); returns [`StoreError::NotCached`] when the artifact is
    /// not resident.
    pub fn export_artifact(&self, q: &HQuery, db: &Database) -> Result<Vec<u8>, StoreError> {
        let key = CacheKey::new(q.phi(), db);
        let artifact = self.cache.peek(&key).ok_or(StoreError::NotCached)?;
        Ok(store::encode_artifact(&key, artifact))
    }

    /// Decodes, revalidates and admits one exported artifact. The same
    /// totality contract as [`load_cache`](Self::load_cache): malformed
    /// input returns a typed [`StoreError`] and leaves the engine
    /// untouched.
    pub fn import_artifact(&mut self, bytes: &[u8]) -> Result<LoadReport, StoreError> {
        let decoded = store::decode_artifact(bytes)?;
        Ok(self.admit(vec![decoded]))
    }

    /// Inserts already-validated artifacts through the normal LRU path,
    /// counting loads and evictions.
    fn admit(&mut self, artifacts: Vec<(CacheKey, Artifact)>) -> LoadReport {
        let mut report = LoadReport::default();
        for (key, artifact) in artifacts {
            let (handle, evicted) = self.cache.insert(key, artifact);
            self.stats.cache_evictions += evicted;
            self.stats.artifact_loads += 1;
            report.artifacts += 1;
            report.gates += handle.size();
            report.evictions += evicted;
        }
        report
    }

    /// Inserts a tuple into a live TID **and incrementally patches every
    /// cached artifact** compiled for the pre-insert shape (any `φ`), so
    /// the next evaluation is a cache hit instead of a recompile. The
    /// patch re-unrolls only the stream prefix up to the new tuple's
    /// slot and transplants the rest of the Proposition 3.7 unroll (for
    /// a d-D, per affected degenerate leaf), producing an artifact
    /// bit-identical to a fresh compile (`DESIGN.md` §9). Counted in
    /// [`EngineStats::patches_applied`] / `patch_nanos` /
    /// `full_recompiles_avoided`; artifacts that cannot be patched
    /// (e.g. deserialized without their unroll trace) are simply left
    /// under their old key — never a wrong answer, the new shape just
    /// recompiles on first use.
    ///
    /// A failed insert (duplicate tuple, out-of-domain constant, bad
    /// probability) changes nothing: not the TID, not the cache.
    pub fn insert_tuple(
        &mut self,
        tid: &mut Tid,
        desc: TupleDesc,
        p: BigRational,
    ) -> Result<TupleId, TidError> {
        let old_db = tid.database().clone();
        let id = tid.insert(desc, p)?;
        self.patch_all_artifacts(&old_db, tid.database());
        Ok(id)
    }

    /// Removes a tuple from a live TID, incrementally patching every
    /// cached artifact of the pre-remove shape — the contraction dual of
    /// [`insert_tuple`](Self::insert_tuple), with the same counters and
    /// the same bit-identity guarantee. Tuple ids above the removed one
    /// shift down by one (see [`intext_tid::Database::remove`]); the
    /// patched artifacts are renumbered accordingly.
    pub fn remove_tuple(
        &mut self,
        tid: &mut Tid,
        id: TupleId,
    ) -> Result<(TupleDesc, BigRational), TidError> {
        let old_db = tid.database().clone();
        let removed = tid.remove(id)?;
        self.patch_all_artifacts(&old_db, tid.database());
        Ok(removed)
    }

    /// Replaces one tuple's probability. **No artifact is touched**:
    /// cache keys deliberately exclude probabilities, so every cached
    /// same-shape artifact stays valid as-is and the next evaluation is
    /// a pure re-walk. Each such artifact counts one
    /// [`EngineStats::full_recompiles_avoided`] — the win the
    /// intensional representation exists for, made observable.
    pub fn set_probability(
        &mut self,
        tid: &mut Tid,
        id: TupleId,
        p: BigRational,
    ) -> Result<(), TidError> {
        tid.set_prob(id, p)?;
        let valid = self
            .cache
            .keys()
            .filter(|key| Self::key_matches_shape(key, tid.database()))
            .count();
        self.stats.full_recompiles_avoided += valid as u64;
        Ok(())
    }

    /// Serializes a live tuple update against the **pre-update** shape
    /// of `db` into a delta blob (format: the [`store`](crate::store)
    /// docs), shippable to replicas holding the same artifact. Call
    /// *before* applying the update locally — the delta names the shape
    /// its receivers still have. Requires the pre-update artifact to be
    /// cached ([`StoreError::NotCached`] otherwise): a delta against an
    /// artifact nobody holds could never be applied incrementally.
    pub fn export_delta(
        &self,
        q: &HQuery,
        db: &Database,
        update: &TupleUpdate,
    ) -> Result<Vec<u8>, StoreError> {
        let key = CacheKey::new(q.phi(), db);
        if !self.cache.contains(&key) {
            return Err(StoreError::NotCached);
        }
        Ok(store::encode_delta(&key, update))
    }

    /// Applies an exported update delta: decodes and validates it,
    /// replays the operation on the delta's pre-update shape, and brings
    /// this engine's cache up to date — by **incremental patch** when
    /// the pre-update artifact is resident (counted in
    /// [`EngineStats::patches_applied`]), by a full compile of the
    /// post-update artifact otherwise. Either way the cached result is
    /// bit-identical to a fresh compile, so a replica stream of deltas
    /// can never drift from the source engine.
    ///
    /// Total like the other import paths: malformed bytes, an operation
    /// illegal on the shape (duplicate insert, unknown remove id), or a
    /// `(φ, shape)` pair this engine could never compile all return a
    /// typed [`StoreError`] before any state changes.
    pub fn apply_delta(&mut self, bytes: &[u8]) -> Result<LoadReport, StoreError> {
        let (phi, old_db, update) = store::decode_delta(bytes)?;
        let mut new_db = old_db.clone();
        match &update {
            TupleUpdate::Insert { desc } => {
                new_db.insert(*desc).map_err(StoreError::BadTuple)?;
            }
            TupleUpdate::Remove { id } => {
                new_db.remove(TupleId(*id)).map_err(StoreError::BadTuple)?;
            }
        }
        let region = classify(&phi);
        // The engine only ever compiles the two cacheable regions; a
        // delta for any other φ is one no engine could have exported.
        let kind = match region {
            Region::DegenerateObdd => store::ArtifactKind::Obdd,
            Region::ZeroEulerDD => store::ArtifactKind::Dd,
            _ => {
                return Err(StoreError::PlanMismatch {
                    kind: store::ArtifactKind::Obdd,
                    region,
                })
            }
        };
        let old_key = CacheKey::new(&phi, &old_db);
        let new_key = CacheKey::new(&phi, &new_db);
        let started = Instant::now();
        let patched = self
            .cache
            .peek(&old_key)
            .and_then(|artifact| Self::patch_artifact(artifact, &old_db, &new_db));
        let (handle, evicted) = match patched {
            Some(artifact) => {
                let (handle, evicted) = self.cache.patch(&old_key, new_key, Arc::new(artifact));
                self.stats.patches_applied += 1;
                self.stats.full_recompiles_avoided += 1;
                self.stats.patch_nanos += duration_nanos(started.elapsed());
                (handle, evicted)
            }
            None => {
                // Cold replica (or an unpatchable resident): compile the
                // post-update artifact from scratch by φ's region. The
                // superseded pre-update artifact — resident but
                // unpatchable, e.g. deserialized without its unroll
                // trace — is evicted by the same `patch` rekeying the
                // incremental path uses: the delta says that shape no
                // longer exists, so a recovered replica converges to
                // the same cache contents as the patched source.
                let artifact = match kind {
                    store::ArtifactKind::Obdd => Artifact::Obdd(
                        compile_degenerate_obdd(&phi, &new_db)
                            .map_err(|_| StoreError::PlanMismatch { kind, region })?,
                    ),
                    store::ArtifactKind::Dd => Artifact::Dd(
                        compile_dd(&phi, &new_db)
                            .map_err(|_| StoreError::PlanMismatch { kind, region })?,
                    ),
                };
                self.cache.patch(&old_key, new_key, Arc::new(artifact))
            }
        };
        self.stats.cache_evictions += evicted;
        self.stats.artifact_loads += 1;
        Ok(LoadReport {
            artifacts: 1,
            gates: handle.size(),
            evictions: evicted,
        })
    }

    /// `true` iff `key` was built over exactly `db`'s shape (any `φ`) —
    /// the filter the live-update paths use to find every cached
    /// artifact a structural change affects.
    fn key_matches_shape(key: &CacheKey, db: &Database) -> bool {
        key.k() == db.k()
            && key.domain_size() == db.domain_size()
            && key.tuples().len() == db.len()
            && db.iter().zip(key.tuples()).all(|((_, t), &kt)| t == kt)
    }

    /// The incremental patch of one artifact across `old_db → new_db`,
    /// or `None` when it cannot be patched (no unroll trace, more than
    /// one slot changed, shape parameters differ).
    fn patch_artifact(
        artifact: &Artifact,
        old_db: &Database,
        new_db: &Database,
    ) -> Option<Artifact> {
        match artifact {
            Artifact::Obdd(lin) => lin.patched(old_db, new_db).map(Artifact::Obdd),
            Artifact::Dd(dd) => dd.patched(old_db, new_db).map(Artifact::Dd),
        }
    }

    /// Patches every cached artifact keyed to `old_db`'s shape over to
    /// `new_db`'s, re-keying it under the post-update [`CacheKey`] and
    /// counting [`EngineStats::patches_applied`] /
    /// [`EngineStats::patch_nanos`] /
    /// [`EngineStats::full_recompiles_avoided`]. Unpatchable artifacts
    /// stay under their old key: their key still truthfully names the
    /// shape they were compiled for, so they are merely idle (and age
    /// out of the LRU), never wrong.
    fn patch_all_artifacts(&mut self, old_db: &Database, new_db: &Database) {
        // Ground artifacts are excluded up front: they carry no unroll
        // trace (never patchable), and re-keying below derives the new
        // key from `φ`, which a ground key does not have.
        let affected: Vec<CacheKey> = self
            .cache
            .keys()
            .filter(|key| !key.is_ground() && Self::key_matches_shape(key, old_db))
            .cloned()
            .collect();
        for old_key in affected {
            let started = Instant::now();
            let Some(patched) = self
                .cache
                .peek(&old_key)
                .and_then(|artifact| Self::patch_artifact(artifact, old_db, new_db))
            else {
                continue;
            };
            let new_key = CacheKey::new(old_key.phi(), new_db);
            let (_, evicted) = self.cache.patch(&old_key, new_key, Arc::new(patched));
            self.stats.cache_evictions += evicted;
            self.stats.patches_applied += 1;
            self.stats.full_recompiles_avoided += 1;
            self.stats.patch_nanos += duration_nanos(started.elapsed());
        }
    }

    /// Resolves a [`Query`] into the routing family the planner works
    /// with, against a database vocabulary of chain length `k`. Pure —
    /// no engine state is read or written:
    ///
    /// 1. an H-built query stays H ([`Resolved::H`]);
    /// 2. a general query whose normalized shape *is* an `H`-query at
    ///    `k` is recognized ([`recognize_h`]) and mapped onto the full
    ///    `φ + h_{k,i}` machinery — caches, lane kernel, patching and
    ///    sampling apply with zero extra compiles;
    /// 3. a negation-free query that passes the Dalvi–Suciu safety test
    ///    becomes [`Resolved::Lifted`];
    /// 4. everything else grounds per instance ([`Resolved::Ground`]).
    ///
    /// A general query needing a longer chain than the instance
    /// provides fails here with [`EngineError::VocabularyMismatch`];
    /// H-queries keep their exact-`k` check in
    /// [`plan_resolved`](Self::plan_resolved), per instance.
    fn resolve(q: &Query, k: u8) -> Result<Resolved, EngineError> {
        if let Some(h) = q.as_h() {
            return Ok(Resolved::H(h.clone()));
        }
        let (expr, _voc) = q.general().expect("a Query is either H or general");
        let required_k = q.required_k();
        if required_k > k {
            return Err(EngineError::VocabularyMismatch {
                query_k: required_k,
                database_k: k,
            });
        }
        if let Some(h) = recognize_h(expr, k) {
            return Ok(Resolved::H(h));
        }
        if let Some(ucq) = expr.to_ucq() {
            let ucq = ucq.normalize();
            if is_safe_ucq(&ucq) {
                return Ok(Resolved::Lifted { ucq, required_k });
            }
        }
        // Canonical, vocabulary-independent text: the ground cache key.
        let text: Arc<str> = Arc::from(
            expr.normalize_leaves()
                .render(&|rel: Relation| rel.to_string()),
        );
        Ok(Resolved::Ground {
            expr: expr.clone(),
            text,
            required_k,
        })
    }

    /// The Figure 1 region of an H resolution, or the off-map region of
    /// a general one.
    fn region_of(r: &Resolved) -> Region {
        match r {
            Resolved::H(q) => classify(q.phi()),
            Resolved::Lifted { .. } => Region::SafeLifted,
            Resolved::Ground { .. } => Region::GroundCircuit,
        }
    }

    /// The artifact-cache key of a cacheable resolution on `db`.
    fn resolved_cache_key(r: &Resolved, db: &Database) -> CacheKey {
        match r {
            Resolved::H(q) => CacheKey::new(q.phi(), db),
            Resolved::Ground { text, .. } => CacheKey::for_ground(text, db),
            Resolved::Lifted { .. } => unreachable!("lifted plans are not cacheable"),
        }
    }

    /// The routing decision for an already-resolved query on `tid` —
    /// the per-instance half of [`plan`](Self::plan), also run per
    /// scenario inside batches (so a mixed-vocabulary batch still fails
    /// all-or-nothing).
    fn plan_resolved(&self, r: &Resolved, tid: &Tid) -> Result<Plan, EngineError> {
        match r {
            Resolved::H(q) => {
                let phi = q.phi();
                if tid.database().k() != q.k() {
                    return Err(EngineError::VocabularyMismatch {
                        query_k: q.k(),
                        database_k: tid.database().k(),
                    });
                }
                let region = classify(phi);
                match region {
                    Region::DegenerateObdd => Ok(Plan::Obdd),
                    Region::ZeroEulerDD => {
                        if self.config.prefer_extensional && phi.is_monotone() {
                            Ok(Plan::Extensional)
                        } else {
                            Ok(Plan::DdCircuit)
                        }
                    }
                    Region::HardMonotone | Region::HardByTransfer | Region::ConjecturedHard => {
                        // Validated ≤ 63 at construction (ConfigError otherwise).
                        let budget = self.config.max_brute_force_tuples;
                        if tid.len() <= budget {
                            Ok(Plan::BruteForce)
                        } else if self.config.sampling.is_some() {
                            Ok(Plan::Sample(Self::sampler_kind(q, tid)))
                        } else {
                            Err(EngineError::Intractable {
                                region,
                                tuples: tid.len(),
                                budget,
                            })
                        }
                    }
                    Region::SafeLifted | Region::GroundCircuit => {
                        unreachable!("classify is defined on H-queries only")
                    }
                }
            }
            Resolved::Lifted { required_k, .. } => {
                if *required_k > tid.database().k() {
                    return Err(EngineError::VocabularyMismatch {
                        query_k: *required_k,
                        database_k: tid.database().k(),
                    });
                }
                Ok(Plan::Lifted)
            }
            Resolved::Ground { required_k, .. } => {
                if *required_k > tid.database().k() {
                    return Err(EngineError::VocabularyMismatch {
                        query_k: *required_k,
                        database_k: tid.database().k(),
                    });
                }
                let budget = self.config.max_ground_tuples;
                if tid.len() <= budget {
                    Ok(Plan::GroundCircuit)
                } else {
                    Err(EngineError::GroundingTooLarge {
                        tuples: tid.len(),
                        budget,
                    })
                }
            }
        }
    }

    /// The routing decision for `q` on `tid`, without evaluating.
    /// Accepts anything convertible into a [`Query`]: an [`HQuery`]
    /// (by reference or value), a parsed general query, or a `Query`
    /// built from an expression.
    ///
    /// Precedence for H-shaped queries — built as [`HQuery`] or
    /// recognized in a parsed query (soundness argument in
    /// `DESIGN.md`):
    ///
    /// 1. degenerate `φ` → [`Plan::Obdd`] (Proposition 3.7);
    /// 2. monotone `φ`, `e(φ) = 0`, with
    ///    [`prefer_extensional`](EngineConfig::prefer_extensional) →
    ///    [`Plan::Extensional`] (safe by Corollary 3.9);
    /// 3. `e(φ) = 0` → [`Plan::DdCircuit`] (Theorem 5.2);
    /// 4. otherwise `PQE(Q_φ)` is `#P`-hard or conjectured so →
    ///    [`Plan::BruteForce`] within the budget; beyond it,
    ///    [`Plan::Sample`] when [`EngineConfig::sampling`] is enabled
    ///    (Karp–Luby over the grounded DNF when `φ` is monotone and the
    ///    grounding is small enough, naive world sampling otherwise),
    ///    else [`EngineError::Intractable`].
    ///
    /// General queries that are not H-shaped split by the Dalvi–Suciu
    /// safety test: safe → [`Plan::Lifted`] (PTIME, no artifact);
    /// unsafe → [`Plan::GroundCircuit`] within
    /// [`EngineConfig::max_ground_tuples`], else
    /// [`EngineError::GroundingTooLarge`].
    pub fn plan(&self, q: impl Into<Query>, tid: &Tid) -> Result<Plan, EngineError> {
        let q = q.into();
        let resolved = Self::resolve(&q, tid.database().k())?;
        self.plan_resolved(&resolved, tid)
    }

    /// Which sampler a [`Plan::Sample`] query runs: Karp–Luby needs a
    /// monotone lineage whose grounded DNF stays affordable (clause
    /// bound ≤ [`MAX_KARP_LUBY_CLAUSES`], checked *without* grounding);
    /// everything else falls back to naive world sampling through the
    /// lane kernel.
    fn sampler_kind(q: &HQuery, tid: &Tid) -> SamplerKind {
        match dnf_clause_bound(q, tid.database()) {
            Some(bound) if bound <= MAX_KARP_LUBY_CLAUSES => SamplerKind::KarpLuby,
            _ => SamplerKind::NaiveWorlds,
        }
    }

    /// The full routing rationale for `q` on `tid`: region (Figure 1
    /// for H-shaped queries, the off-map general regions otherwise),
    /// chosen plan (or why none exists), and whether the artifact is
    /// already cached.
    pub fn explain(&self, q: impl Into<Query>, tid: &Tid) -> Explanation {
        let q = q.into();
        match Self::resolve(&q, tid.database().k()) {
            Ok(resolved) => {
                let plan = self.plan_resolved(&resolved, tid);
                let cached = matches!(plan, Ok(p) if p.is_cacheable())
                    && self
                        .cache
                        .contains(&Self::resolved_cache_key(&resolved, tid.database()));
                Explanation {
                    region: Self::region_of(&resolved),
                    tuples: tid.len(),
                    plan,
                    cached,
                }
            }
            Err(e) => {
                // The instance's vocabulary is too short to resolve the
                // query against; re-resolve at the query's own k for a
                // best-effort region (that resolution cannot mismatch).
                let region = Self::resolve(&q, q.required_k())
                    .map_or(Region::GroundCircuit, |r| Self::region_of(&r));
                Explanation {
                    region,
                    tuples: tid.len(),
                    plan: Err(e),
                    cached: false,
                }
            }
        }
    }

    /// Compiles the artifact a cacheable `plan` promised. The planner
    /// already established the backend preconditions (vocabulary match,
    /// degeneracy / zero Euler characteristic, grounding budget), so
    /// compilation cannot fail.
    fn compile_artifact(plan: Plan, query: &Resolved, tid: &Tid) -> Artifact {
        match plan {
            Plan::Obdd => {
                let q = query.as_h().expect("an Obdd plan implies an H resolution");
                Artifact::Obdd(
                    compile_degenerate_obdd(q.phi(), tid.database())
                        .expect("planner guarantees a degenerate φ on a matching vocabulary"),
                )
            }
            Plan::DdCircuit => {
                let q = query
                    .as_h()
                    .expect("a DdCircuit plan implies an H resolution");
                Artifact::Dd(
                    compile_dd(q.phi(), tid.database()).expect("planner guarantees e(φ) = 0"),
                )
            }
            Plan::GroundCircuit => {
                let Resolved::Ground { expr, .. } = query else {
                    unreachable!("a GroundCircuit plan carries a ground resolution")
                };
                let (manager, root) = ground_circuit(expr, tid.database());
                // Split 0 and no unroll trace: a ground artifact walks
                // and lane-batches like any degenerate OBDD but is never
                // structurally patched (the trace is what patching
                // replays), so live updates simply leave it to recompile.
                Artifact::Obdd(DegenerateLineage::new(manager, root, 0))
            }
            Plan::Extensional | Plan::BruteForce | Plan::Sample(_) | Plan::Lifted => {
                unreachable!("only cacheable plans compile artifacts")
            }
        }
    }

    /// Exact `PQE(Q)` through the planner: resolves, routes, compiles
    /// or reuses a cached artifact, evaluates, and records
    /// [`QueryStats`]. Accepts an [`HQuery`] or any general [`Query`].
    ///
    /// Under a [`Plan::Sample`] route the returned rational is the
    /// sampler's `(ε, δ)`-bounded estimate embedded exactly (an f64 is
    /// a dyadic rational) — use [`estimate`](Self::estimate) when the
    /// error bound itself matters.
    pub fn evaluate(&mut self, q: impl Into<Query>, tid: &Tid) -> Result<BigRational, EngineError> {
        let q = q.into();
        let resolved = Arc::new(Self::resolve(&q, tid.database().k())?);
        self.evaluate_resolved(&resolved, tid)
    }

    /// The single-query exact path shared by [`evaluate`](Self::evaluate)
    /// and [`estimate`](Self::estimate): one [`begin_run`](Self::begin_run)
    /// (plan + fetch/compile shared state), one evaluation, one record.
    fn evaluate_resolved(
        &mut self,
        resolved: &Arc<Resolved>,
        tid: &Tid,
    ) -> Result<BigRational, EngineError> {
        let task = self.begin_run(resolved, tid)?;
        let started = Instant::now();
        let (p, sample_run) = match &task.artifact {
            Some(artifact) => (artifact.probability_exact(tid), None),
            None => task.eval_fallback_exact(tid, 0),
        };
        record_fallback(
            &mut self.stats,
            task.query_stats(Duration::ZERO),
            started.elapsed(),
            sample_run,
        );
        Ok(p)
    }

    /// Floating-point `PQE(Q)` through the same planner and cache
    /// (used by the benchmarks; cached-artifact walks stay linear).
    /// [`Plan::Sample`] routes return the Monte-Carlo estimate's value.
    pub fn evaluate_f64(&mut self, q: impl Into<Query>, tid: &Tid) -> Result<f64, EngineError> {
        let q = q.into();
        let resolved = Arc::new(Self::resolve(&q, tid.database().k())?);
        self.evaluate_f64_resolved(&resolved, tid)
    }

    /// Floating-point [`evaluate_resolved`](Self::evaluate_resolved).
    fn evaluate_f64_resolved(
        &mut self,
        resolved: &Arc<Resolved>,
        tid: &Tid,
    ) -> Result<f64, EngineError> {
        let task = self.begin_run(resolved, tid)?;
        let started = Instant::now();
        let (p, sample_run) = match &task.artifact {
            Some(artifact) => (artifact.probability_f64(tid), None),
            None => task.eval_fallback_f64(tid, 0),
        };
        record_fallback(
            &mut self.stats,
            task.query_stats(Duration::ZERO),
            started.elapsed(),
            sample_run,
        );
        Ok(p)
    }

    /// `PQE(Q)` as a uniformly-shaped [`Estimate`]: exact routes come
    /// back with `eps = delta = 0` and `sampler: None`; hard queries
    /// beyond the brute-force budget (with sampling enabled) come back
    /// Monte-Carlo-bounded with the sampler named. This is the anytime
    /// front door the hard region previously lacked.
    pub fn estimate(&mut self, q: impl Into<Query>, tid: &Tid) -> Result<Estimate, EngineError> {
        let q = q.into();
        let resolved = Arc::new(Self::resolve(&q, tid.database().k())?);
        match self.plan_resolved(&resolved, tid)? {
            Plan::Sample(kind) => {
                let h = resolved.as_h().expect("sampling is H-only");
                Ok(self.run_sampler_single(h, tid, kind).estimate)
            }
            _ => {
                let started = Instant::now();
                let value = self.evaluate_f64_resolved(&resolved, tid)?;
                Ok(Estimate {
                    value,
                    eps: 0.0,
                    delta: 0.0,
                    samples: 0,
                    elapsed: started.elapsed(),
                    sampler: None,
                    deadline_hit: false,
                })
            }
        }
    }

    /// One standalone sampler invocation (the single-query path; batches
    /// go through [`Task`]s): grounds the sampler artifact, runs stream
    /// 0, and records stats — sampler wall time lands in `eval_time` /
    /// [`EngineStats::sample_nanos`], grounding time in `compile_time`.
    fn run_sampler_single(&mut self, q: &HQuery, tid: &Tid, kind: SamplerKind) -> SampleRun {
        let sampling = self
            .config
            .sampling
            .expect("a Sample plan implies sampling is configured");
        let build_started = Instant::now();
        let artifact = SamplerArtifact::build(kind, q, tid, sampling);
        let compile_time = build_started.elapsed();
        let started = Instant::now();
        let run = artifact.run(tid, 0);
        record_fallback(
            &mut self.stats,
            QueryStats {
                plan: Plan::Sample(kind),
                cache_hit: false,
                circuit_size: None,
                compile_time,
                eval_time: Duration::ZERO,
                samples: 0,
            },
            started.elapsed(),
            Some(run),
        );
        run
    }

    /// Begins a contiguous same-shape run of a batch: plans the first
    /// scenario and fetches (or compiles) whatever shared state the run
    /// needs — the cached artifact for cacheable plans, the memoized CNF
    /// lattice for extensional ones. Every later scenario of the run
    /// reuses the returned [`Task`] via [`Task::shared`], skipping the
    /// `O(|D|)` cache-key hash entirely.
    fn begin_run(&mut self, query: &Arc<Resolved>, tid: &Tid) -> Result<Task, EngineError> {
        let plan = self.plan_resolved(query, tid)?;
        let mut task = Task {
            query: Arc::clone(query),
            plan,
            artifact: None,
            lattice: None,
            sampler: None,
            size: None,
            cache_hit: false,
            compile_time: Duration::ZERO,
        };
        if plan.is_cacheable() {
            let key = Self::resolved_cache_key(query, tid.database());
            let artifact = match self.cache.get(&key) {
                Some(artifact) => {
                    task.cache_hit = true;
                    artifact
                }
                None => {
                    let started = Instant::now();
                    let compiled = Self::compile_artifact(plan, query, tid);
                    task.compile_time = started.elapsed();
                    let (artifact, evicted) = self.cache.insert(key, compiled);
                    self.stats.cache_evictions += evicted;
                    artifact
                }
            };
            task.size = Some(artifact.size());
            task.artifact = Some(artifact);
        } else if plan == Plan::Extensional {
            let phi = query.as_h().expect("extensional plans are H-only").phi();
            task.lattice = Some(self.extensional_lattice(phi));
        } else if let Plan::Sample(kind) = plan {
            let q = query.as_h().expect("sampling is H-only");
            let sampling = self
                .config
                .sampling
                .expect("a Sample plan implies sampling is configured");
            let started = Instant::now();
            task.sampler = Some(Arc::new(SamplerArtifact::build(kind, q, tid, sampling)));
            task.compile_time = started.elapsed();
        }
        Ok(task)
    }

    /// Prepares `(q, tid)` for pure `&self` evaluation, compiling (and
    /// caching) the artifact or building the lattice memo when the key
    /// is cold — the **write path** of the serve layer's locking
    /// contract (`DESIGN.md` §10): hold the engine exclusively for this
    /// call, then evaluate the returned [`PreparedQuery`] outside any
    /// lock. Cache-hit/miss attribution lands in the preparation and is
    /// recorded at evaluation time, exactly as the engine's own
    /// `evaluate` records it.
    pub fn prepare(
        &mut self,
        q: impl Into<Query>,
        tid: &Tid,
    ) -> Result<PreparedQuery, EngineError> {
        let q = q.into();
        let resolved = Arc::new(Self::resolve(&q, tid.database().k())?);
        Ok(PreparedQuery {
            task: self.begin_run(&resolved, tid)?,
            memo_hit: false,
        })
    }

    /// The read path of the serve layer's locking contract: plans
    /// `(q, tid)` and probes the artifact cache / lattice memo
    /// **without mutating anything** — no compile, no LRU recency bump
    /// (probes use [`ArtifactCache::peek`]-style reads, so concurrent
    /// readers never contend on eviction order). Returns:
    ///
    /// * `Ok(Some(_))` — the preparation is complete: a cached artifact
    ///   was resident (accounted as a cache hit), the lattice was
    ///   memoized, or the plan needs no shared state at all
    ///   ([`Plan::BruteForce`], [`Plan::Lifted`] — lifted inference is
    ///   a pure function of the query structure — and [`Plan::Sample`],
    ///   whose sampler grounding is a deterministic pure function,
    ///   rebuilt here exactly as the single-query path rebuilds it).
    /// * `Ok(None)` — the key is cold; escalate to
    ///   [`prepare`](Self::prepare) under exclusive access. A
    ///   double-checked re-probe is free: `prepare` re-probes the cache
    ///   itself, so two racing readers cost one compile, not two.
    /// * `Err(_)` — no sound plan ([`EngineError`] as from
    ///   [`plan`](Self::plan)).
    pub fn prepare_shared(
        &self,
        q: impl Into<Query>,
        tid: &Tid,
    ) -> Result<Option<PreparedQuery>, EngineError> {
        let q = q.into();
        let resolved = Arc::new(Self::resolve(&q, tid.database().k())?);
        let plan = self.plan_resolved(&resolved, tid)?;
        let mut task = Task {
            query: Arc::clone(&resolved),
            plan,
            artifact: None,
            lattice: None,
            sampler: None,
            size: None,
            cache_hit: false,
            compile_time: Duration::ZERO,
        };
        let mut memo_hit = false;
        if plan.is_cacheable() {
            let key = Self::resolved_cache_key(&resolved, tid.database());
            match self.cache.peek(&key) {
                Some(artifact) => {
                    task.cache_hit = true;
                    task.size = Some(artifact.size());
                    task.artifact = Some(Arc::clone(artifact));
                }
                None => return Ok(None),
            }
        } else if plan == Plan::Extensional {
            let phi = resolved.as_h().expect("extensional plans are H-only").phi();
            match self.lattices.get(phi) {
                Some(lat) => {
                    task.lattice = Some(Arc::clone(lat));
                    memo_hit = true;
                }
                None => return Ok(None),
            }
        } else if let Plan::Sample(kind) = plan {
            let h = resolved.as_h().expect("sampling is H-only");
            let sampling = self
                .config
                .sampling
                .expect("a Sample plan implies sampling is configured");
            let started = Instant::now();
            task.sampler = Some(Arc::new(SamplerArtifact::build(kind, h, tid, sampling)));
            task.compile_time = started.elapsed();
        }
        Ok(Some(PreparedQuery { task, memo_hit }))
    }

    /// Evaluates `q` on every TID of a workload, amortizing compilation:
    /// TIDs sharing a database shape (the common case — one instance,
    /// many probability scenarios) compile once and re-walk the cached
    /// circuit for every other member of the batch. Consecutive
    /// same-shape scenarios (detected via [`Database::same_shape`]) skip
    /// even the cache-key construction.
    ///
    /// Fails on the first TID with no sound plan, so a batch is
    /// all-or-nothing. [`evaluate_batch_sharded`](Self::evaluate_batch_sharded)
    /// is the parallel variant with identical results, and
    /// [`evaluate_batch_f64`](Self::evaluate_batch_f64) the lane-batched
    /// floating-point one.
    pub fn evaluate_batch(
        &mut self,
        q: impl Into<Query>,
        tids: &[Tid],
    ) -> Result<Vec<BigRational>, EngineError> {
        let Some(first) = tids.first() else {
            return Ok(Vec::new());
        };
        let q = q.into();
        let resolved = Arc::new(Self::resolve(&q, first.database().k())?);
        let mut out = Vec::with_capacity(tids.len());
        let mut run: Option<Task> = None;
        for (i, tid) in tids.iter().enumerate() {
            let fresh = i == 0 || !tid.database().same_shape(tids[i - 1].database());
            let task = match run.take() {
                Some(prev) if !fresh => {
                    if prev.plan == Plan::Extensional {
                        self.stats.extensional_memo_hits += 1;
                    }
                    prev.shared()
                }
                _ => self.begin_run(&resolved, tid)?,
            };
            let started = Instant::now();
            let (p, sample_run) = match &task.artifact {
                Some(artifact) => (artifact.probability_exact(tid), None),
                None => task.eval_fallback_exact(tid, i as u64),
            };
            record_fallback(
                &mut self.stats,
                task.query_stats(Duration::ZERO),
                started.elapsed(),
                sample_run,
            );
            out.push(p);
            run = Some(task);
        }
        Ok(out)
    }

    /// Floating-point [`evaluate_batch`](Self::evaluate_batch) through
    /// the **lane-batched evaluation kernel**: consecutive same-shape
    /// scenarios share one compiled artifact, and each block of up to
    /// [`LANES`] scenarios is evaluated by a *single* forward pass over
    /// the circuit ([`Artifact::probability_f64_many`]) — one gate
    /// decode, zero steady-state allocations, all lanes advancing
    /// together. Results are bit-identical to calling
    /// [`evaluate_f64`](Self::evaluate_f64) per scenario (the kernel's
    /// fixed-op-order contract); each kernel invocation counts one
    /// [`EngineStats::lane_kernel_calls`].
    pub fn evaluate_batch_f64(
        &mut self,
        q: impl Into<Query>,
        tids: &[Tid],
    ) -> Result<Vec<f64>, EngineError> {
        let Some(head) = tids.first() else {
            return Ok(Vec::new());
        };
        let q = q.into();
        let resolved = Arc::new(Self::resolve(&q, head.database().k())?);
        let mut out = Vec::with_capacity(tids.len());
        let mut probs = ProbMatrix::new();
        let mut scratch = EvalScratch::new();
        let mut start = 0;
        while start < tids.len() {
            // The run of consecutive same-shape scenarios beginning here.
            let mut end = start + 1;
            while end < tids.len() && tids[end].database().same_shape(tids[end - 1].database()) {
                end += 1;
            }
            let first = self.begin_run(&resolved, &tids[start])?;
            match &first.artifact {
                Some(artifact) => Self::walk_lane_run_f64(
                    artifact,
                    &tids[start..end],
                    &mut probs,
                    &mut scratch,
                    &mut out,
                    &mut self.stats,
                    |offset| first.query_stats_at(offset),
                ),
                None => {
                    for (offset, tid) in tids[start..end].iter().enumerate() {
                        if offset > 0 && first.plan == Plan::Extensional {
                            self.stats.extensional_memo_hits += 1;
                        }
                        let started = Instant::now();
                        let (p, sample_run) = first.eval_fallback_f64(tid, (start + offset) as u64);
                        out.push(p);
                        record_fallback(
                            &mut self.stats,
                            first.query_stats_at(offset),
                            started.elapsed(),
                            sample_run,
                        );
                    }
                }
            }
            start = end;
        }
        Ok(out)
    }

    /// Dry-runs the sharded batch: how many workers would run, how many
    /// scenarios would compile vs share an artifact — without compiling
    /// or evaluating anything.
    ///
    /// The compile/share split assumes no evictions happen *during* the
    /// batch (a dry run cannot know artifact sizes before compiling
    /// them); with a tight budget and many distinct shapes the real
    /// [`evaluate_batch_sharded`](Self::evaluate_batch_sharded) may
    /// compile more.
    pub fn plan_batch(
        &self,
        q: impl Into<Query>,
        scenarios: &[Tid],
        shards: usize,
    ) -> Result<BatchPlan, EngineError> {
        let mut compiles = 0;
        let mut shared = 0;
        let mut sampled = 0;
        let resolved = match scenarios.first() {
            Some(first) => Some(Self::resolve(&q.into(), first.database().k())?),
            None => None,
        };
        let mut simulated: HashSet<CacheKey> = HashSet::new();
        let mut prev_plan = None;
        for (i, tid) in scenarios.iter().enumerate() {
            let resolved = resolved
                .as_ref()
                .expect("a scenario exists, so resolution ran");
            // The plan depends on the TID only through its shape
            // (vocabulary k and tuple count), so a same-shape run shares
            // one decision.
            let plan = match prev_plan {
                Some(p) if i > 0 && tid.database().same_shape(scenarios[i - 1].database()) => p,
                _ => self.plan_resolved(resolved, tid)?,
            };
            prev_plan = Some(plan);
            if plan.is_cacheable() {
                let key = Self::resolved_cache_key(resolved, tid.database());
                if simulated.contains(&key) || self.cache.contains(&key) {
                    shared += 1;
                } else {
                    compiles += 1;
                    simulated.insert(key);
                }
            } else if matches!(plan, Plan::Sample(_)) {
                sampled += 1;
            }
        }
        Ok(BatchPlan {
            scenarios: scenarios.len(),
            shards: Self::shard_count(scenarios.len(), shards),
            compiles,
            shared,
            sampled,
        })
    }

    /// The number of workers a request for `shards` shards over
    /// `scenarios` scenarios actually spawns: contiguous chunks of
    /// `ceil(scenarios / shards)`, so small workloads use fewer workers
    /// than asked and `shards == 0` is treated as `1`.
    fn shard_count(scenarios: usize, shards: usize) -> usize {
        if scenarios == 0 {
            return 0;
        }
        let shards = shards.clamp(1, scenarios);
        scenarios.div_ceil(scenarios.div_ceil(shards))
    }

    /// [`evaluate_batch`](Self::evaluate_batch), fanned across `shards`
    /// worker threads — bit-identical results, one compilation.
    ///
    /// Three phases (sequence diagram in `DESIGN.md`):
    ///
    /// 1. **Plan + compile (sequential).** Every scenario is planned, and
    ///    each *distinct* database shape compiles (or fetches) its
    ///    artifact exactly once; the artifacts are `Arc`-shared, so this
    ///    is the only phase that touches the cache or `&mut self`.
    ///    Consecutive same-shape scenarios (the dominant workload) skip
    ///    even the key construction via [`Tid::database`] shape equality.
    /// 2. **Walk (parallel).** Scenario chunks fan out over
    ///    `std::thread::scope` workers; each walk is a pure `&self` pass
    ///    over the shared circuit, and each worker records into its own
    ///    [`EngineStats`] — no locks, no shared mutable state.
    /// 3. **Merge.** Per-shard stats fold into the engine's aggregate via
    ///    [`EngineStats::merge`], in shard order, so the merged counters
    ///    equal a sequential run's; the [`BatchPlan`] (shard count,
    ///    compile/share split) lands in `EngineStats::last_batch`.
    ///
    /// Fails up front if any scenario lacks a sound plan — planning all
    /// scenarios is the very first step, so on error *nothing* has
    /// happened yet: no compile, no cache mutation, no eviction, no
    /// stats. (The sequential variant, by contrast, records the
    /// scenarios it finished before hitting the unsound one.)
    pub fn evaluate_batch_sharded(
        &mut self,
        q: impl Into<Query>,
        scenarios: &[Tid],
        shards: usize,
    ) -> Result<Vec<BigRational>, EngineError> {
        let q = q.into();
        let Some((tasks, compiles, shared, sampled)) = self.compile_batch_tasks(&q, scenarios)?
        else {
            return Ok(Vec::new());
        };
        let shards = Self::shard_count(scenarios.len(), shards);
        let outputs = Self::fan_out(scenarios, &tasks, shards, |base, tids, tasks| {
            let mut stats = EngineStats::default();
            let probs = tids
                .iter()
                .zip(tasks)
                .enumerate()
                .map(|(offset, (tid, task))| {
                    let started = Instant::now();
                    let (p, sample_run) = match &task.artifact {
                        Some(artifact) => (artifact.probability_exact(tid), None),
                        None => task.eval_fallback_exact(tid, (base + offset) as u64),
                    };
                    record_fallback(
                        &mut stats,
                        task.query_stats(Duration::ZERO),
                        started.elapsed(),
                        sample_run,
                    );
                    p
                })
                .collect();
            (probs, stats)
        });
        Ok(self.merge_shard_outputs(scenarios.len(), shards, compiles, shared, sampled, outputs))
    }

    /// Floating-point [`evaluate_batch_sharded`](Self::evaluate_batch_sharded),
    /// with each shard worker driving the **lane-batched evaluation
    /// kernel**: inside its contiguous chunk, consecutive scenarios
    /// sharing an artifact are walked [`LANES`] at a time through a
    /// worker-private [`EvalScratch`]/[`ProbMatrix`] pair (no shared
    /// mutable state, zero steady-state allocations per scenario).
    /// Results stay bit-identical to both the sequential
    /// [`evaluate_batch_f64`](Self::evaluate_batch_f64) and a per-scenario
    /// [`evaluate_f64`](Self::evaluate_f64) loop.
    pub fn evaluate_batch_sharded_f64(
        &mut self,
        q: impl Into<Query>,
        scenarios: &[Tid],
        shards: usize,
    ) -> Result<Vec<f64>, EngineError> {
        let q = q.into();
        let Some((tasks, compiles, shared, sampled)) = self.compile_batch_tasks(&q, scenarios)?
        else {
            return Ok(Vec::new());
        };
        let shards = Self::shard_count(scenarios.len(), shards);
        let outputs = Self::fan_out(scenarios, &tasks, shards, |base, tids, tasks| {
            Self::walk_chunk_f64(base, tids, tasks)
        });
        Ok(self.merge_shard_outputs(scenarios.len(), shards, compiles, shared, sampled, outputs))
    }

    /// Phases 1a + 1b of every sharded batch: plan all scenarios, then
    /// compile (or fetch) each distinct shape's shared state exactly
    /// once — artifacts for cacheable plans, the memoized CNF lattice
    /// for extensional ones. Returns `None` for an empty batch (after
    /// recording the empty [`BatchPlan`]), otherwise the per-scenario
    /// [`Task`]s plus the compile/share split.
    ///
    /// Planning happens strictly first and is pure, so an unsound
    /// scenario anywhere in the batch fails before *any* state — cache
    /// contents, eviction counters, memo entries — has been touched:
    /// all-or-nothing, observably. Compilation mirrors the cache access
    /// order of a sequential run, so hit/miss/eviction counters come out
    /// identical.
    #[allow(clippy::type_complexity)]
    fn compile_batch_tasks(
        &mut self,
        q: &Query,
        scenarios: &[Tid],
    ) -> Result<Option<(Vec<Task>, usize, usize, usize)>, EngineError> {
        if scenarios.is_empty() {
            self.stats.last_batch = Some(BatchPlan {
                scenarios: 0,
                shards: 0,
                compiles: 0,
                shared: 0,
                sampled: 0,
            });
            return Ok(None);
        }
        let resolved = Arc::new(Self::resolve(q, scenarios[0].database().k())?);

        // Phase 1a: plan every scenario first. The plan depends on the
        // TID only through its shape (vocabulary k and tuple count), so
        // a same-shape run shares one decision.
        let mut plans: Vec<Plan> = Vec::with_capacity(scenarios.len());
        for (i, tid) in scenarios.iter().enumerate() {
            let plan = match plans.last() {
                Some(&p) if i > 0 && tid.database().same_shape(scenarios[i - 1].database()) => p,
                _ => self.plan_resolved(&resolved, tid)?,
            };
            plans.push(plan);
        }

        // Phase 1b: fetch/compile per distinct shape.
        let mut tasks: Vec<Task> = Vec::with_capacity(scenarios.len());
        let mut compiles = 0;
        let mut shared = 0;
        let mut sampled = 0;
        for (i, (tid, &plan)) in scenarios.iter().zip(&plans).enumerate() {
            if matches!(plan, Plan::Sample(_)) {
                sampled += 1;
            }
            if i > 0 && tid.database().same_shape(scenarios[i - 1].database()) {
                let prev = tasks.last().expect("i > 0 ⟹ a previous task exists");
                if prev.artifact.is_some() {
                    shared += 1;
                }
                if prev.plan == Plan::Extensional {
                    self.stats.extensional_memo_hits += 1;
                }
                let task = prev.shared();
                tasks.push(task);
                continue;
            }
            if !plan.is_cacheable() {
                let mut compile_time = Duration::ZERO;
                let sampler = if let Plan::Sample(kind) = plan {
                    let h = resolved.as_h().expect("sampling is H-only");
                    let sampling = self
                        .config
                        .sampling
                        .expect("a Sample plan implies sampling is configured");
                    let started = Instant::now();
                    let built = Arc::new(SamplerArtifact::build(kind, h, tid, sampling));
                    compile_time = started.elapsed();
                    Some(built)
                } else {
                    None
                };
                tasks.push(Task {
                    query: Arc::clone(&resolved),
                    plan,
                    artifact: None,
                    lattice: (plan == Plan::Extensional).then(|| {
                        let phi = resolved.as_h().expect("extensional plans are H-only").phi();
                        self.extensional_lattice(phi)
                    }),
                    sampler,
                    size: None,
                    cache_hit: false,
                    compile_time,
                });
                continue;
            }
            let key = Self::resolved_cache_key(&resolved, tid.database());
            let (artifact, cache_hit, compile_time) = match self.cache.get(&key) {
                Some(artifact) => {
                    shared += 1;
                    (artifact, true, Duration::ZERO)
                }
                None => {
                    let started = Instant::now();
                    let compiled = Self::compile_artifact(plan, &resolved, tid);
                    let compile_time = started.elapsed();
                    let (artifact, evicted) = self.cache.insert(key, compiled);
                    self.stats.cache_evictions += evicted;
                    compiles += 1;
                    (artifact, false, compile_time)
                }
            };
            tasks.push(Task {
                query: Arc::clone(&resolved),
                plan,
                size: Some(artifact.size()),
                artifact: Some(artifact),
                lattice: None,
                sampler: None,
                cache_hit,
                compile_time,
            });
        }
        Ok(Some((tasks, compiles, shared, sampled)))
    }

    /// Phase 2 of a sharded batch: fan contiguous scenario chunks across
    /// `std::thread::scope` workers. Workers only read — `Arc<Artifact>`
    /// walks take `&self`, lattices are shared immutably, and the
    /// non-cacheable backends are pure functions of `(q, tid)` — and
    /// each records into its own [`EngineStats`]: no locks, no shared
    /// mutable state. `shard_count` already fixed how many workers run
    /// (it is what `plan_batch` predicts); deriving the chunk size from
    /// its result reproduces exactly that many chunks
    /// (`s ↦ ceil(n / ceil(n / s))` is idempotent).
    /// Each worker also receives its chunk's *global base index*, so
    /// per-scenario RNG streams (`(seed, base + offset)`) are positions
    /// in the whole batch, not in the chunk — the invariant that makes
    /// sharded sampling bit-identical to sequential at any shard count.
    fn fan_out<T: Send>(
        scenarios: &[Tid],
        tasks: &[Task],
        shards: usize,
        work: impl Fn(usize, &[Tid], &[Task]) -> (Vec<T>, EngineStats) + Sync,
    ) -> Vec<(Vec<T>, EngineStats)> {
        let chunk = scenarios.len().div_ceil(shards);
        let work = &work;
        thread::scope(|scope| {
            let handles: Vec<_> = scenarios
                .chunks(chunk)
                .zip(tasks.chunks(chunk))
                .enumerate()
                .map(|(ci, (tids, tasks))| scope.spawn(move || work(ci * chunk, tids, tasks)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
    }

    /// One f64 shard worker's chunk: consecutive tasks sharing an
    /// artifact (one `Arc`, detected by pointer identity) are walked
    /// through the lane kernel in blocks of up to [`LANES`]; everything
    /// else falls back to the scalar backends. Pure function of its
    /// inputs — statistics come back in the returned [`EngineStats`].
    fn walk_chunk_f64(base: usize, tids: &[Tid], tasks: &[Task]) -> (Vec<f64>, EngineStats) {
        let mut stats = EngineStats::default();
        let mut out = Vec::with_capacity(tids.len());
        let mut probs = ProbMatrix::new();
        let mut scratch = EvalScratch::new();
        let mut start = 0;
        while start < tids.len() {
            let Some(artifact) = &tasks[start].artifact else {
                // Scalar fallback: extensional / brute-force / sampled
                // scenarios (the sampler draws from the stream of the
                // scenario's global batch position).
                let (task, tid) = (&tasks[start], &tids[start]);
                let started = Instant::now();
                let (p, sample_run) = task.eval_fallback_f64(tid, (base + start) as u64);
                out.push(p);
                record_fallback(
                    &mut stats,
                    task.query_stats(Duration::ZERO),
                    started.elapsed(),
                    sample_run,
                );
                start += 1;
                continue;
            };
            // The run of consecutive scenarios sharing this artifact.
            let mut end = start + 1;
            while end < tids.len()
                && tasks[end]
                    .artifact
                    .as_ref()
                    .is_some_and(|a| Arc::ptr_eq(a, artifact))
            {
                end += 1;
            }
            Self::walk_lane_run_f64(
                artifact,
                &tids[start..end],
                &mut probs,
                &mut scratch,
                &mut out,
                &mut stats,
                |offset| tasks[start + offset].query_stats(Duration::ZERO),
            );
            start = end;
        }
        (out, stats)
    }

    /// The lane-kernel inner loop both f64 batch paths share: walks one
    /// same-artifact run of scenarios in blocks of up to [`LANES`],
    /// pushing one probability per scenario and recording one
    /// [`QueryStats`] per scenario (`record_for(offset)` supplies the
    /// skeleton; the block's wall time is apportioned evenly across its
    /// lanes so per-query and aggregate timings keep adding up). The
    /// artifact's support is scanned once per run, so every block
    /// converts probabilities only for tuples the artifact reads.
    #[allow(clippy::too_many_arguments)]
    fn walk_lane_run_f64(
        artifact: &Artifact,
        tids: &[Tid],
        probs: &mut ProbMatrix,
        scratch: &mut EvalScratch,
        out: &mut Vec<f64>,
        stats: &mut EngineStats,
        record_for: impl Fn(usize) -> QueryStats,
    ) {
        let support = artifact.support_vars();
        let vars = tids[0].len();
        for (block_idx, block) in tids.chunks(LANES).enumerate() {
            probs.reset(vars);
            for (lane, tid) in block.iter().enumerate() {
                for &v in &support {
                    probs.set(v, lane, tid.prob_f64(TupleId(v)));
                }
            }
            let started = Instant::now();
            let lanes = artifact.probability_f64_many(probs, scratch);
            let elapsed = started.elapsed();
            stats.lane_kernel_calls += 1;
            let per_lane = elapsed / block.len() as u32;
            for (lane, &p) in lanes.iter().take(block.len()).enumerate() {
                out.push(p);
                let mut record = record_for(block_idx * LANES + lane);
                record.eval_time = per_lane;
                stats.record(record);
            }
        }
    }

    /// Phase 3 of a sharded batch: merge per-shard stats in order and
    /// stitch the results back into input order (chunks are contiguous).
    fn merge_shard_outputs<T>(
        &mut self,
        scenarios: usize,
        shards: usize,
        compiles: usize,
        shared: usize,
        sampled: usize,
        outputs: Vec<(Vec<T>, EngineStats)>,
    ) -> Vec<T> {
        debug_assert_eq!(outputs.len(), shards, "chunking spawned as planned");
        let mut probs = Vec::with_capacity(scenarios);
        for (chunk_probs, chunk_stats) in outputs {
            probs.extend(chunk_probs);
            self.stats.merge(&chunk_stats);
        }
        self.stats.last_batch = Some(BatchPlan {
            scenarios,
            shards,
            compiles,
            shared,
            sampled,
        });
        probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::{max_euler_fn, phi9, BoolFn};
    use intext_tid::{complete_database, uniform_tid, TupleId};

    fn half() -> BigRational {
        BigRational::from_ratio(1, 2)
    }

    #[test]
    fn routes_and_caches_phi9() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        assert_eq!(engine.plan(&q, &tid), Ok(Plan::DdCircuit));
        let p1 = engine.evaluate(&q, &tid).unwrap();
        let p2 = engine.evaluate(&q, &tid).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(engine.cache_len(), 1);
        assert_eq!(engine.stats().cache_misses, 1);
        assert_eq!(engine.stats().cache_hits, 1);
        let last = engine.stats().last.unwrap();
        assert!(last.cache_hit);
        assert_eq!(last.compile_time, Duration::ZERO);
        assert!(last.circuit_size.unwrap() > 0);
    }

    #[test]
    fn reweighting_hits_the_cache_and_changes_the_answer() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let mut tid = uniform_tid(complete_database(3, 1), half());
        let before = engine.evaluate(&q, &tid).unwrap();
        tid.set_prob(TupleId(0), BigRational::from_ratio(1, 97))
            .unwrap();
        let after = engine.evaluate(&q, &tid).unwrap();
        assert_ne!(before, after);
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(engine.cache_len(), 1);
    }

    #[test]
    fn degenerate_queries_take_the_obdd_route() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(BoolFn::var(4, 0)); // h_{3,0}: degenerate
        let tid = uniform_tid(complete_database(3, 2), half());
        assert_eq!(engine.plan(&q, &tid), Ok(Plan::Obdd));
        let p = engine.evaluate(&q, &tid).unwrap();
        let brute = pqe_brute_force(&q, &tid).unwrap();
        assert_eq!(p, brute);
        assert_eq!(engine.stats().obdd_plans, 1);
    }

    #[test]
    fn brute_force_budget_is_validated_at_the_bitmask_boundary() {
        let ok = EngineConfig {
            max_brute_force_tuples: 63,
            ..EngineConfig::default()
        };
        assert!(PqeEngine::try_with_config(ok).is_ok());
        let too_big = EngineConfig {
            max_brute_force_tuples: 64,
            ..EngineConfig::default()
        };
        assert_eq!(
            PqeEngine::try_with_config(too_big).err(),
            Some(ConfigError::BruteForceBudgetTooLarge { requested: 64 })
        );
        let shown = ConfigError::BruteForceBudgetTooLarge { requested: 64 }.to_string();
        assert!(shown.contains("64"), "{shown}");
        assert!(shown.contains("63"), "{shown}");
    }

    #[test]
    #[should_panic(expected = "invalid EngineConfig")]
    fn with_config_panics_on_oversized_budget() {
        let _ = PqeEngine::with_config(EngineConfig {
            max_brute_force_tuples: 64,
            ..EngineConfig::default()
        });
    }

    #[test]
    fn sampling_eps_and_delta_are_validated() {
        for (eps, delta, want) in [
            (0.0, 0.01, Some(ConfigError::InvalidEps { eps: 0.0 })),
            (1.0, 0.01, Some(ConfigError::InvalidEps { eps: 1.0 })),
            (
                f64::NAN,
                0.01,
                Some(ConfigError::InvalidEps { eps: f64::NAN }),
            ),
            (0.1, 0.0, Some(ConfigError::InvalidDelta { delta: 0.0 })),
            (0.1, 1.5, Some(ConfigError::InvalidDelta { delta: 1.5 })),
            (0.1, 0.01, None),
        ] {
            let config = EngineConfig {
                sampling: Some(SamplingConfig {
                    eps,
                    delta,
                    ..SamplingConfig::default()
                }),
                ..EngineConfig::default()
            };
            let got = PqeEngine::try_with_config(config).err();
            // NaN never compares equal; match on the variant instead.
            match want {
                Some(ConfigError::InvalidEps { .. }) => {
                    assert!(matches!(got, Some(ConfigError::InvalidEps { .. })), "{eps}")
                }
                Some(ConfigError::InvalidDelta { .. }) => assert!(
                    matches!(got, Some(ConfigError::InvalidDelta { .. })),
                    "{delta}"
                ),
                _ => assert!(got.is_none(), "{eps}/{delta}"),
            }
        }
    }

    #[test]
    fn hard_queries_beyond_budget_sample_when_enabled() {
        let mut engine = PqeEngine::with_config(EngineConfig {
            max_brute_force_tuples: 4,
            sampling: Some(SamplingConfig {
                eps: 0.1,
                delta: 1e-4,
                ..SamplingConfig::default()
            }),
            ..EngineConfig::default()
        });
        // Monotone hard φ, 12 tuples > budget 4, small grounding:
        // Karp-Luby.
        let q = HQuery::new(BoolFn::from_fn(3, |v| v != 0));
        let tid = uniform_tid(complete_database(2, 2), half());
        assert_eq!(
            engine.plan(&q, &tid),
            Ok(Plan::Sample(SamplerKind::KarpLuby))
        );
        let est = engine.estimate(&q, &tid).unwrap();
        assert_eq!(est.sampler, Some(SamplerKind::KarpLuby));
        assert!(est.samples > 0);
        assert_eq!(engine.stats().sample_plans, 1);
        assert_eq!(engine.stats().samples_drawn, est.samples);
        assert!(engine.stats().sample_nanos > 0);
        // Non-monotone hard φ on the same instance: no DNF, so the
        // naive world sampler takes over.
        let q = HQuery::new(BoolFn::from_sat(3, [0b001, 0b010, 0b000]));
        assert_eq!(
            engine.plan(&q, &tid),
            Ok(Plan::Sample(SamplerKind::NaiveWorlds))
        );
        // evaluate/evaluate_f64 agree with estimate at the same stream.
        let est = engine.estimate(&q, &tid).unwrap();
        let f = engine.evaluate_f64(&q, &tid).unwrap();
        assert_eq!(est.value.to_bits(), f.to_bits());
        let exact = engine.evaluate(&q, &tid).unwrap();
        assert_eq!(exact, BigRational::from_f64(f).unwrap());
    }

    #[test]
    fn estimates_of_tractable_queries_are_exact() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        let est = engine.estimate(&q, &tid).unwrap();
        assert_eq!(est.eps, 0.0);
        assert_eq!(est.delta, 0.0);
        assert_eq!(est.samples, 0);
        assert_eq!(est.sampler, None);
        let exact = pqe_brute_force(&q, &tid).unwrap().to_f64();
        assert!((est.value - exact).abs() < 1e-12);
    }

    #[test]
    fn hard_queries_brute_force_within_budget_and_refuse_beyond() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(max_euler_fn(4));
        let small = uniform_tid(complete_database(3, 1), half());
        assert_eq!(engine.plan(&q, &small), Ok(Plan::BruteForce));
        let p = engine.evaluate(&q, &small).unwrap();
        assert_eq!(p, pqe_brute_force(&q, &small).unwrap());
        let big = uniform_tid(complete_database(3, 4), half());
        assert!(matches!(
            engine.plan(&q, &big),
            Err(EngineError::Intractable { budget: 20, .. })
        ));
        assert!(engine.evaluate(&q, &big).is_err());
    }

    #[test]
    fn prefer_extensional_routes_monotone_safe_queries() {
        let mut engine = PqeEngine::with_config(EngineConfig {
            prefer_extensional: true,
            ..EngineConfig::default()
        });
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        assert_eq!(engine.plan(&q, &tid), Ok(Plan::Extensional));
        let p = engine.evaluate(&q, &tid).unwrap();
        assert_eq!(p, pqe_brute_force(&q, &tid).unwrap());
        // Nothing cacheable was produced.
        assert_eq!(engine.cache_len(), 0);
        assert_eq!(engine.stats().extensional_plans, 1);
    }

    #[test]
    fn vocabulary_mismatch_is_rejected_up_front() {
        let engine = PqeEngine::new();
        let q = HQuery::new(phi9()); // k = 3
        let tid = uniform_tid(complete_database(2, 2), half()); // k = 2
        assert_eq!(
            engine.plan(&q, &tid),
            Err(EngineError::VocabularyMismatch {
                query_k: 3,
                database_k: 2
            })
        );
    }

    #[test]
    fn batch_amortizes_one_compilation_across_scenarios() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let base = uniform_tid(complete_database(3, 1), half());
        let mut scenarios = vec![base.clone(), base.clone(), base];
        scenarios[1]
            .set_prob(TupleId(1), BigRational::from_ratio(1, 5))
            .unwrap();
        scenarios[2]
            .set_prob(TupleId(2), BigRational::from_ratio(4, 5))
            .unwrap();
        let probs = engine.evaluate_batch(&q, &scenarios).unwrap();
        assert_eq!(probs.len(), 3);
        assert_eq!(engine.stats().cache_misses, 1);
        assert_eq!(engine.stats().cache_hits, 2);
        for (p, tid) in probs.iter().zip(&scenarios) {
            assert_eq!(p, &pqe_brute_force(&q, tid).unwrap());
        }
    }

    #[test]
    fn sharded_batch_matches_sequential_and_records_batch_plan() {
        let q = HQuery::new(phi9());
        let base = uniform_tid(complete_database(3, 1), half());
        let scenarios: Vec<_> = (0..7u32)
            .map(|s| {
                let mut tid = base.clone();
                tid.set_prob(TupleId(s % 3), BigRational::from_ratio(1, u64::from(s) + 2))
                    .unwrap();
                tid
            })
            .collect();
        let mut sequential = PqeEngine::new();
        let expected = sequential.evaluate_batch(&q, &scenarios).unwrap();
        for shards in [1, 2, 3, 7, 99] {
            let mut engine = PqeEngine::new();
            let planned = engine.plan_batch(&q, &scenarios, shards).unwrap();
            let probs = engine
                .evaluate_batch_sharded(&q, &scenarios, shards)
                .unwrap();
            assert_eq!(probs, expected, "shards={shards}");
            assert_eq!(engine.stats().cache_misses, 1);
            assert_eq!(engine.stats().cache_hits, 6);
            assert_eq!(engine.stats().queries, 7);
            let batch = engine.stats().last_batch.unwrap();
            assert_eq!(batch, planned, "dry run must predict the execution");
            assert_eq!(batch.scenarios, 7);
            assert_eq!(batch.compiles, 1);
            assert_eq!(batch.shared, 6);
            assert!(batch.shards >= 1 && batch.shards <= 7.min(shards.max(1)));
        }
    }

    #[test]
    fn sharded_batch_handles_empty_and_noncacheable_plans() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        assert_eq!(engine.evaluate_batch_sharded(&q, &[], 4).unwrap(), vec![]);
        assert_eq!(engine.stats().queries, 0);

        // Brute-force plans have no artifact; workers fall back to the
        // pure possible-worlds backend.
        let hard = HQuery::new(max_euler_fn(4));
        let tid = uniform_tid(complete_database(3, 1), half());
        let scenarios = vec![tid.clone(), tid];
        let probs = engine.evaluate_batch_sharded(&hard, &scenarios, 2).unwrap();
        assert_eq!(probs[0], pqe_brute_force(&hard, &scenarios[0]).unwrap());
        assert_eq!(probs, engine.evaluate_batch(&hard, &scenarios).unwrap());
        assert_eq!(engine.cache_len(), 0);
        assert_eq!(engine.stats().last_batch.unwrap().compiles, 0);
    }

    #[test]
    fn sharded_batch_error_touches_no_state() {
        // Scenario 1 is cacheable (φ9 compiles a d-D) and would have
        // compiled — and, under this budget, evicted — before scenario 2
        // fails, if planning were not strictly up-front. Scenario 2 has
        // the wrong vocabulary (k = 2 against a k = 3 query).
        let q = HQuery::new(phi9());
        let good = uniform_tid(complete_database(3, 1), half());
        let mismatched = uniform_tid(complete_database(2, 2), half());
        let mut engine = PqeEngine::with_config(EngineConfig {
            cache_gate_budget: Some(1), // any compile would also evict
            ..EngineConfig::default()
        });
        let err = engine
            .evaluate_batch_sharded(&q, &[good, mismatched], 2)
            .unwrap_err();
        assert!(matches!(err, EngineError::VocabularyMismatch { .. }));
        // All-or-nothing, observably: no compiles, no evictions, no
        // queries, no batch record.
        assert_eq!(engine.stats().queries, 0);
        assert_eq!(engine.stats().cache_misses, 0);
        assert_eq!(engine.stats().cache_evictions, 0);
        assert_eq!(engine.cache_len(), 0);
        assert!(engine.stats().last_batch.is_none());
    }

    #[test]
    fn cache_budget_bounds_gates_and_counts_evictions() {
        let q = HQuery::new(phi9());
        let small = uniform_tid(complete_database(3, 1), half());
        let large = uniform_tid(complete_database(3, 2), half());

        // Learn the two artifact sizes with an unbounded engine.
        let mut probe = PqeEngine::new();
        probe.evaluate(&q, &small).unwrap();
        probe.evaluate(&q, &large).unwrap();
        let total = probe.cache_gates();
        assert_eq!(probe.cache_len(), 2);

        // A budget below the pair forces the LRU (the `small` artifact)
        // out when `large` arrives.
        let mut engine = PqeEngine::with_config(EngineConfig {
            cache_gate_budget: Some(total - 1),
            ..EngineConfig::default()
        });
        engine.evaluate(&q, &small).unwrap();
        engine.evaluate(&q, &large).unwrap();
        assert!(engine.cache_gates() < total, "budget is a hard bound");
        assert_eq!(engine.stats().cache_evictions, 1);
        // Re-touching the evicted shape recompiles: a second miss.
        engine.evaluate(&q, &small).unwrap();
        assert_eq!(engine.stats().cache_misses, 3);

        // Tightening the budget on a live engine evicts immediately.
        engine.set_cache_budget(Some(0));
        assert_eq!(engine.cache_len(), 0);
        assert_eq!(engine.cache_gates(), 0);
        assert!(engine.stats().cache_evictions >= 2);
        assert_eq!(engine.cache_budget(), Some(0));
    }

    #[test]
    fn lane_batched_f64_matches_scalar_loop_bit_for_bit() {
        let q = HQuery::new(phi9());
        let base = uniform_tid(complete_database(3, 2), half());
        let scenarios: Vec<_> = (0..19u32) // ragged: 2 full blocks + 3
            .map(|s| {
                let mut tid = base.clone();
                tid.set_prob(TupleId(s % 5), BigRational::from_ratio(1, u64::from(s) + 2))
                    .unwrap();
                tid
            })
            .collect();
        let mut scalar = PqeEngine::new();
        let expected: Vec<f64> = scenarios
            .iter()
            .map(|tid| scalar.evaluate_f64(&q, tid).unwrap())
            .collect();
        assert_eq!(scalar.stats().lane_kernel_calls, 0, "scalar path");

        let mut lane = PqeEngine::new();
        let got = lane.evaluate_batch_f64(&q, &scenarios).unwrap();
        assert_eq!(got, expected, "lane lanes must be bit-identical");
        // One compile, 18 shared walks — and ceil(19 / LANES) kernel calls.
        assert_eq!(lane.stats().cache_misses, 1);
        assert_eq!(lane.stats().cache_hits, 18);
        assert_eq!(lane.stats().queries, 19);
        assert_eq!(lane.stats().lane_kernel_calls, 19u64.div_ceil(LANES as u64));
        // The timing split is populated: compiling happened once, every
        // scenario was a circuit walk.
        assert!(lane.stats().compile_nanos() > 0);
        assert!(lane.stats().walk_nanos > 0);

        // The sharded variant agrees bit-for-bit and counter-for-counter.
        let mut sharded = PqeEngine::new();
        let got = sharded
            .evaluate_batch_sharded_f64(&q, &scenarios, 3)
            .unwrap();
        assert_eq!(got, expected);
        assert_eq!(sharded.stats().cache_misses, 1);
        assert_eq!(sharded.stats().cache_hits, 18);
        assert!(
            sharded.stats().lane_kernel_calls >= 3,
            "one per chunk at least"
        );
    }

    #[test]
    fn lane_batched_f64_handles_obdd_artifacts_and_mixed_plans() {
        // Degenerate query → OBDD artifact through the same kernel.
        let deg = HQuery::new(BoolFn::var(4, 0));
        let base = uniform_tid(complete_database(3, 2), half());
        let scenarios: Vec<_> = (0..11u32)
            .map(|s| {
                let mut tid = base.clone();
                tid.set_prob(TupleId(s), BigRational::from_ratio(2, u64::from(s) + 3))
                    .unwrap();
                tid
            })
            .collect();
        let mut scalar = PqeEngine::new();
        let expected: Vec<f64> = scenarios
            .iter()
            .map(|tid| scalar.evaluate_f64(&deg, tid).unwrap())
            .collect();
        let mut lane = PqeEngine::new();
        assert_eq!(lane.evaluate_batch_f64(&deg, &scenarios).unwrap(), expected);
        assert_eq!(lane.stats().obdd_plans, 11);
        assert_eq!(lane.stats().lane_kernel_calls, 2);

        // Brute-force scenarios flow through the scalar fallback,
        // bit-identical to the loop, with zero kernel calls.
        let hard = HQuery::new(max_euler_fn(4));
        let small = uniform_tid(complete_database(3, 1), half());
        let hard_scenarios = vec![small.clone(), small];
        let mut loop_engine = PqeEngine::new();
        let expected: Vec<f64> = hard_scenarios
            .iter()
            .map(|tid| loop_engine.evaluate_f64(&hard, tid).unwrap())
            .collect();
        let mut batch = PqeEngine::new();
        assert_eq!(
            batch.evaluate_batch_f64(&hard, &hard_scenarios).unwrap(),
            expected
        );
        assert_eq!(batch.stats().lane_kernel_calls, 0);
        assert_eq!(batch.stats().brute_force_plans, 2);
    }

    #[test]
    fn extensional_lattice_memo_counts_hits_across_all_paths() {
        let mut engine = PqeEngine::with_config(EngineConfig {
            prefer_extensional: true,
            ..EngineConfig::default()
        });
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());

        // First evaluation builds the lattice; the second reuses it.
        let p1 = engine.evaluate(&q, &tid).unwrap();
        assert_eq!(engine.stats().extensional_memo_hits, 0);
        assert_eq!(engine.lattice_memo_len(), 1);
        let p2 = engine.evaluate(&q, &tid).unwrap();
        assert_eq!(p1, p2, "memoized lattice must not change the answer");
        assert_eq!(engine.stats().extensional_memo_hits, 1);

        // Batches count one hit per reuse, exactly like the loop would.
        let scenarios = vec![tid.clone(), tid.clone(), tid.clone()];
        engine.evaluate_batch(&q, &scenarios).unwrap();
        assert_eq!(engine.stats().extensional_memo_hits, 4);
        engine.evaluate_batch_sharded(&q, &scenarios, 2).unwrap();
        assert_eq!(engine.stats().extensional_memo_hits, 7);
        engine.evaluate_batch_f64(&q, &scenarios).unwrap();
        assert_eq!(engine.stats().extensional_memo_hits, 10);
        assert_eq!(engine.lattice_memo_len(), 1, "one φ, one lattice");

        // The memo answers match brute force (the lattice is per-φ).
        let brute = pqe_brute_force(&q, &tid).unwrap();
        assert_eq!(p1, brute);

        // clear_cache drops the memo too; the next call rebuilds.
        engine.clear_cache();
        assert_eq!(engine.lattice_memo_len(), 0);
        let hits = engine.stats().extensional_memo_hits;
        engine.evaluate(&q, &tid).unwrap();
        assert_eq!(engine.stats().extensional_memo_hits, hits);
        assert_eq!(engine.lattice_memo_len(), 1);
    }

    #[test]
    fn explain_reports_cache_transitions() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        assert!(!engine.explain(&q, &tid).cached);
        engine.evaluate(&q, &tid).unwrap();
        let ex = engine.explain(&q, &tid);
        assert!(ex.cached);
        assert_eq!(ex.plan, Ok(Plan::DdCircuit));
        assert_eq!(ex.region, Region::ZeroEulerDD);
    }

    #[test]
    fn live_updates_patch_cached_artifacts() {
        let mut engine = PqeEngine::new();
        let dd_q = HQuery::new(phi9());
        let deg_q = HQuery::new(BoolFn::var(4, 0));
        let mut tid = uniform_tid(complete_database(3, 2), half());
        engine.evaluate(&dd_q, &tid).unwrap();
        engine.evaluate(&deg_q, &tid).unwrap();
        assert_eq!(engine.stats().cache_misses, 2);

        // Remove R(0): both cached artifacts (d-D and OBDD) patch in
        // place and stay resident under the post-update key.
        let (desc, p) = engine.remove_tuple(&mut tid, TupleId(0)).unwrap();
        assert_eq!(desc, TupleDesc::R(0));
        assert_eq!(engine.stats().patches_applied, 2);
        assert_eq!(engine.stats().full_recompiles_avoided, 2);
        assert_eq!(engine.cache_len(), 2);
        for q in [&dd_q, &deg_q] {
            assert!(engine.explain(q, &tid).cached, "patched ⟹ still cached");
            let got = engine.evaluate(q, &tid).unwrap();
            assert_eq!(got, pqe_brute_force(q, &tid).unwrap());
        }
        assert_eq!(engine.stats().cache_misses, 2, "zero recompiles");
        assert_eq!(engine.stats().cache_hits, 2);

        // Insert it back (it takes the next dense id, a *new* shape):
        // patched again, and the patched artifact is byte-identical to a
        // fresh compile of the same shape.
        engine.insert_tuple(&mut tid, desc, p).unwrap();
        assert_eq!(engine.stats().patches_applied, 4);
        let exported = engine.export_artifact(&dd_q, tid.database()).unwrap();
        let mut fresh = PqeEngine::new();
        fresh.evaluate(&dd_q, &tid).unwrap();
        assert_eq!(
            fresh.export_artifact(&dd_q, tid.database()).unwrap(),
            exported,
            "patch ≡ fresh compile, byte for byte"
        );

        // Probability-only change: no structural work at all, but every
        // same-shape artifact counts as a recompile avoided.
        engine
            .set_probability(&mut tid, TupleId(0), BigRational::from_ratio(1, 3))
            .unwrap();
        assert_eq!(engine.stats().patches_applied, 4, "no patches");
        assert_eq!(engine.stats().full_recompiles_avoided, 6);

        // A failed update leaves TID, cache and counters untouched.
        let len = tid.len();
        assert!(engine
            .insert_tuple(&mut tid, TupleDesc::R(99), half())
            .is_err());
        assert_eq!(tid.len(), len);
        assert_eq!(engine.stats().patches_applied, 4);
    }

    #[test]
    fn deltas_ship_updates_between_engines() {
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 2), half());
        let mut source = PqeEngine::new();
        source.evaluate(&q, &tid).unwrap();
        // A replica that compiled its own copy (patchable trace intact).
        let mut warm = PqeEngine::new();
        warm.evaluate(&q, &tid).unwrap();

        // Export BEFORE the local update — the delta names the shape the
        // replicas still hold.
        let update = TupleUpdate::Remove { id: 0 };
        let delta = source.export_delta(&q, tid.database(), &update).unwrap();
        let mut src_tid = tid.clone();
        source.remove_tuple(&mut src_tid, TupleId(0)).unwrap();
        assert_eq!(source.stats().patches_applied, 1);
        assert_eq!(
            source
                .export_delta(&q, tid.database(), &update)
                .unwrap_err(),
            StoreError::NotCached,
            "post-update the pre-update artifact is gone: export first"
        );

        // Warm replica: applies by incremental patch.
        let report = warm.apply_delta(&delta).unwrap();
        assert_eq!(report.artifacts, 1);
        assert!(report.gates > 0);
        assert_eq!(warm.stats().patches_applied, 1);

        // Cold replica: no resident artifact, falls back to a compile.
        let mut cold = PqeEngine::new();
        cold.apply_delta(&delta).unwrap();
        assert_eq!(cold.stats().patches_applied, 0);
        assert_eq!(cold.cache_len(), 1);

        // All three engines now hold byte-identical post-update artifacts.
        let bytes = source.export_artifact(&q, src_tid.database()).unwrap();
        assert_eq!(warm.export_artifact(&q, src_tid.database()).unwrap(), bytes);
        assert_eq!(cold.export_artifact(&q, src_tid.database()).unwrap(), bytes);

        // Deltas cannot be exported for uncached artifacts, and an
        // operation illegal on the shape is rejected before any state
        // changes.
        assert_eq!(
            PqeEngine::new()
                .export_delta(&q, tid.database(), &update)
                .unwrap_err(),
            StoreError::NotCached
        );
        let mut other = PqeEngine::new();
        other.evaluate(&q, &tid).unwrap();
        let bad = other
            .export_delta(&q, tid.database(), &TupleUpdate::Remove { id: 99 })
            .unwrap();
        assert!(matches!(
            other.apply_delta(&bad).unwrap_err(),
            StoreError::BadTuple(_)
        ));
        assert_eq!(other.stats().patches_applied, 0);
        assert_eq!(other.cache_len(), 1, "failed delta touched nothing");
    }

    #[test]
    fn clear_cache_and_reset_stats() {
        let mut engine = PqeEngine::new();
        let q = HQuery::new(phi9());
        let tid = uniform_tid(complete_database(3, 1), half());
        engine.evaluate(&q, &tid).unwrap();
        assert_eq!(engine.cache_len(), 1);
        engine.clear_cache();
        assert_eq!(engine.cache_len(), 0);
        engine.reset_stats();
        assert_eq!(engine.stats().queries, 0);
        // Post-clear evaluation recompiles.
        engine.evaluate(&q, &tid).unwrap();
        assert_eq!(engine.stats().cache_misses, 1);
    }

    // ——— the UCQ front door: parsed general queries ———

    use intext_query::ucq_brute_force;
    use intext_tid::{Database, TupleDesc, Vocabulary};

    /// A k = 1 instance with one S1 slot left open so live-update tests
    /// can insert into it.
    fn k1_tid() -> Tid {
        let mut db = Database::new(1, 2);
        for d in [
            TupleDesc::R(0),
            TupleDesc::R(1),
            TupleDesc::S(1, 0, 0),
            TupleDesc::S(1, 0, 1),
            TupleDesc::S(1, 1, 0),
            TupleDesc::T(0),
            TupleDesc::T(1),
        ] {
            db.insert(d).unwrap();
        }
        uniform_tid(db, half())
    }

    #[test]
    fn safe_parsed_queries_take_the_lifted_route() {
        let mut engine = PqeEngine::new();
        let q = Query::parse("S1(0,y),T(y)", &Vocabulary::h(1)).unwrap();
        let tid = k1_tid();
        assert_eq!(engine.plan(&q, &tid), Ok(Plan::Lifted));
        let ex = engine.explain(&q, &tid);
        assert_eq!(ex.region, Region::SafeLifted);
        assert!(!ex.cached);
        let p = engine.evaluate(&q, &tid).unwrap();
        let (expr, _) = q.general().unwrap();
        assert_eq!(p, ucq_brute_force(expr, &tid).unwrap());
        // Lifted plans produce no artifact and touch no cache.
        assert_eq!(engine.cache_len(), 0);
        assert_eq!(engine.stats().lifted_plans, 1);
        assert_eq!(engine.stats().queries, 1);
    }

    #[test]
    fn recognized_h_text_shares_the_h_cache() {
        let mut engine = PqeEngine::new();
        let h = HQuery::new(BoolFn::var(2, 0)); // φ = x₀, i.e. Q = h_{1,0}
        let tid = k1_tid();
        let p1 = engine.evaluate(&h, &tid).unwrap();
        // The same query arriving as text is recognized as H-shaped and
        // served by the artifact the native HQuery already compiled.
        let parsed = Query::parse("R(x), S1(x,y)", &Vocabulary::h(1)).unwrap();
        assert_eq!(engine.plan(&parsed, &tid), Ok(Plan::Obdd));
        let p2 = engine.evaluate(&parsed, &tid).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(engine.cache_len(), 1);
        assert_eq!(engine.stats().cache_misses, 1);
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn unsafe_queries_ground_cache_and_match_brute_force() {
        let mut engine = PqeEngine::new();
        // The canonical unsafe CQ: R(x), S1(x,y), T(y) with shared
        // variables across all three atoms.
        let q = Query::parse("R(x),S1(x,y),T(y)", &Vocabulary::h(1)).unwrap();
        let tid = k1_tid();
        assert_eq!(engine.plan(&q, &tid), Ok(Plan::GroundCircuit));
        assert_eq!(engine.explain(&q, &tid).region, Region::GroundCircuit);
        let p1 = engine.evaluate(&q, &tid).unwrap();
        let (expr, _) = q.general().unwrap();
        assert_eq!(p1, ucq_brute_force(expr, &tid).unwrap());
        // The grounded circuit is cached: the second evaluation is a
        // pure re-walk, observable via explain and the hit counters.
        let p2 = engine.evaluate(&q, &tid).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(engine.stats().cache_misses, 1);
        assert_eq!(engine.stats().cache_hits, 1);
        assert!(engine.explain(&q, &tid).cached);
        assert_eq!(engine.stats().ground_plans, 2);
    }

    #[test]
    fn ground_circuits_rewalk_under_reweighting() {
        let mut engine = PqeEngine::new();
        let q = Query::parse("R(x),S1(x,y),T(y)", &Vocabulary::h(1)).unwrap();
        let mut tid = k1_tid();
        let before = engine.evaluate(&q, &tid).unwrap();
        engine
            .set_probability(&mut tid, TupleId(0), BigRational::from_ratio(1, 97))
            .unwrap();
        let after = engine.evaluate(&q, &tid).unwrap();
        assert_ne!(before, after);
        let (expr, _) = q.general().unwrap();
        assert_eq!(after, ucq_brute_force(expr, &tid).unwrap());
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(engine.cache_len(), 1);
    }

    #[test]
    fn grounding_budget_is_enforced() {
        let config = EngineConfig::builder()
            .max_ground_tuples(4)
            .build()
            .unwrap();
        let mut engine = PqeEngine::with_config(config);
        let q = Query::parse("R(x),S1(x,y),T(y)", &Vocabulary::h(1)).unwrap();
        let tid = k1_tid(); // 7 tuples > budget 4
        let expected = EngineError::GroundingTooLarge {
            tuples: 7,
            budget: 4,
        };
        assert_eq!(engine.plan(&q, &tid), Err(expected));
        assert_eq!(engine.evaluate(&q, &tid), Err(expected));
        assert_eq!(engine.stats().queries, 0);
        let shown = expected.to_string();
        assert!(shown.contains('7') && shown.contains('4'), "{shown}");
    }

    #[test]
    fn general_queries_reject_short_vocabularies() {
        let mut engine = PqeEngine::new();
        let q = Query::parse("S2(x,y)", &Vocabulary::h(2)).unwrap();
        let tid = k1_tid(); // k = 1 cannot host an S2 atom
        let expected = EngineError::VocabularyMismatch {
            query_k: 2,
            database_k: 1,
        };
        assert_eq!(engine.plan(&q, &tid), Err(expected));
        assert_eq!(engine.evaluate(&q, &tid), Err(expected));
        // explain still places the query: S2(x,y) alone is safe.
        let ex = engine.explain(&q, &tid);
        assert_eq!(ex.plan, Err(expected));
        assert_eq!(ex.region, Region::SafeLifted);
    }

    #[test]
    fn ground_artifacts_are_not_persisted_or_patched() {
        let mut engine = PqeEngine::new();
        let ground = Query::parse("R(x),S1(x,y),T(y)", &Vocabulary::h(1)).unwrap();
        let h = HQuery::new(BoolFn::var(2, 0));
        let mut tid = k1_tid();
        engine.evaluate(&ground, &tid).unwrap();
        engine.evaluate(&h, &tid).unwrap();
        assert_eq!(engine.cache_len(), 2);
        // Persistence: the bundle carries only the φ-addressed artifact.
        let mut warm = PqeEngine::new();
        let report = warm.load_cache(&engine.save_cache()).unwrap();
        assert_eq!(report.artifacts, 1);
        // Live updates: the H artifact patches across the insert; the
        // ground circuit is skipped (stale shape, never wrong) and
        // recompiles on next use.
        engine
            .insert_tuple(&mut tid, TupleDesc::S(1, 1, 1), half())
            .unwrap();
        assert_eq!(engine.stats().patches_applied, 1);
        let miss_before = engine.stats().cache_misses;
        let p = engine.evaluate(&ground, &tid).unwrap();
        assert_eq!(engine.stats().cache_misses, miss_before + 1);
        let (expr, _) = ground.general().unwrap();
        assert_eq!(p, ucq_brute_force(expr, &tid).unwrap());
    }

    #[test]
    fn builder_round_trips_every_knob_and_validates() {
        let cfg = EngineConfig::builder()
            .max_brute_force_tuples(12)
            .prefer_extensional(true)
            .cache_gate_budget(Some(1000))
            .max_ground_tuples(10)
            .build()
            .unwrap();
        assert_eq!(cfg.max_brute_force_tuples, 12);
        assert!(cfg.prefer_extensional);
        assert_eq!(cfg.cache_gate_budget, Some(1000));
        assert_eq!(cfg.max_ground_tuples, 10);
        let bad = EngineConfig::builder()
            .sampling(SamplingConfig {
                eps: 0.0,
                ..SamplingConfig::default()
            })
            .build();
        assert_eq!(bad.unwrap_err(), ConfigError::InvalidEps { eps: 0.0 });
    }

    #[test]
    fn parsed_queries_flow_through_prepare_and_batches() {
        let mut engine = PqeEngine::new();
        let q = Query::parse("R(x),S1(x,y),T(y)", &Vocabulary::h(1)).unwrap();
        let tid = k1_tid();
        let expected = engine.evaluate(&q, &tid).unwrap();
        // prepare / prepare_shared serve the cached ground circuit.
        let mut stats = EngineStats::default();
        let prepared = engine.prepare(&q, &tid).unwrap();
        assert_eq!(prepared.plan(), Plan::GroundCircuit);
        assert!(prepared.cache_hit());
        assert_eq!(prepared.eval_exact(&tid, 0, &mut stats), expected);
        let shared = engine.prepare_shared(&q, &tid).unwrap().unwrap();
        assert_eq!(shared.eval_exact(&tid, 0, &mut stats), expected);
        // Batches: sequential, lane-batched f64, and sharded agree.
        let tids = vec![tid.clone(), tid.clone(), tid.clone()];
        let batch = engine.evaluate_batch(&q, &tids).unwrap();
        assert!(batch.iter().all(|p| *p == expected));
        let plan = engine.plan_batch(&q, &tids, 2).unwrap();
        assert_eq!(plan.compiles, 0);
        assert_eq!(plan.shared, 3);
        let sharded = engine.evaluate_batch_sharded(&q, &tids, 2).unwrap();
        assert_eq!(sharded, batch);
        let f64s = engine.evaluate_batch_f64(&q, &tids).unwrap();
        let sharded_f64 = engine.evaluate_batch_sharded_f64(&q, &tids, 2).unwrap();
        assert_eq!(f64s, sharded_f64);
    }

    #[test]
    fn lifted_plans_flow_through_batches_and_prepare() {
        let mut engine = PqeEngine::new();
        let q = Query::parse("S1(0,y),T(y)", &Vocabulary::h(1)).unwrap();
        let tid = k1_tid();
        let expected = engine.evaluate(&q, &tid).unwrap();
        // A lifted plan needs no shared state: prepare_shared completes
        // on a read-only probe.
        let mut stats = EngineStats::default();
        let shared = engine
            .prepare_shared(&q, &tid)
            .unwrap()
            .expect("lifted plans need no shared state");
        assert_eq!(shared.plan(), Plan::Lifted);
        assert_eq!(shared.eval_exact(&tid, 0, &mut stats), expected);
        let tids = vec![tid.clone(), tid.clone()];
        let batch = engine.evaluate_batch(&q, &tids).unwrap();
        assert!(batch.iter().all(|p| *p == expected));
        let sharded = engine.evaluate_batch_sharded(&q, &tids, 2).unwrap();
        assert_eq!(sharded, batch);
        let f64s = engine.evaluate_batch_f64(&q, &tids).unwrap();
        let sharded_f64 = engine.evaluate_batch_sharded_f64(&q, &tids, 2).unwrap();
        assert_eq!(f64s, sharded_f64);
        assert_eq!(engine.cache_len(), 0);
    }
}
