//! Reduced ordered binary decision diagrams (OBDDs).
//!
//! The classical formalism of Bryant (1986), used by the paper through
//! Proposition 3.7: degenerate `H`-queries have lineage OBDDs computable
//! in polynomial time. An OBDD is in particular a d-D — each decision
//! node is the deterministic disjunction `(x ∧ hi) ∨ (¬x ∧ lo)` with
//! decomposable conjunctions — so probability computation is linear and
//! [`ObddManager::to_circuit`] embeds OBDDs into the circuit world.

use std::collections::HashMap;

use intext_numeric::{BigRational, BigUint};

use crate::eval::{EvalScratch, ProbMatrix, LANES};
use crate::{Circuit, GateId};

/// Reference to an OBDD node or terminal: `0` = false, `1` = true,
/// otherwise index + 2 into the manager's arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeRef(u32);

impl NodeRef {
    /// The constant-false terminal.
    pub const FALSE: NodeRef = NodeRef(0);
    /// The constant-true terminal.
    pub const TRUE: NodeRef = NodeRef(1);

    /// Is this a terminal?
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }

    /// The stable `u32` encoding of this reference: `0` = false, `1` =
    /// true, `i + 2` = arena node `i`. This is the on-disk encoding used
    /// by artifact serialization.
    pub fn to_raw(self) -> u32 {
        self.0
    }

    /// Inverse of [`to_raw`](Self::to_raw). The result is only
    /// meaningful against the manager whose arena the raw value indexes;
    /// [`ObddManager::from_parts`] is the validating path deserializers
    /// go through, so an out-of-range raw never reaches a walk.
    pub fn from_raw(raw: u32) -> NodeRef {
        NodeRef(raw)
    }

    fn index(self) -> usize {
        debug_assert!(!self.is_terminal());
        (self.0 - 2) as usize
    }

    fn from_index(i: usize) -> NodeRef {
        NodeRef(u32::try_from(i + 2).expect("node count fits u32"))
    }
}

#[derive(Clone, Copy, Debug)]
struct Node {
    level: u32,
    lo: NodeRef,
    hi: NodeRef,
}

const TERMINAL_LEVEL: u32 = u32::MAX;

/// Why a serialized OBDD arena was rejected by
/// [`ObddManager::from_parts`]. Every variant names the offending node
/// (or variable), so store-level errors can point at the exact byte
/// range that lied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObddError {
    /// A variable appears twice in the order.
    DuplicateVariable(u32),
    /// More nodes than [`NodeRef`]'s `u32` encoding can address.
    TooManyNodes(usize),
    /// A node's level is not a position of the variable order.
    LevelOutOfRange {
        /// Arena index of the node.
        node: u32,
        /// The out-of-range level.
        level: u32,
    },
    /// A child reference points at a terminal-adjacent index that does
    /// not exist yet — i.e. at this node or a later one, so the arena is
    /// not topologically ordered (or the index is simply dangling).
    DanglingChild {
        /// Arena index of the node.
        node: u32,
        /// The raw child reference.
        child: u32,
    },
    /// A child lives at a level not strictly below the node's level,
    /// violating the variable order.
    OrderViolation {
        /// Arena index of the node.
        node: u32,
    },
    /// `lo == hi`: the node is redundant, which a *reduced* OBDD never
    /// stores (`mk` collapses it).
    RedundantNode {
        /// Arena index of the node.
        node: u32,
    },
    /// Two nodes share `(level, lo, hi)`, violating canonical uniqueness.
    DuplicateNode {
        /// Arena index of the second occurrence.
        node: u32,
    },
}

impl std::fmt::Display for ObddError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObddError::DuplicateVariable(v) => {
                write!(f, "variable {v} appears twice in the order")
            }
            ObddError::TooManyNodes(n) => write!(f, "{n} nodes exceed the u32 encoding"),
            ObddError::LevelOutOfRange { node, level } => {
                write!(f, "node {node} has level {level} outside the order")
            }
            ObddError::DanglingChild { node, child } => {
                write!(f, "node {node} references nonexistent/later node {child}")
            }
            ObddError::OrderViolation { node } => {
                write!(f, "node {node} has a child at or above its own level")
            }
            ObddError::RedundantNode { node } => {
                write!(f, "node {node} has lo == hi (not reduced)")
            }
            ObddError::DuplicateNode { node } => {
                write!(f, "node {node} duplicates an earlier (level, lo, hi)")
            }
        }
    }
}

impl std::error::Error for ObddError {}

/// Shared manager for reduced OBDDs over a fixed variable order.
///
/// All functions built through one manager share the node arena and the
/// unique table, so structural equality of [`NodeRef`]s is semantic
/// equivalence (canonicity of reduced OBDDs).
///
/// **Concurrency contract** (mirrors [`Circuit`](crate::Circuit), and is
/// what lets the engine share compiled lineages across shard workers):
/// node construction (`mk`, `apply`, …) takes `&mut self`, but every walk
/// — [`size`](Self::size), [`probability_f64`](Self::probability_f64),
/// [`probability_exact`](Self::probability_exact), evaluation — takes
/// `&self` with stack-local scratch and no memo writes back into the
/// manager, so a finished OBDD behind an `Arc` is freely walkable from
/// many threads. Pinned by a compile-time `Send + Sync` test.
#[derive(Debug)]
pub struct ObddManager {
    order: Vec<u32>,
    level_of: HashMap<u32, u32>,
    nodes: Vec<Node>,
    unique: HashMap<(u32, NodeRef, NodeRef), NodeRef>,
}

impl ObddManager {
    /// Creates a manager for the given variable order (level 0 is tested
    /// first / closest to the root).
    ///
    /// # Panics
    /// Panics if the order repeats a variable.
    pub fn new(order: Vec<u32>) -> Self {
        let mut level_of = HashMap::with_capacity(order.len());
        for (l, &v) in order.iter().enumerate() {
            let prev = level_of.insert(v, l as u32);
            assert!(prev.is_none(), "variable {v} appears twice in the order");
        }
        ObddManager {
            order,
            level_of,
            nodes: Vec::new(),
            unique: HashMap::new(),
        }
    }

    /// The variable order.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// The level of a variable in the order.
    pub fn level_of(&self, var: u32) -> Option<u32> {
        self.level_of.get(&var).copied()
    }

    /// Total nodes allocated in the arena (all functions together).
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    /// The arena as `(level, lo, hi)` triples in index order — the
    /// stable encoding serializers write. Children always precede their
    /// parents (`mk` appends), so replaying the triples through
    /// [`from_parts`](Self::from_parts) reproduces the arena exactly:
    /// same indices, same [`NodeRef`]s, bit-identical walks.
    pub fn node_entries(&self) -> impl Iterator<Item = (u32, NodeRef, NodeRef)> + '_ {
        self.nodes.iter().map(|n| (n.level, n.lo, n.hi))
    }

    /// Rebuilds a manager from a variable order and an arena of
    /// `(level, lo, hi)` triples, as produced by
    /// [`node_entries`](Self::node_entries).
    ///
    /// This is the **total** deserialization path: instead of the
    /// panicking invariants `mk` enforces on trusted in-process callers,
    /// every violation a hostile or corrupted byte stream could smuggle
    /// in — duplicate order variables, dangling or forward child
    /// references, order violations, unreduced or duplicate nodes —
    /// comes back as a typed [`ObddError`]. A successful return is
    /// therefore a genuine reduced OBDD arena: canonical, topologically
    /// ordered, and safe for every `&self` walk.
    pub fn from_parts(
        order: Vec<u32>,
        entries: &[(u32, NodeRef, NodeRef)],
    ) -> Result<ObddManager, ObddError> {
        let mut level_of = HashMap::with_capacity(order.len());
        for (l, &v) in order.iter().enumerate() {
            if level_of.insert(v, l as u32).is_some() {
                return Err(ObddError::DuplicateVariable(v));
            }
        }
        if u32::try_from(entries.len())
            .ok()
            .and_then(|n| n.checked_add(2))
            .is_none()
        {
            return Err(ObddError::TooManyNodes(entries.len()));
        }
        let mut nodes: Vec<Node> = Vec::with_capacity(entries.len());
        let mut unique = HashMap::with_capacity(entries.len());
        for (i, &(level, lo, hi)) in entries.iter().enumerate() {
            let node = i as u32;
            if level as usize >= order.len() {
                return Err(ObddError::LevelOutOfRange { node, level });
            }
            for child in [lo, hi] {
                // Strictly earlier in the arena (or a terminal): rules
                // out dangling indices and non-topological order at once.
                if !child.is_terminal() && child.index() >= i {
                    return Err(ObddError::DanglingChild {
                        node,
                        child: child.to_raw(),
                    });
                }
                let child_level = if child.is_terminal() {
                    TERMINAL_LEVEL
                } else {
                    nodes[child.index()].level
                };
                if child_level <= level {
                    return Err(ObddError::OrderViolation { node });
                }
            }
            if lo == hi {
                return Err(ObddError::RedundantNode { node });
            }
            if unique
                .insert((level, lo, hi), NodeRef::from_index(i))
                .is_some()
            {
                return Err(ObddError::DuplicateNode { node });
            }
            nodes.push(Node { level, lo, hi });
        }
        Ok(ObddManager {
            order,
            level_of,
            nodes,
            unique,
        })
    }

    fn level(&self, r: NodeRef) -> u32 {
        if r.is_terminal() {
            TERMINAL_LEVEL
        } else {
            self.nodes[r.index()].level
        }
    }

    /// `(level, lo, hi)` of a decision node (not a terminal).
    pub(crate) fn node_parts(&self, r: NodeRef) -> (u32, NodeRef, NodeRef) {
        let n = self.nodes[r.index()];
        (n.level, n.lo, n.hi)
    }

    /// The level of a reference, with terminals resolving to one past the
    /// last variable level (useful for skipped-variable spans).
    pub(crate) fn resolve_level(&self, r: NodeRef) -> u32 {
        if r.is_terminal() {
            self.order.len() as u32
        } else {
            self.nodes[r.index()].level
        }
    }

    /// The unique reduced node `(level, lo, hi)`; the workhorse shared by
    /// all construction paths (including the lineage unroller in
    /// `intext-lineage`).
    ///
    /// # Panics
    /// Panics if children live at levels `<= level` (order violation).
    pub fn mk(&mut self, level: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        assert!(
            self.level(lo) > level && self.level(hi) > level,
            "children must be strictly below level {level}"
        );
        if lo == hi {
            return lo;
        }
        if let Some(&r) = self.unique.get(&(level, lo, hi)) {
            return r;
        }
        let r = NodeRef::from_index(self.nodes.len());
        self.nodes.push(Node { level, lo, hi });
        self.unique.insert((level, lo, hi), r);
        r
    }

    /// The literal `var` (or its negation).
    ///
    /// # Panics
    /// Panics if `var` is not in the order.
    pub fn literal(&mut self, var: u32, positive: bool) -> NodeRef {
        let level = self
            .level_of(var)
            .unwrap_or_else(|| panic!("variable {var} not in order"));
        if positive {
            self.mk(level, NodeRef::FALSE, NodeRef::TRUE)
        } else {
            self.mk(level, NodeRef::TRUE, NodeRef::FALSE)
        }
    }

    fn cofactors(&self, r: NodeRef, level: u32) -> (NodeRef, NodeRef) {
        if self.level(r) == level {
            let n = self.nodes[r.index()];
            (n.lo, n.hi)
        } else {
            (r, r)
        }
    }

    fn apply(
        &mut self,
        a: NodeRef,
        b: NodeRef,
        op: fn(bool, bool) -> bool,
        memo: &mut HashMap<(NodeRef, NodeRef), NodeRef>,
    ) -> NodeRef {
        if a.is_terminal() && b.is_terminal() {
            return if op(a == NodeRef::TRUE, b == NodeRef::TRUE) {
                NodeRef::TRUE
            } else {
                NodeRef::FALSE
            };
        }
        if let Some(&r) = memo.get(&(a, b)) {
            return r;
        }
        let level = self.level(a).min(self.level(b));
        let (alo, ahi) = self.cofactors(a, level);
        let (blo, bhi) = self.cofactors(b, level);
        let lo = self.apply(alo, blo, op, memo);
        let hi = self.apply(ahi, bhi, op, memo);
        let r = self.mk(level, lo, hi);
        memo.insert((a, b), r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        self.apply(a, b, |x, y| x && y, &mut HashMap::new())
    }

    /// Disjunction.
    pub fn or(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        self.apply(a, b, |x, y| x || y, &mut HashMap::new())
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        self.apply(a, b, |x, y| x ^ y, &mut HashMap::new())
    }

    /// Generalized multi-way apply: combines `inputs` under an arbitrary
    /// Boolean combinator `f` (evaluated on the co-factored terminal
    /// values). The classical product construction — worst case the
    /// product of the input sizes, hence best reserved for constantly
    /// many inputs (it is the textbook route to Proposition 3.7, kept as
    /// an ablation baseline for the automaton unrolling).
    pub fn combine_many(&mut self, inputs: &[NodeRef], f: &impl Fn(&[bool]) -> bool) -> NodeRef {
        let mut memo: HashMap<Vec<NodeRef>, NodeRef> = HashMap::new();
        self.combine_rec(inputs, f, &mut memo)
    }

    fn combine_rec(
        &mut self,
        inputs: &[NodeRef],
        f: &impl Fn(&[bool]) -> bool,
        memo: &mut HashMap<Vec<NodeRef>, NodeRef>,
    ) -> NodeRef {
        if inputs.iter().all(|r| r.is_terminal()) {
            let values: Vec<bool> = inputs.iter().map(|&r| r == NodeRef::TRUE).collect();
            return if f(&values) {
                NodeRef::TRUE
            } else {
                NodeRef::FALSE
            };
        }
        if let Some(&r) = memo.get(inputs) {
            return r;
        }
        let level = inputs
            .iter()
            .map(|&r| self.level(r))
            .min()
            .expect("nonempty");
        let lo: Vec<NodeRef> = inputs.iter().map(|&r| self.cofactors(r, level).0).collect();
        let hi: Vec<NodeRef> = inputs.iter().map(|&r| self.cofactors(r, level).1).collect();
        let lo_r = self.combine_rec(&lo, f, memo);
        let hi_r = self.combine_rec(&hi, f, memo);
        let out = self.mk(level, lo_r, hi_r);
        memo.insert(inputs.to_vec(), out);
        out
    }

    /// Negation.
    pub fn not(&mut self, a: NodeRef) -> NodeRef {
        fn rec(m: &mut ObddManager, a: NodeRef, memo: &mut HashMap<NodeRef, NodeRef>) -> NodeRef {
            match a {
                NodeRef::FALSE => NodeRef::TRUE,
                NodeRef::TRUE => NodeRef::FALSE,
                _ => {
                    if let Some(&r) = memo.get(&a) {
                        return r;
                    }
                    let n = m.nodes[a.index()];
                    let lo = rec(m, n.lo, memo);
                    let hi = rec(m, n.hi, memo);
                    let r = m.mk(n.level, lo, hi);
                    memo.insert(a, r);
                    r
                }
            }
        }
        rec(self, a, &mut HashMap::new())
    }

    /// Evaluates the function under a variable assignment.
    pub fn eval(&self, mut r: NodeRef, assignment: &impl Fn(u32) -> bool) -> bool {
        while !r.is_terminal() {
            let n = self.nodes[r.index()];
            let var = self.order[n.level as usize];
            r = if assignment(var) { n.hi } else { n.lo };
        }
        r == NodeRef::TRUE
    }

    /// The distinct variables tested by the nodes reachable from `r`,
    /// sorted ascending — exactly the probability entries any walk from
    /// `r` reads (reduction-skipped variables marginalize out and are
    /// absent). Batch evaluators fill their [`ProbMatrix`] for these
    /// variables only; a lineage OBDD often touches a fraction of a
    /// large database's tuples.
    pub fn support_vars(&self, r: NodeRef) -> Vec<u32> {
        let topo = self.reachable_topo(r);
        let mut vars: Vec<u32> = topo
            .iter()
            .map(|&i| self.order[self.nodes[i as usize].level as usize])
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Number of decision nodes reachable from `r`.
    pub fn size(&self, r: NodeRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![r];
        while let Some(x) = stack.pop() {
            if x.is_terminal() || !seen.insert(x) {
                continue;
            }
            let n = self.nodes[x.index()];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.len()
    }

    /// The indices of the nodes reachable from `r`, ascending — which is
    /// a topological order (children strictly precede parents in the
    /// arena), so a single forward pass over the list can compute any
    /// bottom-up quantity. Marks are made and un-made through the
    /// provided buffers (`visited` must come in all-false and is
    /// restored to all-false), so a caller reusing the buffers performs
    /// no bookkeeping allocation once they have grown.
    fn reachable_topo_into(
        &self,
        r: NodeRef,
        visited: &mut [bool],
        stack: &mut Vec<u32>,
        topo: &mut Vec<u32>,
    ) {
        if r.is_terminal() {
            return;
        }
        stack.push(r.index() as u32);
        while let Some(i) = stack.pop() {
            let i = i as usize;
            if visited[i] {
                continue;
            }
            visited[i] = true;
            topo.push(i as u32);
            let n = self.nodes[i];
            for child in [n.lo, n.hi] {
                if !child.is_terminal() && !visited[child.index()] {
                    stack.push(child.index() as u32);
                }
            }
        }
        // `sort_unstable` is in-place (no allocation), keeping the
        // steady-state walk allocation-free.
        topo.sort_unstable();
        for &i in topo.iter() {
            visited[i as usize] = false;
        }
    }

    /// [`reachable_topo_into`](Self::reachable_topo_into) with one-shot
    /// local buffers, for the scalar walks.
    fn reachable_topo(&self, r: NodeRef) -> Vec<u32> {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = Vec::new();
        let mut topo = Vec::new();
        self.reachable_topo_into(r, &mut visited, &mut stack, &mut topo);
        topo
    }

    /// Probability of the function under independent per-variable
    /// probabilities (linear in the OBDD size; reduction-skipped
    /// variables marginalize out automatically).
    ///
    /// The walk is **iterative** — one dense forward pass over the
    /// reachable nodes in arena order, no recursion (so arbitrarily deep
    /// OBDDs cannot overflow the stack) and no hash-memo. Each node
    /// computes `p·hi + (1 - p)·lo`, the same expression in the same
    /// order as every other walk, keeping results bit-identical across
    /// the scalar and lane-batched paths.
    pub fn probability_f64(&self, r: NodeRef, prob: &impl Fn(u32) -> f64) -> f64 {
        match r {
            NodeRef::FALSE => return 0.0,
            NodeRef::TRUE => return 1.0,
            _ => {}
        }
        let topo = self.reachable_topo(r);
        let mut values = vec![0f64; r.index() + 1];
        let fetch = |values: &[f64], child: NodeRef| match child {
            NodeRef::FALSE => 0.0,
            NodeRef::TRUE => 1.0,
            _ => values[child.index()],
        };
        for &i in &topo {
            let n = self.nodes[i as usize];
            let pv = prob(self.order[n.level as usize]);
            let hi = fetch(&values, n.hi);
            let lo = fetch(&values, n.lo);
            values[i as usize] = pv * hi + (1.0 - pv) * lo;
        }
        values[r.index()]
    }

    /// Exact-rational variant of [`Self::probability_f64`] — the same
    /// iterative dense-index walk (recursion-free, no hash-memo), with
    /// values stored per reachable node only so the rationals of
    /// unreachable arena nodes are never touched.
    pub fn probability_exact(&self, r: NodeRef, prob: &impl Fn(u32) -> BigRational) -> BigRational {
        match r {
            NodeRef::FALSE => return BigRational::zero(),
            NodeRef::TRUE => return BigRational::one(),
            _ => {}
        }
        let topo = self.reachable_topo(r);
        // Dense node-index → topo-position map: the reachable set can be
        // a sliver of a shared arena, and `BigRational` slots are too
        // expensive to place (or even zero-initialize) per arena node.
        let mut pos = vec![u32::MAX; r.index() + 1];
        for (p, &i) in topo.iter().enumerate() {
            pos[i as usize] = p as u32;
        }
        let zero = BigRational::zero();
        let one = BigRational::one();
        let mut values: Vec<BigRational> = Vec::with_capacity(topo.len());
        for &i in &topo {
            let n = self.nodes[i as usize];
            let pv = prob(self.order[n.level as usize]);
            let fetch = |child: NodeRef| match child {
                NodeRef::FALSE => &zero,
                NodeRef::TRUE => &one,
                _ => &values[pos[child.index()] as usize],
            };
            let p = &(&pv * fetch(n.hi)) + &(&pv.complement() * fetch(n.lo));
            values.push(p);
        }
        values[pos[r.index()] as usize].clone()
    }

    /// Lane-batched variant of [`Self::probability_f64`]: one iterative
    /// pass over the reachable nodes computes up to [`LANES`] scenarios
    /// at once, reading per-variable probabilities from `probs` and
    /// keeping all state in `scratch` (zero heap allocations once the
    /// scratch has grown to this arena's size).
    ///
    /// Same bit-identity contract as
    /// [`Circuit::probability_f64_many`](crate::Circuit::probability_f64_many):
    /// every node evaluates `p·hi + (1 - p)·lo` per lane, so lane `l` is
    /// bit-identical to the scalar walk under lane `l`'s probabilities.
    pub fn probability_f64_many(
        &self,
        r: NodeRef,
        probs: &ProbMatrix,
        scratch: &mut EvalScratch,
    ) -> [f64; LANES] {
        match r {
            NodeRef::FALSE => return [0.0; LANES],
            NodeRef::TRUE => return [1.0; LANES],
            _ => {}
        }
        scratch.ensure_visited(self.nodes.len());
        scratch.ensure_lanes(r.index() + 1);
        let EvalScratch {
            lanes,
            visited,
            stack,
            topo,
        } = scratch;
        stack.clear();
        topo.clear();
        self.reachable_topo_into(r, visited, stack, topo);
        let values = &mut lanes[..(r.index() + 1) * LANES];
        for &i in topo.iter() {
            let n = self.nodes[i as usize];
            let pv = probs.block(self.order[n.level as usize]);
            let (done, rest) = values.split_at_mut(i as usize * LANES);
            let out = &mut rest[..LANES];
            let fetch = |done: &[f64], child: NodeRef| -> [f64; LANES] {
                match child {
                    NodeRef::FALSE => [0.0; LANES],
                    NodeRef::TRUE => [1.0; LANES],
                    _ => done[child.index() * LANES..][..LANES]
                        .try_into()
                        .expect("lane block is exactly LANES wide"),
                }
            };
            let hi = fetch(done, n.hi);
            let lo = fetch(done, n.lo);
            for (l, o) in out.iter_mut().enumerate() {
                *o = pv[l] * hi[l] + (1.0 - pv[l]) * lo[l];
            }
        }
        values[r.index() * LANES..][..LANES]
            .try_into()
            .expect("lane block is exactly LANES wide")
    }

    /// Copies the functions rooted at `refs` into `target`, rewriting
    /// every node's level through `level_map`, and returns the images of
    /// `refs` (terminals map to themselves). Shared structure stays
    /// shared: the reachable closure of all roots is walked once, and
    /// `target`'s unique table dedups against nodes it already holds.
    ///
    /// This is the patch primitive behind incremental lineage
    /// maintenance: when a tuple insertion/removal shifts the variable
    /// order of a compiled OBDD uniformly (by −1, 0, or +1 levels), the
    /// still-valid sub-DAGs are transplanted into a fresh manager over
    /// the new order instead of being recompiled. Only the live nodes
    /// are copied, so repeated patches never accumulate dead arena.
    ///
    /// `level_map` must be strictly increasing on the levels that occur
    /// below `refs`, and must keep every copied level inside `target`'s
    /// order; because it is injective, distinct reduced source nodes map
    /// to distinct target nodes and the copy is an embedding — every walk
    /// from a returned root is bit-identical to the same walk from the
    /// source root (modulo the variable renaming `target`'s order
    /// implies).
    ///
    /// # Panics
    /// Panics (in `mk`) if `level_map` violates the strict child-below-
    /// parent ordering or maps outside `target`'s order.
    pub fn copy_remapped(
        &self,
        target: &mut ObddManager,
        level_map: &impl Fn(u32) -> u32,
        refs: &[NodeRef],
    ) -> Vec<NodeRef> {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = Vec::new();
        let mut topo: Vec<usize> = Vec::new();
        for &r in refs {
            if !r.is_terminal() && !visited[r.index()] {
                stack.push(r.index());
            }
            while let Some(i) = stack.pop() {
                if visited[i] {
                    continue;
                }
                visited[i] = true;
                topo.push(i);
                let n = self.nodes[i];
                for child in [n.lo, n.hi] {
                    if !child.is_terminal() && !visited[child.index()] {
                        stack.push(child.index());
                    }
                }
            }
        }
        // Ascending arena index is a topological order (children precede
        // parents), so one forward pass rebuilds bottom-up.
        topo.sort_unstable();
        let mut map: Vec<NodeRef> = vec![NodeRef::FALSE; self.nodes.len()];
        let fetch = |map: &[NodeRef], child: NodeRef| {
            if child.is_terminal() {
                child
            } else {
                map[child.index()]
            }
        };
        for &i in &topo {
            let n = self.nodes[i];
            let lo = fetch(&map, n.lo);
            let hi = fetch(&map, n.hi);
            map[i] = target.mk(level_map(n.level), lo, hi);
        }
        refs.iter().map(|&r| fetch(&map, r)).collect()
    }

    /// Number of satisfying assignments over **all** variables of the
    /// order (level-aware: reduction-skipped variables count double).
    pub fn model_count(&self, r: NodeRef) -> BigUint {
        fn two_pow(e: u32) -> BigUint {
            BigUint::from(1u64).shl_bits(u64::from(e))
        }
        fn rec(
            m: &ObddManager,
            r: NodeRef,
            from_level: u32,
            memo: &mut HashMap<NodeRef, BigUint>,
        ) -> BigUint {
            // Returns the count over variables at levels >= from_level,
            // where level(r) >= from_level.
            let total_levels = m.order.len() as u32;
            match r {
                NodeRef::FALSE => BigUint::zero(),
                NodeRef::TRUE => two_pow(total_levels - from_level),
                _ => {
                    let n = m.nodes[r.index()];
                    let at_node = if let Some(c) = memo.get(&r) {
                        c.clone()
                    } else {
                        let hi = rec(m, n.hi, n.level + 1, memo);
                        let lo = rec(m, n.lo, n.level + 1, memo);
                        let c = &hi + &lo;
                        memo.insert(r, c.clone());
                        c
                    };
                    // Scale by the levels skipped above this node.
                    &at_node * &two_pow(n.level - from_level)
                }
            }
        }
        rec(self, r, 0, &mut HashMap::new())
    }

    /// Embeds the function as a d-D circuit: every decision node becomes
    /// `(x ∧ hi) ∨ (¬x ∧ lo)` — deterministic and decomposable by the
    /// OBDD ordering invariant.
    pub fn to_circuit(&self, r: NodeRef) -> (Circuit, GateId) {
        let mut c = Circuit::new();
        let root = self.copy_into_circuit(r, &mut c);
        (c, root)
    }

    /// Copies the function's gates into an existing circuit arena
    /// (hash-consing merges shared structure), returning the root gate.
    /// Used to plug many OBDDs into one `¬`-`∨`-template.
    pub fn copy_into_circuit(&self, r: NodeRef, c: &mut Circuit) -> GateId {
        let mut memo: HashMap<NodeRef, GateId> = HashMap::new();
        self.to_circuit_rec(r, c, &mut memo)
    }

    fn to_circuit_rec(
        &self,
        r: NodeRef,
        c: &mut Circuit,
        memo: &mut HashMap<NodeRef, GateId>,
    ) -> GateId {
        if let Some(&g) = memo.get(&r) {
            return g;
        }
        let g = match r {
            NodeRef::FALSE => c.constant(false),
            NodeRef::TRUE => c.constant(true),
            _ => {
                let n = self.nodes[r.index()];
                let var = self.order[n.level as usize];
                let hi = self.to_circuit_rec(n.hi, c, memo);
                let lo = self.to_circuit_rec(n.lo, c, memo);
                let v = c.var(var);
                let nv = c.not(v);
                let left = c.and(vec![v, hi]);
                let right = c.and(vec![nv, lo]);
                c.or(vec![left, right])
            }
        };
        memo.insert(r, g);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment(bits: u32) -> impl Fn(u32) -> bool {
        move |v| (bits >> v) & 1 == 1
    }

    #[test]
    fn literals_and_terminals() {
        let mut m = ObddManager::new(vec![0, 1, 2]);
        let x0 = m.literal(0, true);
        let nx0 = m.literal(0, false);
        assert!(m.eval(x0, &assignment(0b001)));
        assert!(!m.eval(x0, &assignment(0b000)));
        assert!(m.eval(nx0, &assignment(0b000)));
        assert!(NodeRef::TRUE.is_terminal());
    }

    #[test]
    fn apply_matches_truth_table() {
        let mut m = ObddManager::new(vec![0, 1, 2]);
        let x0 = m.literal(0, true);
        let x1 = m.literal(1, true);
        let x2 = m.literal(2, true);
        let f = m.and(x0, x1);
        let g = m.or(f, x2); // (x0∧x1)∨x2
        for bits in 0..8u32 {
            let expect = ((bits & 1 != 0) && (bits & 2 != 0)) || (bits & 4 != 0);
            assert_eq!(m.eval(g, &assignment(bits)), expect, "bits={bits:#05b}");
        }
        let x = m.xor(x0, x1);
        for bits in 0..4u32 {
            assert_eq!(
                m.eval(x, &assignment(bits)),
                (bits & 1 != 0) ^ (bits & 2 != 0)
            );
        }
    }

    #[test]
    fn combine_many_matches_pairwise_apply() {
        let mut m = ObddManager::new(vec![0, 1, 2, 3]);
        let x0 = m.literal(0, true);
        let x1 = m.literal(1, true);
        let x2 = m.literal(2, true);
        let x3 = m.literal(3, true);
        // majority(x0,x1,x2) ⊕ x3 two ways.
        let combined = m.combine_many(&[x0, x1, x2, x3], &|v| {
            (u8::from(v[0]) + u8::from(v[1]) + u8::from(v[2]) >= 2) ^ v[3]
        });
        let a = m.and(x0, x1);
        let b = m.and(x0, x2);
        let c = m.and(x1, x2);
        let ab = m.or(a, b);
        let maj = m.or(ab, c);
        let pairwise = m.xor(maj, x3);
        assert_eq!(
            combined, pairwise,
            "canonicity makes equal functions equal refs"
        );
    }

    #[test]
    fn canonicity_equal_functions_equal_refs() {
        let mut m = ObddManager::new(vec![0, 1]);
        let x0 = m.literal(0, true);
        let x1 = m.literal(1, true);
        // x0 ∨ x1 built two different ways.
        let a = m.or(x0, x1);
        let n0 = m.literal(0, false);
        let n1 = m.literal(1, false);
        let both_false = m.and(n0, n1);
        let b = m.not(both_false);
        assert_eq!(a, b, "reduced OBDDs are canonical");
    }

    #[test]
    fn negation_is_involutive() {
        let mut m = ObddManager::new(vec![0, 1, 2]);
        let x0 = m.literal(0, true);
        let x2 = m.literal(2, true);
        let f = m.or(x0, x2);
        let nn = m.not(f);
        let back = m.not(nn);
        assert_eq!(f, back);
    }

    #[test]
    fn reduction_collapses_redundant_tests() {
        let mut m = ObddManager::new(vec![0, 1]);
        let x1 = m.literal(1, true);
        // Node testing var 0 with equal children must reduce away.
        let r = m.mk(0, x1, x1);
        assert_eq!(r, x1);
    }

    #[test]
    #[should_panic(expected = "strictly below")]
    fn order_violation_detected() {
        let mut m = ObddManager::new(vec![0, 1]);
        let x0 = m.literal(0, true);
        let _ = m.mk(1, x0, NodeRef::TRUE); // child above the node's level
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_order_rejected() {
        let _ = ObddManager::new(vec![0, 1, 0]);
    }

    #[test]
    fn probability_marginalizes_skipped_levels() {
        let mut m = ObddManager::new(vec![0, 1, 2]);
        let x2 = m.literal(2, true); // skips levels 0 and 1 entirely
        let p = m.probability_f64(x2, &|v| if v == 2 { 0.3 } else { 0.9 });
        assert!((p - 0.3).abs() < 1e-12);
        let exact = m.probability_exact(x2, &|_| BigRational::from_ratio(3, 10));
        assert_eq!(exact, BigRational::from_ratio(3, 10));
    }

    #[test]
    fn probability_of_compound_function() {
        let mut m = ObddManager::new(vec![0, 1]);
        let x0 = m.literal(0, true);
        let x1 = m.literal(1, true);
        let f = m.or(x0, x1);
        // Pr = 1 - (1-p0)(1-p1) with p0 = 1/2, p1 = 1/3 → 2/3.
        let exact = m.probability_exact(f, &|v| {
            BigRational::from_ratio(1, if v == 0 { 2 } else { 3 })
        });
        assert_eq!(exact, BigRational::from_ratio(2, 3));
    }

    #[test]
    fn model_count_with_skipped_variables() {
        let mut m = ObddManager::new(vec![0, 1, 2]);
        let x1 = m.literal(1, true);
        // x1 over 3 variables: 4 models.
        assert_eq!(m.model_count(x1).to_u64(), Some(4));
        let x0 = m.literal(0, true);
        let f = m.or(x0, x1);
        assert_eq!(m.model_count(f).to_u64(), Some(6));
        assert_eq!(m.model_count(NodeRef::TRUE).to_u64(), Some(8));
        assert_eq!(m.model_count(NodeRef::FALSE).to_u64(), Some(0));
    }

    #[test]
    fn to_circuit_is_an_equivalent_dd() {
        let mut m = ObddManager::new(vec![0, 1, 2]);
        let x0 = m.literal(0, true);
        let x1 = m.literal(1, true);
        let x2 = m.literal(2, true);
        let t = m.and(x0, x1);
        let f = m.xor(t, x2);
        let (c, root) = m.to_circuit(f);
        crate::verify::check_dd(&c, root).expect("OBDD converts to a valid d-D");
        for bits in 0..8u32 {
            assert_eq!(
                c.eval(root, &|v| (bits >> v) & 1 == 1),
                m.eval(f, &assignment(bits)),
                "bits={bits:#05b}"
            );
        }
        let pm = m.probability_f64(f, &|_| 0.5);
        let pc = c.probability_f64(root, &|_| 0.5);
        assert!((pm - pc).abs() < 1e-12);
    }

    #[test]
    fn size_counts_reachable_nodes_only() {
        let mut m = ObddManager::new(vec![0, 1, 2, 3]);
        let a = m.literal(0, true);
        let b = m.literal(1, true);
        let c = m.literal(2, true);
        let ab = m.and(a, b);
        let abc = m.and(ab, c);
        assert!(m.size(abc) >= 3);
        assert!(m.size(a) == 1);
        assert_eq!(m.size(NodeRef::TRUE), 0);
        assert!(m.arena_size() >= m.size(abc));
    }

    #[test]
    fn from_parts_replays_an_arena_exactly() {
        let mut m = ObddManager::new(vec![0, 1, 2]);
        let x0 = m.literal(0, true);
        let x1 = m.literal(1, true);
        let x2 = m.literal(2, true);
        let t = m.and(x0, x1);
        let f = m.xor(t, x2);
        let entries: Vec<_> = m.node_entries().collect();
        let rebuilt = ObddManager::from_parts(m.order().to_vec(), &entries).unwrap();
        assert_eq!(rebuilt.arena_size(), m.arena_size());
        assert_eq!(
            rebuilt.node_entries().collect::<Vec<_>>(),
            entries,
            "same triples, same indices"
        );
        for bits in 0..8u32 {
            assert_eq!(
                rebuilt.eval(f, &assignment(bits)),
                m.eval(f, &assignment(bits))
            );
        }
        assert_eq!(
            rebuilt.probability_f64(f, &|_| 0.3),
            m.probability_f64(f, &|_| 0.3),
            "bit-identical walks"
        );
        // And the unique table is live again: mk on the rebuilt manager
        // dedups against replayed nodes instead of growing the arena.
        let mut rebuilt = rebuilt;
        let (level, lo, hi) = entries[0];
        assert_eq!(rebuilt.mk(level, lo, hi), NodeRef::from_raw(2));
        assert_eq!(rebuilt.arena_size(), entries.len());
    }

    #[test]
    fn from_parts_rejects_each_structural_violation() {
        let t = NodeRef::TRUE;
        let f = NodeRef::FALSE;
        let node0 = NodeRef::from_raw(2);
        // Duplicate variable in the order.
        assert_eq!(
            ObddManager::from_parts(vec![0, 1, 0], &[]).unwrap_err(),
            ObddError::DuplicateVariable(0)
        );
        // Level outside the order.
        assert_eq!(
            ObddManager::from_parts(vec![0], &[(1, f, t)]).unwrap_err(),
            ObddError::LevelOutOfRange { node: 0, level: 1 }
        );
        // Forward/dangling child reference (self-reference included).
        assert_eq!(
            ObddManager::from_parts(vec![0, 1], &[(0, node0, t)]).unwrap_err(),
            ObddError::DanglingChild { node: 0, child: 2 }
        );
        // Child at or above the node's level.
        assert_eq!(
            ObddManager::from_parts(vec![0, 1], &[(1, f, t), (1, node0, t)]).unwrap_err(),
            ObddError::OrderViolation { node: 1 }
        );
        // Unreduced node.
        assert_eq!(
            ObddManager::from_parts(vec![0], &[(0, t, t)]).unwrap_err(),
            ObddError::RedundantNode { node: 0 }
        );
        // Duplicate (level, lo, hi).
        assert_eq!(
            ObddManager::from_parts(vec![0], &[(0, f, t), (0, f, t)]).unwrap_err(),
            ObddError::DuplicateNode { node: 1 }
        );
        // All errors display something human-readable.
        assert!(ObddError::DuplicateVariable(0)
            .to_string()
            .contains("twice"));
    }

    #[test]
    fn lane_batched_walk_is_bit_identical_to_scalar() {
        let mut m = ObddManager::new(vec![0, 1, 2]);
        let x0 = m.literal(0, true);
        let x1 = m.literal(1, true);
        let x2 = m.literal(2, true);
        let t = m.and(x0, x1);
        let f = m.xor(t, x2);

        let mut probs = ProbMatrix::new();
        probs.reset(3);
        let lane_prob = |lane: usize, v: u32| 0.03 + 0.07 * lane as f64 + 0.21 * f64::from(v);
        for lane in 0..LANES {
            for v in 0..3u32 {
                probs.set(v, lane, lane_prob(lane, v));
            }
        }
        let mut scratch = EvalScratch::new();
        let got = m.probability_f64_many(f, &probs, &mut scratch);
        for (lane, &p) in got.iter().enumerate() {
            let scalar = m.probability_f64(f, &|v| lane_prob(lane, v));
            assert_eq!(p.to_bits(), scalar.to_bits(), "lane {lane}");
        }
        // Terminals short-circuit without touching the scratch.
        assert_eq!(
            m.probability_f64_many(NodeRef::TRUE, &probs, &mut scratch),
            [1.0; LANES]
        );
        assert_eq!(
            m.probability_f64_many(NodeRef::FALSE, &probs, &mut scratch),
            [0.0; LANES]
        );
        // And the reachability marks were unwound: a second walk through
        // the same scratch gives the same bits.
        let again = m.probability_f64_many(f, &probs, &mut scratch);
        assert_eq!(again, got);
    }

    #[test]
    fn iterative_walks_survive_a_deep_chain() {
        // A 200 000-node conjunction chain x0 ∧ x1 ∧ … — the recursive
        // memo walk this replaced would have needed a 200 000-deep call
        // stack (a guaranteed overflow under the test harness's default
        // 2 MiB threads); the iterative dense-index walks just stream
        // over the arena.
        const DEPTH: u32 = 200_000;
        let mut m = ObddManager::new((0..DEPTH).collect());
        let mut node = NodeRef::TRUE;
        for level in (0..DEPTH).rev() {
            node = m.mk(level, NodeRef::FALSE, node);
        }
        assert_eq!(m.size(node), DEPTH as usize);

        // All-ones probabilities make the product exactly 1.0 / 1.
        assert_eq!(m.probability_f64(node, &|_| 1.0), 1.0);
        assert!(m.probability_exact(node, &|_| BigRational::one()).is_one());

        let mut probs = ProbMatrix::new();
        probs.reset(DEPTH as usize);
        for v in 0..DEPTH {
            probs.set(v, 0, 1.0);
            probs.set(v, 1, 0.0);
        }
        let mut scratch = EvalScratch::new();
        let lanes = m.probability_f64_many(node, &probs, &mut scratch);
        assert_eq!(lanes[0], 1.0, "∏ 1.0 over the whole chain");
        assert_eq!(lanes[1], 0.0, "x0 already absent");
    }

    #[test]
    fn copy_remapped_identity_preserves_walks() {
        let mut m = ObddManager::new(vec![10, 20, 30]);
        let x0 = m.literal(10, true);
        let x1 = m.literal(20, true);
        let x2 = m.literal(30, true);
        let t = m.and(x0, x1);
        let f = m.xor(t, x2);
        let mut target = ObddManager::new(vec![10, 20, 30]);
        let mapped = m.copy_remapped(&mut target, &|l| l, &[f, t]);
        for bits in 0..8u32 {
            let assign = |v: u32| (bits >> (v / 10 - 1)) & 1 == 1;
            assert_eq!(target.eval(mapped[0], &assign), m.eval(f, &assign));
            assert_eq!(target.eval(mapped[1], &assign), m.eval(t, &assign));
        }
        let p = |v: u32| 0.1 + f64::from(v) / 100.0;
        assert_eq!(
            target.probability_f64(mapped[0], &p).to_bits(),
            m.probability_f64(f, &p).to_bits(),
            "bit-identical probability walk after the copy"
        );
    }

    #[test]
    fn copy_remapped_shifts_levels_and_compacts() {
        // Source over [5, 6]; target order gains a new shallowest
        // variable 4, shifting every copied level by +1 — the insert
        // direction of a lineage patch.
        let mut m = ObddManager::new(vec![5, 6]);
        let a = m.literal(5, true);
        let b = m.literal(6, true);
        let f = m.or(a, b);
        let dead = m.and(a, b); // not copied: unreachable from `f`
        let _ = dead;
        let mut target = ObddManager::new(vec![4, 5, 6]);
        let mapped = m.copy_remapped(&mut target, &|l| l + 1, &[f]);
        assert_eq!(
            target.arena_size(),
            m.size(f),
            "only the live closure of the roots is copied"
        );
        // f = x5 ∨ x6 in the target, with x4 marginalized out.
        let p = target.probability_f64(mapped[0], &|v| match v {
            5 => 0.5,
            6 => 0.25,
            _ => 0.0,
        });
        assert!((p - (1.0 - 0.5 * 0.75)).abs() < 1e-15);
        // Terminal roots map to themselves.
        let terms = m.copy_remapped(&mut target, &|l| l + 1, &[NodeRef::TRUE, NodeRef::FALSE]);
        assert_eq!(terms, vec![NodeRef::TRUE, NodeRef::FALSE]);
    }

    #[test]
    fn copy_remapped_dedups_against_existing_target_nodes() {
        let mut m = ObddManager::new(vec![0, 1]);
        let x0 = m.literal(0, true);
        let x1 = m.literal(1, true);
        let f = m.or(x0, x1);
        let mut target = ObddManager::new(vec![0, 1]);
        let pre = target.literal(1, true);
        let mapped = m.copy_remapped(&mut target, &|l| l, &[f, x1]);
        assert_eq!(
            mapped[1], pre,
            "shared sub-DAGs unify with nodes the target already holds"
        );
        // A second copy of the same roots allocates nothing new.
        let before = target.arena_size();
        let again = m.copy_remapped(&mut target, &|l| l, &[f]);
        assert_eq!(again[0], mapped[0]);
        assert_eq!(target.arena_size(), before);
    }

    #[test]
    fn managers_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        // Sharded evaluation walks one finished OBDD from many threads;
        // this fails to compile if interior mutability ever creeps in.
        assert_send_sync::<ObddManager>();

        let mut m = ObddManager::new(vec![0, 1]);
        let a = m.literal(0, true);
        let b = m.literal(1, true);
        let f = m.or(a, b);
        let expected = m.probability_f64(f, &|_| 0.5);
        let shared = std::sync::Arc::new(m);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&shared);
                s.spawn(move || {
                    let p = m.probability_f64(f, &|_| 0.5);
                    assert!((p - expected).abs() < 1e-15);
                });
            }
        });
    }
}
