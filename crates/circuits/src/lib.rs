//! Knowledge compilation formalisms (Section 2 of Monet, PODS 2020).
//!
//! The intensional approach to probabilistic query evaluation represents
//! the lineage of a query in a formalism whose structure makes weighted
//! model counting linear:
//!
//! * **deterministic decomposable circuits (d-Ds)** — Boolean circuits
//!   where every `∧`-gate has inputs on disjoint variable sets
//!   (*decomposability* = probabilistic independence) and every `∨`-gate
//!   has pairwise disjoint inputs (*determinism* = disjoint events). The
//!   probability of a d-D is computed bottom-up with `×`, `+`, `1 - x`.
//! * **OBDDs** — ordered binary decision diagrams, a restricted d-D with
//!   constant-time equivalence checking and polynomial `apply`.
//!
//! This crate implements both from scratch: an arena [`Circuit`] type
//! with structural decomposability checking and semantic determinism
//! verification ([`verify`]), and a reduced-ordered [`ObddManager`] with
//! the standard `apply`/negate algorithms, exact and floating probability
//! computation, model counting, and conversion into d-D circuits.

mod circuit;
mod models;
mod obdd;
pub mod verify;

pub use circuit::{Circuit, CircuitError, CircuitStats, Gate, GateId};
pub use obdd::{NodeRef, ObddError, ObddManager};
