//! Knowledge compilation formalisms (Section 2 of Monet, PODS 2020).
//!
//! The intensional approach to probabilistic query evaluation represents
//! the lineage of a query in a formalism whose structure makes weighted
//! model counting linear:
//!
//! * **deterministic decomposable circuits (d-Ds)** — Boolean circuits
//!   where every `∧`-gate has inputs on disjoint variable sets
//!   (*decomposability* = probabilistic independence) and every `∨`-gate
//!   has pairwise disjoint inputs (*determinism* = disjoint events). The
//!   probability of a d-D is computed bottom-up with `×`, `+`, `1 - x`.
//! * **OBDDs** — ordered binary decision diagrams, a restricted d-D with
//!   constant-time equivalence checking and polynomial `apply`.
//!
//! This crate implements both from scratch: an arena [`Circuit`] type
//! with structural decomposability checking and semantic determinism
//! verification ([`verify`]), and a reduced-ordered [`ObddManager`] with
//! the standard `apply`/negate algorithms, exact and floating probability
//! computation, model counting, and conversion into d-D circuits.
//!
//! Probability walks exploit that linearity aggressively: the scalar
//! walks are iterative dense passes (no recursion, no hash-memo), and
//! the [`eval`] module provides the **lane-batched kernel** —
//! [`Circuit::probability_f64_many`] / [`ObddManager::probability_f64_many`]
//! evaluate up to [`LANES`] probability scenarios in one pass over the
//! same immutable artifact, bit-identical per lane to the scalar walk,
//! with zero steady-state heap allocations thanks to [`EvalScratch`]
//! reuse (`DESIGN.md` §6).

mod circuit;
pub mod eval;
mod models;
mod obdd;
pub mod verify;

pub use circuit::{Circuit, CircuitError, CircuitStats, Gate, GateId};
pub use eval::{EvalScratch, ProbMatrix, LANES};
pub use obdd::{NodeRef, ObddError, ObddManager};
