//! Verification of the d-D conditions (Section 2 of the paper).
//!
//! *Decomposability* is a purely structural property (`Vars` of `∧`-gate
//! inputs pairwise disjoint) and is checked exactly in linear time.
//! *Determinism* is semantic (inputs of each `∨`-gate pairwise disjoint
//! as Boolean functions) and coNP-hard in general, so we offer an
//! exhaustive checker for circuits on few variables — ample for tests,
//! where instances are small by construction — plus the constructions in
//! `intext-core` are deterministic *by design* (the paper's proofs carry
//! the disjointness invariants).

use std::collections::HashMap;

use crate::{Circuit, Gate, GateId};

/// A violation of the d-D conditions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DdViolation {
    /// An `∧`-gate with two inputs sharing a variable.
    NotDecomposable {
        /// The offending gate.
        gate: GateId,
        /// A shared variable.
        var: u32,
    },
    /// An `∨`-gate with two overlapping inputs, witnessed by an assignment.
    NotDeterministic {
        /// The offending gate.
        gate: GateId,
        /// An assignment (bitmask over `vars`) satisfying two inputs.
        witness: u64,
    },
    /// Too many variables for exhaustive determinism checking.
    TooManyVariables(usize),
}

impl std::fmt::Display for DdViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DdViolation::NotDecomposable { gate, var } => {
                write!(
                    f,
                    "∧-gate {gate:?} not decomposable (shares variable {var})"
                )
            }
            DdViolation::NotDeterministic { gate, witness } => {
                write!(
                    f,
                    "∨-gate {gate:?} not deterministic (witness {witness:#b})"
                )
            }
            DdViolation::TooManyVariables(n) => {
                write!(
                    f,
                    "exhaustive determinism check supports <= 22 variables, got {n}"
                )
            }
        }
    }
}

impl std::error::Error for DdViolation {}

/// Checks decomposability of every `∧`-gate reachable from `root`.
pub fn check_decomposable(c: &Circuit, root: GateId) -> Result<(), DdViolation> {
    let vars = c.vars_per_gate();
    let reachable = reachable_gates(c, root);
    for &id in &reachable {
        if let Gate::And(xs) = c.gate(id) {
            for (i, a) in xs.iter().enumerate() {
                for b in &xs[i + 1..] {
                    if let Some(&v) = vars[a.0 as usize].intersection(&vars[b.0 as usize]).next() {
                        return Err(DdViolation::NotDecomposable { gate: id, var: v });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Checks determinism of every `∨`-gate reachable from `root` by
/// exhausting all assignments of the circuit's variables (`<= 22`).
pub fn check_deterministic_exhaustive(c: &Circuit, root: GateId) -> Result<(), DdViolation> {
    let all_vars: Vec<u32> = {
        let mut v: Vec<u32> = c.vars(root).into_iter().collect();
        v.sort_unstable();
        v
    };
    if all_vars.len() > 22 {
        return Err(DdViolation::TooManyVariables(all_vars.len()));
    }
    let index: HashMap<u32, usize> = all_vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let reachable = reachable_gates(c, root);
    let or_gates: Vec<GateId> = reachable
        .iter()
        .copied()
        .filter(|&id| matches!(c.gate(id), Gate::Or(xs) if xs.len() >= 2))
        .collect();
    for bits in 0..(1u64 << all_vars.len()) {
        // Evaluate every gate once per assignment.
        let mut values = vec![false; c.len()];
        for i in 0..c.len() {
            values[i] = match c.gate(GateId(i as u32)) {
                Gate::Const(b) => *b,
                Gate::Var(v) => index.get(v).is_some_and(|&j| (bits >> j) & 1 == 1),
                Gate::And(xs) => xs.iter().all(|x| values[x.0 as usize]),
                Gate::Or(xs) => xs.iter().any(|x| values[x.0 as usize]),
                Gate::Not(x) => !values[x.0 as usize],
            };
        }
        for &id in &or_gates {
            let Gate::Or(xs) = c.gate(id) else {
                unreachable!("filtered to Or")
            };
            let live = xs.iter().filter(|x| values[x.0 as usize]).count();
            if live >= 2 {
                return Err(DdViolation::NotDeterministic {
                    gate: id,
                    witness: bits,
                });
            }
        }
    }
    Ok(())
}

/// Full d-D check: decomposability (structural) plus determinism
/// (exhaustive; requires `<= 22` variables below `root`).
pub fn check_dd(c: &Circuit, root: GateId) -> Result<(), DdViolation> {
    check_decomposable(c, root)?;
    check_deterministic_exhaustive(c, root)
}

fn reachable_gates(c: &Circuit, root: GateId) -> Vec<GateId> {
    let mut seen = vec![false; c.len()];
    let mut stack = vec![root];
    let mut out = Vec::new();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut seen[id.0 as usize], true) {
            continue;
        }
        out.push(id);
        match c.gate(id) {
            Gate::And(xs) | Gate::Or(xs) => stack.extend(xs.iter().copied()),
            Gate::Not(x) => stack.push(*x),
            Gate::Const(_) | Gate::Var(_) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_dd_passes() {
        // x0 ∨ (¬x0 ∧ x1).
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let n0 = c.not(x0);
        let a = c.and(vec![n0, x1]);
        let root = c.or(vec![x0, a]);
        assert_eq!(check_dd(&c, root), Ok(()));
    }

    #[test]
    fn non_decomposable_and_detected() {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let n0 = c.not(x0);
        let root = c.and(vec![x0, n0]); // shares variable 0
        assert_eq!(
            check_decomposable(&c, root),
            Err(DdViolation::NotDecomposable { gate: root, var: 0 })
        );
    }

    #[test]
    fn non_deterministic_or_detected() {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let root = c.or(vec![x0, x1]); // overlap at x0 = x1 = 1
        let err = check_deterministic_exhaustive(&c, root).unwrap_err();
        match err {
            DdViolation::NotDeterministic { gate, witness } => {
                assert_eq!(gate, root);
                assert_eq!(witness, 0b11);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unreachable_garbage_is_ignored() {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let n0 = c.not(x0);
        let _garbage = c.and(vec![x0, n0]); // invalid but unreachable
        let x1 = c.var(1);
        let root = c.and(vec![x0, x1]);
        assert_eq!(check_dd(&c, root), Ok(()));
    }

    #[test]
    fn deterministic_or_with_constants() {
        let mut c = Circuit::new();
        let f = c.constant(false);
        let x = c.var(3);
        let root = c.or(vec![f, x]);
        assert_eq!(check_dd(&c, root), Ok(()));
    }

    #[test]
    fn too_many_variables_reported() {
        let mut c = Circuit::new();
        let vars: Vec<GateId> = (0..23).map(|v| c.var(v)).collect();
        let root = c.and(vars);
        assert_eq!(
            check_deterministic_exhaustive(&c, root),
            Err(DdViolation::TooManyVariables(23))
        );
    }
}
